/root/repo/target/release/deps/predtop_bench-5110ae26fbd8f9c0.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpredtop_bench-5110ae26fbd8f9c0.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpredtop_bench-5110ae26fbd8f9c0.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/jsonout.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
