/root/repo/target/release/deps/fig10_optimization-fc78f87230ada147.d: crates/bench/src/bin/fig10_optimization.rs

/root/repo/target/release/deps/fig10_optimization-fc78f87230ada147: crates/bench/src/bin/fig10_optimization.rs

crates/bench/src/bin/fig10_optimization.rs:
