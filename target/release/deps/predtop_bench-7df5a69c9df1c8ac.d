/tmp/check/target/release/deps/predtop_bench-7df5a69c9df1c8ac.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/tmp/check/target/release/deps/libpredtop_bench-7df5a69c9df1c8ac.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/tmp/check/target/release/deps/libpredtop_bench-7df5a69c9df1c8ac.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
