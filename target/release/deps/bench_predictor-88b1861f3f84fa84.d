/root/repo/target/release/deps/bench_predictor-88b1861f3f84fa84.d: crates/bench/src/bin/bench_predictor.rs

/root/repo/target/release/deps/bench_predictor-88b1861f3f84fa84: crates/bench/src/bin/bench_predictor.rs

crates/bench/src/bin/bench_predictor.rs:
