/root/repo/target/release/deps/predtop_bench-70cffa09e2c31e7a.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpredtop_bench-70cffa09e2c31e7a.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libpredtop_bench-70cffa09e2c31e7a.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/jsonout.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
