/root/repo/target/release/deps/eqn4_validation-4430f1d45efc61b9.d: crates/bench/src/bin/eqn4_validation.rs

/root/repo/target/release/deps/eqn4_validation-4430f1d45efc61b9: crates/bench/src/bin/eqn4_validation.rs

crates/bench/src/bin/eqn4_validation.rs:
