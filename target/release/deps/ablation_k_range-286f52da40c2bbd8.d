/root/repo/target/release/deps/ablation_k_range-286f52da40c2bbd8.d: crates/bench/src/bin/ablation_k_range.rs

/root/repo/target/release/deps/ablation_k_range-286f52da40c2bbd8: crates/bench/src/bin/ablation_k_range.rs

crates/bench/src/bin/ablation_k_range.rs:
