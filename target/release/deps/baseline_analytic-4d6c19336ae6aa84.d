/root/repo/target/release/deps/baseline_analytic-4d6c19336ae6aa84.d: crates/bench/src/bin/baseline_analytic.rs

/root/repo/target/release/deps/baseline_analytic-4d6c19336ae6aa84: crates/bench/src/bin/baseline_analytic.rs

crates/bench/src/bin/baseline_analytic.rs:
