/root/repo/target/release/deps/predtop_runtime-cc7ff6f8a29ce9fa.d: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/root/repo/target/release/deps/libpredtop_runtime-cc7ff6f8a29ce9fa.rlib: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/root/repo/target/release/deps/libpredtop_runtime-cc7ff6f8a29ce9fa.rmeta: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

crates/runtime/src/lib.rs:
crates/runtime/src/exec.rs:
