/tmp/check/target/release/deps/parking_lot-d7629a29cf309378.d: /tmp/stubs/parking_lot/src/lib.rs

/tmp/check/target/release/deps/libparking_lot-d7629a29cf309378.rlib: /tmp/stubs/parking_lot/src/lib.rs

/tmp/check/target/release/deps/libparking_lot-d7629a29cf309378.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
