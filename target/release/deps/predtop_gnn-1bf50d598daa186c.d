/root/repo/target/release/deps/predtop_gnn-1bf50d598daa186c.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libpredtop_gnn-1bf50d598daa186c.rlib: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libpredtop_gnn-1bf50d598daa186c.rmeta: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
