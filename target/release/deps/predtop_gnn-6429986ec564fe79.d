/root/repo/target/release/deps/predtop_gnn-6429986ec564fe79.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libpredtop_gnn-6429986ec564fe79.rlib: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/release/deps/libpredtop_gnn-6429986ec564fe79.rmeta: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
