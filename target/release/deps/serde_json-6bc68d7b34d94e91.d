/tmp/check/target/release/deps/serde_json-6bc68d7b34d94e91.d: /tmp/stubs/serde_json/src/lib.rs

/tmp/check/target/release/deps/libserde_json-6bc68d7b34d94e91.rlib: /tmp/stubs/serde_json/src/lib.rs

/tmp/check/target/release/deps/libserde_json-6bc68d7b34d94e91.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
