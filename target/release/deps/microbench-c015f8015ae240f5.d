/root/repo/target/release/deps/microbench-c015f8015ae240f5.d: crates/bench/benches/microbench.rs

/root/repo/target/release/deps/microbench-c015f8015ae240f5: crates/bench/benches/microbench.rs

crates/bench/benches/microbench.rs:
