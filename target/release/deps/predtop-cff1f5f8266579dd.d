/root/repo/target/release/deps/predtop-cff1f5f8266579dd.d: src/main.rs

/root/repo/target/release/deps/predtop-cff1f5f8266579dd: src/main.rs

src/main.rs:
