/root/repo/target/release/deps/table6_mre_platform2-b811f24c5c0a0001.d: crates/bench/src/bin/table6_mre_platform2.rs

/root/repo/target/release/deps/table6_mre_platform2-b811f24c5c0a0001: crates/bench/src/bin/table6_mre_platform2.rs

crates/bench/src/bin/table6_mre_platform2.rs:
