/root/repo/target/release/deps/predtop_analyze-3bbc00581e9ba64b.d: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/root/repo/target/release/deps/libpredtop_analyze-3bbc00581e9ba64b.rlib: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/root/repo/target/release/deps/libpredtop_analyze-3bbc00581e9ba64b.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/graph_passes.rs:
crates/analyze/src/legality.rs:
crates/analyze/src/pass.rs:
crates/analyze/src/plan_passes.rs:
crates/analyze/src/registry.rs:
crates/analyze/src/render.rs:
