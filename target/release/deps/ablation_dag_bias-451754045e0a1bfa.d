/root/repo/target/release/deps/ablation_dag_bias-451754045e0a1bfa.d: crates/bench/src/bin/ablation_dag_bias.rs

/root/repo/target/release/deps/ablation_dag_bias-451754045e0a1bfa: crates/bench/src/bin/ablation_dag_bias.rs

crates/bench/src/bin/ablation_dag_bias.rs:
