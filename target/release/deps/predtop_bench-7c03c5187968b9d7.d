/root/repo/target/release/deps/predtop_bench-7c03c5187968b9d7.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/release/deps/predtop_bench-7c03c5187968b9d7: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/jsonout.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
