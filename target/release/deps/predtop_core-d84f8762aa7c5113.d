/root/repo/target/release/deps/predtop_core-d84f8762aa7c5113.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/release/deps/libpredtop_core-d84f8762aa7c5113.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/release/deps/libpredtop_core-d84f8762aa7c5113.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
