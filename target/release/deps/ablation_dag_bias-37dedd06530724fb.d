/root/repo/target/release/deps/ablation_dag_bias-37dedd06530724fb.d: crates/bench/src/bin/ablation_dag_bias.rs

/root/repo/target/release/deps/ablation_dag_bias-37dedd06530724fb: crates/bench/src/bin/ablation_dag_bias.rs

crates/bench/src/bin/ablation_dag_bias.rs:
