/root/repo/target/release/deps/predtop_cluster-70f09dea66d2bcdd.d: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/root/repo/target/release/deps/libpredtop_cluster-70f09dea66d2bcdd.rlib: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/root/repo/target/release/deps/libpredtop_cluster-70f09dea66d2bcdd.rmeta: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

crates/cluster/src/lib.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/mesh.rs:
