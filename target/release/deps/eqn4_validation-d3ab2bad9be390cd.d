/root/repo/target/release/deps/eqn4_validation-d3ab2bad9be390cd.d: crates/bench/src/bin/eqn4_validation.rs

/root/repo/target/release/deps/eqn4_validation-d3ab2bad9be390cd: crates/bench/src/bin/eqn4_validation.rs

crates/bench/src/bin/eqn4_validation.rs:
