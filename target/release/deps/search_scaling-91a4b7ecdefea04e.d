/root/repo/target/release/deps/search_scaling-91a4b7ecdefea04e.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/release/deps/search_scaling-91a4b7ecdefea04e: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
