/tmp/check/target/release/deps/predtop_analyze-90e8f7b924468e07.d: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/tmp/check/target/release/deps/libpredtop_analyze-90e8f7b924468e07.rlib: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/tmp/check/target/release/deps/libpredtop_analyze-90e8f7b924468e07.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/graph_passes.rs:
crates/analyze/src/legality.rs:
crates/analyze/src/pass.rs:
crates/analyze/src/plan_passes.rs:
crates/analyze/src/registry.rs:
crates/analyze/src/render.rs:
