/root/repo/target/release/deps/predtop_core-aa6bf33e6e58dae4.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/release/deps/libpredtop_core-aa6bf33e6e58dae4.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/release/deps/libpredtop_core-aa6bf33e6e58dae4.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
