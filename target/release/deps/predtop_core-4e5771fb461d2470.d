/tmp/check/target/release/deps/predtop_core-4e5771fb461d2470.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/tmp/check/target/release/deps/libpredtop_core-4e5771fb461d2470.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/tmp/check/target/release/deps/libpredtop_core-4e5771fb461d2470.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
