/root/repo/target/release/deps/predtop_parallel-0f2f33a4ae6dc148.d: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/root/repo/target/release/deps/libpredtop_parallel-0f2f33a4ae6dc148.rlib: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/root/repo/target/release/deps/libpredtop_parallel-0f2f33a4ae6dc148.rmeta: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

crates/parallel/src/lib.rs:
crates/parallel/src/cache.rs:
crates/parallel/src/config.rs:
crates/parallel/src/interstage.rs:
crates/parallel/src/intra.rs:
crates/parallel/src/plan.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/sharding.rs:
