/root/repo/target/release/deps/fig2_plan_variation-a38bc73849a37984.d: crates/bench/src/bin/fig2_plan_variation.rs

/root/repo/target/release/deps/fig2_plan_variation-a38bc73849a37984: crates/bench/src/bin/fig2_plan_variation.rs

crates/bench/src/bin/fig2_plan_variation.rs:
