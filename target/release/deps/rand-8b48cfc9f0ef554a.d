/root/repo/target/release/deps/rand-8b48cfc9f0ef554a.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-8b48cfc9f0ef554a.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-8b48cfc9f0ef554a.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
