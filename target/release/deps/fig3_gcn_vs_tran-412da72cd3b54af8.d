/root/repo/target/release/deps/fig3_gcn_vs_tran-412da72cd3b54af8.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs

/root/repo/target/release/deps/fig3_gcn_vs_tran-412da72cd3b54af8: crates/bench/src/bin/fig3_gcn_vs_tran.rs

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
