/root/repo/target/release/deps/parking_lot-b8e1aa2b48b545e7.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b8e1aa2b48b545e7.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-b8e1aa2b48b545e7.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
