/tmp/check/target/release/deps/rand-a391632c381b7d00.d: /tmp/stubs/rand/src/lib.rs

/tmp/check/target/release/deps/librand-a391632c381b7d00.rlib: /tmp/stubs/rand/src/lib.rs

/tmp/check/target/release/deps/librand-a391632c381b7d00.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
