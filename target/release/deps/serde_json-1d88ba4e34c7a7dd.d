/root/repo/target/release/deps/serde_json-1d88ba4e34c7a7dd.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-1d88ba4e34c7a7dd.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-1d88ba4e34c7a7dd.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
