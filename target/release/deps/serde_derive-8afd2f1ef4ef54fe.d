/root/repo/target/release/deps/serde_derive-8afd2f1ef4ef54fe.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-8afd2f1ef4ef54fe.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
