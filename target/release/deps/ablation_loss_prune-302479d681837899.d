/root/repo/target/release/deps/ablation_loss_prune-302479d681837899.d: crates/bench/src/bin/ablation_loss_prune.rs

/root/repo/target/release/deps/ablation_loss_prune-302479d681837899: crates/bench/src/bin/ablation_loss_prune.rs

crates/bench/src/bin/ablation_loss_prune.rs:
