/root/repo/target/release/deps/fig3_gcn_vs_tran-7b74744bc704f8c3.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs

/root/repo/target/release/deps/fig3_gcn_vs_tran-7b74744bc704f8c3: crates/bench/src/bin/fig3_gcn_vs_tran.rs

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
