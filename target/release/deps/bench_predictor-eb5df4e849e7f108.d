/root/repo/target/release/deps/bench_predictor-eb5df4e849e7f108.d: crates/bench/src/bin/bench_predictor.rs

/root/repo/target/release/deps/bench_predictor-eb5df4e849e7f108: crates/bench/src/bin/bench_predictor.rs

crates/bench/src/bin/bench_predictor.rs:
