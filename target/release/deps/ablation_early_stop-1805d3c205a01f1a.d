/root/repo/target/release/deps/ablation_early_stop-1805d3c205a01f1a.d: crates/bench/src/bin/ablation_early_stop.rs

/root/repo/target/release/deps/ablation_early_stop-1805d3c205a01f1a: crates/bench/src/bin/ablation_early_stop.rs

crates/bench/src/bin/ablation_early_stop.rs:
