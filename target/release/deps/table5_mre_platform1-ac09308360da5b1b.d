/root/repo/target/release/deps/table5_mre_platform1-ac09308360da5b1b.d: crates/bench/src/bin/table5_mre_platform1.rs

/root/repo/target/release/deps/table5_mre_platform1-ac09308360da5b1b: crates/bench/src/bin/table5_mre_platform1.rs

crates/bench/src/bin/table5_mre_platform1.rs:
