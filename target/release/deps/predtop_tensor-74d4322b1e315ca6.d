/tmp/check/target/release/deps/predtop_tensor-74d4322b1e315ca6.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/tmp/check/target/release/deps/libpredtop_tensor-74d4322b1e315ca6.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/tmp/check/target/release/deps/libpredtop_tensor-74d4322b1e315ca6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
