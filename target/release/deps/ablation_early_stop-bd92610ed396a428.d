/root/repo/target/release/deps/ablation_early_stop-bd92610ed396a428.d: crates/bench/src/bin/ablation_early_stop.rs

/root/repo/target/release/deps/ablation_early_stop-bd92610ed396a428: crates/bench/src/bin/ablation_early_stop.rs

crates/bench/src/bin/ablation_early_stop.rs:
