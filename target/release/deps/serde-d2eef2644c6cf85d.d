/tmp/check/target/release/deps/serde-d2eef2644c6cf85d.d: /tmp/stubs/serde/src/lib.rs

/tmp/check/target/release/deps/libserde-d2eef2644c6cf85d.rlib: /tmp/stubs/serde/src/lib.rs

/tmp/check/target/release/deps/libserde-d2eef2644c6cf85d.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
