/tmp/check/target/release/deps/proptest-5f5880ce958f99b3.d: /tmp/stubs/proptest/src/lib.rs

/tmp/check/target/release/deps/libproptest-5f5880ce958f99b3.rlib: /tmp/stubs/proptest/src/lib.rs

/tmp/check/target/release/deps/libproptest-5f5880ce958f99b3.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
