/root/repo/target/release/deps/search_scaling-7c990849b49573cd.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/release/deps/search_scaling-7c990849b49573cd: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
