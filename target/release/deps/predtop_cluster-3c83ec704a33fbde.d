/tmp/check/target/release/deps/predtop_cluster-3c83ec704a33fbde.d: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/tmp/check/target/release/deps/libpredtop_cluster-3c83ec704a33fbde.rlib: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/tmp/check/target/release/deps/libpredtop_cluster-3c83ec704a33fbde.rmeta: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

crates/cluster/src/lib.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/mesh.rs:
