/root/repo/target/release/deps/predtop-de4120b8299eed2a.d: src/lib.rs

/root/repo/target/release/deps/libpredtop-de4120b8299eed2a.rlib: src/lib.rs

/root/repo/target/release/deps/libpredtop-de4120b8299eed2a.rmeta: src/lib.rs

src/lib.rs:
