/root/repo/target/release/deps/predtop_tensor-c51227df3cf58669.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libpredtop_tensor-c51227df3cf58669.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/root/repo/target/release/deps/libpredtop_tensor-c51227df3cf58669.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
