/root/repo/target/release/deps/fig2_plan_variation-ae08832d3f1dbaa5.d: crates/bench/src/bin/fig2_plan_variation.rs

/root/repo/target/release/deps/fig2_plan_variation-ae08832d3f1dbaa5: crates/bench/src/bin/fig2_plan_variation.rs

crates/bench/src/bin/fig2_plan_variation.rs:
