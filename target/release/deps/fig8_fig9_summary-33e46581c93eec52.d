/root/repo/target/release/deps/fig8_fig9_summary-33e46581c93eec52.d: crates/bench/src/bin/fig8_fig9_summary.rs

/root/repo/target/release/deps/fig8_fig9_summary-33e46581c93eec52: crates/bench/src/bin/fig8_fig9_summary.rs

crates/bench/src/bin/fig8_fig9_summary.rs:
