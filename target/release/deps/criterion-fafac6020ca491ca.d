/root/repo/target/release/deps/criterion-fafac6020ca491ca.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fafac6020ca491ca.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-fafac6020ca491ca.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
