/root/repo/target/release/deps/fig10_optimization-20f7c5968767c727.d: crates/bench/src/bin/fig10_optimization.rs

/root/repo/target/release/deps/fig10_optimization-20f7c5968767c727: crates/bench/src/bin/fig10_optimization.rs

crates/bench/src/bin/fig10_optimization.rs:
