/root/repo/target/release/deps/tables_setup-d09cc2dcd54db4f2.d: crates/bench/src/bin/tables_setup.rs

/root/repo/target/release/deps/tables_setup-d09cc2dcd54db4f2: crates/bench/src/bin/tables_setup.rs

crates/bench/src/bin/tables_setup.rs:
