/tmp/check/target/release/deps/predtop-7fd22904cc2893ba.d: src/main.rs

/tmp/check/target/release/deps/predtop-7fd22904cc2893ba: src/main.rs

src/main.rs:
