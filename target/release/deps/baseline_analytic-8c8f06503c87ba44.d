/root/repo/target/release/deps/baseline_analytic-8c8f06503c87ba44.d: crates/bench/src/bin/baseline_analytic.rs

/root/repo/target/release/deps/baseline_analytic-8c8f06503c87ba44: crates/bench/src/bin/baseline_analytic.rs

crates/bench/src/bin/baseline_analytic.rs:
