/tmp/check/target/release/deps/predtop_sim-65e3da4a34623ab7.d: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/tmp/check/target/release/deps/libpredtop_sim-65e3da4a34623ab7.rlib: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/tmp/check/target/release/deps/libpredtop_sim-65e3da4a34623ab7.rmeta: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/costing.rs:
crates/sim/src/memory.rs:
crates/sim/src/opcost.rs:
crates/sim/src/pipeline.rs:
crates/sim/src/profiler.rs:
crates/sim/src/trace.rs:
