/root/repo/target/release/deps/tables_setup-207d6fe1cf2ffef8.d: crates/bench/src/bin/tables_setup.rs

/root/repo/target/release/deps/tables_setup-207d6fe1cf2ffef8: crates/bench/src/bin/tables_setup.rs

crates/bench/src/bin/tables_setup.rs:
