/root/repo/target/release/deps/predtop_models-869a7f559d35fdff.d: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/root/repo/target/release/deps/libpredtop_models-869a7f559d35fdff.rlib: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/root/repo/target/release/deps/libpredtop_models-869a7f559d35fdff.rmeta: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

crates/models/src/lib.rs:
crates/models/src/layers.rs:
crates/models/src/spec.rs:
crates/models/src/stage.rs:
