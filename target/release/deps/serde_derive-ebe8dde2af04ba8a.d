/tmp/check/target/release/deps/serde_derive-ebe8dde2af04ba8a.d: /tmp/stubs/serde_derive/src/lib.rs

/tmp/check/target/release/deps/libserde_derive-ebe8dde2af04ba8a.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
