/root/repo/target/release/deps/fig8_fig9_summary-a39c57017114dfaf.d: crates/bench/src/bin/fig8_fig9_summary.rs

/root/repo/target/release/deps/fig8_fig9_summary-a39c57017114dfaf: crates/bench/src/bin/fig8_fig9_summary.rs

crates/bench/src/bin/fig8_fig9_summary.rs:
