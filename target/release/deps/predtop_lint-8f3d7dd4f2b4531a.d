/tmp/check/target/release/deps/predtop_lint-8f3d7dd4f2b4531a.d: crates/analyze/src/bin/predtop_lint.rs

/tmp/check/target/release/deps/predtop_lint-8f3d7dd4f2b4531a: crates/analyze/src/bin/predtop_lint.rs

crates/analyze/src/bin/predtop_lint.rs:
