/root/repo/target/release/deps/predtop_sim-3d0d3930bab74ba0.d: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libpredtop_sim-3d0d3930bab74ba0.rlib: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libpredtop_sim-3d0d3930bab74ba0.rmeta: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/costing.rs:
crates/sim/src/memory.rs:
crates/sim/src/opcost.rs:
crates/sim/src/pipeline.rs:
crates/sim/src/profiler.rs:
crates/sim/src/trace.rs:
