/root/repo/target/release/deps/ablation_k_range-135c621d4b162f75.d: crates/bench/src/bin/ablation_k_range.rs

/root/repo/target/release/deps/ablation_k_range-135c621d4b162f75: crates/bench/src/bin/ablation_k_range.rs

crates/bench/src/bin/ablation_k_range.rs:
