/root/repo/target/release/deps/serde-33aeb1f9e7172dd2.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-33aeb1f9e7172dd2.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-33aeb1f9e7172dd2.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
