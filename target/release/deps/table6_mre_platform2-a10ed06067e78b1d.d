/root/repo/target/release/deps/table6_mre_platform2-a10ed06067e78b1d.d: crates/bench/src/bin/table6_mre_platform2.rs

/root/repo/target/release/deps/table6_mre_platform2-a10ed06067e78b1d: crates/bench/src/bin/table6_mre_platform2.rs

crates/bench/src/bin/table6_mre_platform2.rs:
