/tmp/check/target/release/deps/predtop_models-45ed2439b425edbd.d: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/tmp/check/target/release/deps/libpredtop_models-45ed2439b425edbd.rlib: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/tmp/check/target/release/deps/libpredtop_models-45ed2439b425edbd.rmeta: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

crates/models/src/lib.rs:
crates/models/src/layers.rs:
crates/models/src/spec.rs:
crates/models/src/stage.rs:
