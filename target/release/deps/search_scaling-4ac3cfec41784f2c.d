/tmp/check/target/release/deps/search_scaling-4ac3cfec41784f2c.d: crates/bench/src/bin/search_scaling.rs

/tmp/check/target/release/deps/search_scaling-4ac3cfec41784f2c: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
