/root/repo/target/release/deps/bench_predictor-b2c130775ec75e3c.d: crates/bench/src/bin/bench_predictor.rs

/root/repo/target/release/deps/bench_predictor-b2c130775ec75e3c: crates/bench/src/bin/bench_predictor.rs

crates/bench/src/bin/bench_predictor.rs:
