/root/repo/target/release/deps/ablation_loss_prune-e2a66e069f5f1f97.d: crates/bench/src/bin/ablation_loss_prune.rs

/root/repo/target/release/deps/ablation_loss_prune-e2a66e069f5f1f97: crates/bench/src/bin/ablation_loss_prune.rs

crates/bench/src/bin/ablation_loss_prune.rs:
