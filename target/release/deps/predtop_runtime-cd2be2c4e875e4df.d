/tmp/check/target/release/deps/predtop_runtime-cd2be2c4e875e4df.d: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/tmp/check/target/release/deps/libpredtop_runtime-cd2be2c4e875e4df.rlib: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/tmp/check/target/release/deps/libpredtop_runtime-cd2be2c4e875e4df.rmeta: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

crates/runtime/src/lib.rs:
crates/runtime/src/exec.rs:
