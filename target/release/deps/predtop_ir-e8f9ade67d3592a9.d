/tmp/check/target/release/deps/predtop_ir-e8f9ade67d3592a9.d: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

/tmp/check/target/release/deps/libpredtop_ir-e8f9ade67d3592a9.rlib: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

/tmp/check/target/release/deps/libpredtop_ir-e8f9ade67d3592a9.rmeta: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/display.rs:
crates/ir/src/dtype.rs:
crates/ir/src/error.rs:
crates/ir/src/features.rs:
crates/ir/src/graph.rs:
crates/ir/src/op.rs:
crates/ir/src/prune.rs:
crates/ir/src/reach.rs:
crates/ir/src/shape.rs:
crates/ir/src/verify.rs:
