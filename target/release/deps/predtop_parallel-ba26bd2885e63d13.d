/tmp/check/target/release/deps/predtop_parallel-ba26bd2885e63d13.d: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/tmp/check/target/release/deps/libpredtop_parallel-ba26bd2885e63d13.rlib: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/tmp/check/target/release/deps/libpredtop_parallel-ba26bd2885e63d13.rmeta: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

crates/parallel/src/lib.rs:
crates/parallel/src/cache.rs:
crates/parallel/src/config.rs:
crates/parallel/src/interstage.rs:
crates/parallel/src/intra.rs:
crates/parallel/src/plan.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/sharding.rs:
