/tmp/check/target/release/deps/predtop-c3118085c7e2554a.d: src/lib.rs

/tmp/check/target/release/deps/libpredtop-c3118085c7e2554a.rlib: src/lib.rs

/tmp/check/target/release/deps/libpredtop-c3118085c7e2554a.rmeta: src/lib.rs

src/lib.rs:
