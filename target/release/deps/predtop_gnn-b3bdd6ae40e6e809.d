/tmp/check/target/release/deps/predtop_gnn-b3bdd6ae40e6e809.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/tmp/check/target/release/deps/libpredtop_gnn-b3bdd6ae40e6e809.rlib: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/tmp/check/target/release/deps/libpredtop_gnn-b3bdd6ae40e6e809.rmeta: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
