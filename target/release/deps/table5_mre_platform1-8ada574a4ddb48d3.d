/root/repo/target/release/deps/table5_mre_platform1-8ada574a4ddb48d3.d: crates/bench/src/bin/table5_mre_platform1.rs

/root/repo/target/release/deps/table5_mre_platform1-8ada574a4ddb48d3: crates/bench/src/bin/table5_mre_platform1.rs

crates/bench/src/bin/table5_mre_platform1.rs:
