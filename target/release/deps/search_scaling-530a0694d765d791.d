/root/repo/target/release/deps/search_scaling-530a0694d765d791.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/release/deps/search_scaling-530a0694d765d791: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
