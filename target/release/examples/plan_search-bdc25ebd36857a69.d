/tmp/check/target/release/examples/plan_search-bdc25ebd36857a69.d: examples/plan_search.rs

/tmp/check/target/release/examples/plan_search-bdc25ebd36857a69: examples/plan_search.rs

examples/plan_search.rs:
