/tmp/check/target/debug/deps/microbench-34af51f401aeba2c.d: crates/bench/benches/microbench.rs Cargo.toml

/tmp/check/target/debug/deps/libmicrobench-34af51f401aeba2c.rmeta: crates/bench/benches/microbench.rs Cargo.toml

crates/bench/benches/microbench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
