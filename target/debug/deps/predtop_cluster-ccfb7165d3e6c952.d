/tmp/check/target/debug/deps/predtop_cluster-ccfb7165d3e6c952.d: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/tmp/check/target/debug/deps/libpredtop_cluster-ccfb7165d3e6c952.rlib: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/tmp/check/target/debug/deps/libpredtop_cluster-ccfb7165d3e6c952.rmeta: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

crates/cluster/src/lib.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/mesh.rs:
