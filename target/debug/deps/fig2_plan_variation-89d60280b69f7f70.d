/root/repo/target/debug/deps/fig2_plan_variation-89d60280b69f7f70.d: crates/bench/src/bin/fig2_plan_variation.rs

/root/repo/target/debug/deps/fig2_plan_variation-89d60280b69f7f70: crates/bench/src/bin/fig2_plan_variation.rs

crates/bench/src/bin/fig2_plan_variation.rs:
