/tmp/check/target/debug/deps/predtop_bench-50b0fcd49e57b5c9.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_bench-50b0fcd49e57b5c9.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
