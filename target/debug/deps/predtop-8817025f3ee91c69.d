/tmp/check/target/debug/deps/predtop-8817025f3ee91c69.d: src/lib.rs

/tmp/check/target/debug/deps/predtop-8817025f3ee91c69: src/lib.rs

src/lib.rs:
