/tmp/check/target/debug/deps/predtop-9db09b247116b9f6.d: src/lib.rs

/tmp/check/target/debug/deps/libpredtop-9db09b247116b9f6.rlib: src/lib.rs

/tmp/check/target/debug/deps/libpredtop-9db09b247116b9f6.rmeta: src/lib.rs

src/lib.rs:
