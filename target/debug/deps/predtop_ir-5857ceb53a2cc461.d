/root/repo/target/debug/deps/predtop_ir-5857ceb53a2cc461.d: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/predtop_ir-5857ceb53a2cc461: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/display.rs:
crates/ir/src/dtype.rs:
crates/ir/src/error.rs:
crates/ir/src/features.rs:
crates/ir/src/graph.rs:
crates/ir/src/op.rs:
crates/ir/src/prune.rs:
crates/ir/src/reach.rs:
crates/ir/src/shape.rs:
crates/ir/src/verify.rs:
