/tmp/check/target/debug/deps/serde-b6461b60e693fd6f.d: /tmp/stubs/serde/src/lib.rs

/tmp/check/target/debug/deps/libserde-b6461b60e693fd6f.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
