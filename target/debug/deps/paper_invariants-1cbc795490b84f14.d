/root/repo/target/debug/deps/paper_invariants-1cbc795490b84f14.d: tests/paper_invariants.rs

/root/repo/target/debug/deps/paper_invariants-1cbc795490b84f14: tests/paper_invariants.rs

tests/paper_invariants.rs:
