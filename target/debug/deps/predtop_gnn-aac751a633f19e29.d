/root/repo/target/debug/deps/predtop_gnn-aac751a633f19e29.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/libpredtop_gnn-aac751a633f19e29.rlib: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/libpredtop_gnn-aac751a633f19e29.rmeta: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
