/tmp/check/target/debug/deps/predtop_runtime-6ab9840fb92ee720.d: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/tmp/check/target/debug/deps/predtop_runtime-6ab9840fb92ee720: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

crates/runtime/src/lib.rs:
crates/runtime/src/exec.rs:
