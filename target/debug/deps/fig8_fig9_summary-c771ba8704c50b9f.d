/tmp/check/target/debug/deps/fig8_fig9_summary-c771ba8704c50b9f.d: crates/bench/src/bin/fig8_fig9_summary.rs Cargo.toml

/tmp/check/target/debug/deps/libfig8_fig9_summary-c771ba8704c50b9f.rmeta: crates/bench/src/bin/fig8_fig9_summary.rs Cargo.toml

crates/bench/src/bin/fig8_fig9_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
