/tmp/check/target/debug/deps/end_to_end-d841c4aa872e5164.d: tests/end_to_end.rs Cargo.toml

/tmp/check/target/debug/deps/libend_to_end-d841c4aa872e5164.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
