/tmp/check/target/debug/deps/predtop_runtime-1cdf652e325e81d2.d: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/tmp/check/target/debug/deps/libpredtop_runtime-1cdf652e325e81d2.rlib: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

/tmp/check/target/debug/deps/libpredtop_runtime-1cdf652e325e81d2.rmeta: crates/runtime/src/lib.rs crates/runtime/src/exec.rs

crates/runtime/src/lib.rs:
crates/runtime/src/exec.rs:
