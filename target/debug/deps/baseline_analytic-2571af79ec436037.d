/tmp/check/target/debug/deps/baseline_analytic-2571af79ec436037.d: crates/bench/src/bin/baseline_analytic.rs

/tmp/check/target/debug/deps/baseline_analytic-2571af79ec436037: crates/bench/src/bin/baseline_analytic.rs

crates/bench/src/bin/baseline_analytic.rs:
