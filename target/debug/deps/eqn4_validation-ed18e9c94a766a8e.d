/root/repo/target/debug/deps/eqn4_validation-ed18e9c94a766a8e.d: crates/bench/src/bin/eqn4_validation.rs

/root/repo/target/debug/deps/eqn4_validation-ed18e9c94a766a8e: crates/bench/src/bin/eqn4_validation.rs

crates/bench/src/bin/eqn4_validation.rs:
