/tmp/check/target/debug/deps/cli-7624cbed2d2642f4.d: tests/cli.rs Cargo.toml

/tmp/check/target/debug/deps/libcli-7624cbed2d2642f4.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_predtop=placeholder:predtop
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
