/root/repo/target/debug/deps/predtop_bench-c1cd837589ef6572.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libpredtop_bench-c1cd837589ef6572.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/jsonout.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
