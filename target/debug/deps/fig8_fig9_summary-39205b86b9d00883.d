/tmp/check/target/debug/deps/fig8_fig9_summary-39205b86b9d00883.d: crates/bench/src/bin/fig8_fig9_summary.rs Cargo.toml

/tmp/check/target/debug/deps/libfig8_fig9_summary-39205b86b9d00883.rmeta: crates/bench/src/bin/fig8_fig9_summary.rs Cargo.toml

crates/bench/src/bin/fig8_fig9_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
