/root/repo/target/debug/deps/fig2_plan_variation-555de6d5fa9a92d2.d: crates/bench/src/bin/fig2_plan_variation.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_plan_variation-555de6d5fa9a92d2.rmeta: crates/bench/src/bin/fig2_plan_variation.rs Cargo.toml

crates/bench/src/bin/fig2_plan_variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
