/tmp/check/target/debug/deps/fig10_optimization-32a032b3451d744e.d: crates/bench/src/bin/fig10_optimization.rs Cargo.toml

/tmp/check/target/debug/deps/libfig10_optimization-32a032b3451d744e.rmeta: crates/bench/src/bin/fig10_optimization.rs Cargo.toml

crates/bench/src/bin/fig10_optimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
