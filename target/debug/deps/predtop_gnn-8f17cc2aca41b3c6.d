/tmp/check/target/debug/deps/predtop_gnn-8f17cc2aca41b3c6.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/tmp/check/target/debug/deps/libpredtop_gnn-8f17cc2aca41b3c6.rlib: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/tmp/check/target/debug/deps/libpredtop_gnn-8f17cc2aca41b3c6.rmeta: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
