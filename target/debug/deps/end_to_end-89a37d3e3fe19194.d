/tmp/check/target/debug/deps/end_to_end-89a37d3e3fe19194.d: tests/end_to_end.rs

/tmp/check/target/debug/deps/end_to_end-89a37d3e3fe19194: tests/end_to_end.rs

tests/end_to_end.rs:
