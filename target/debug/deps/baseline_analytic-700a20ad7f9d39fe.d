/root/repo/target/debug/deps/baseline_analytic-700a20ad7f9d39fe.d: crates/bench/src/bin/baseline_analytic.rs

/root/repo/target/debug/deps/baseline_analytic-700a20ad7f9d39fe: crates/bench/src/bin/baseline_analytic.rs

crates/bench/src/bin/baseline_analytic.rs:
