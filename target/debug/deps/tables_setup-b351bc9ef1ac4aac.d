/root/repo/target/debug/deps/tables_setup-b351bc9ef1ac4aac.d: crates/bench/src/bin/tables_setup.rs

/root/repo/target/debug/deps/tables_setup-b351bc9ef1ac4aac: crates/bench/src/bin/tables_setup.rs

crates/bench/src/bin/tables_setup.rs:
