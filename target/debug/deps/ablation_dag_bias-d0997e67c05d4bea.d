/root/repo/target/debug/deps/ablation_dag_bias-d0997e67c05d4bea.d: crates/bench/src/bin/ablation_dag_bias.rs

/root/repo/target/debug/deps/ablation_dag_bias-d0997e67c05d4bea: crates/bench/src/bin/ablation_dag_bias.rs

crates/bench/src/bin/ablation_dag_bias.rs:
