/tmp/check/target/debug/deps/fig2_plan_variation-847ae44f59a4b8bf.d: crates/bench/src/bin/fig2_plan_variation.rs Cargo.toml

/tmp/check/target/debug/deps/libfig2_plan_variation-847ae44f59a4b8bf.rmeta: crates/bench/src/bin/fig2_plan_variation.rs Cargo.toml

crates/bench/src/bin/fig2_plan_variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
