/tmp/check/target/debug/deps/ablation_dag_bias-4a9901cb08614012.d: crates/bench/src/bin/ablation_dag_bias.rs

/tmp/check/target/debug/deps/ablation_dag_bias-4a9901cb08614012: crates/bench/src/bin/ablation_dag_bias.rs

crates/bench/src/bin/ablation_dag_bias.rs:
