/tmp/check/target/debug/deps/predtop_bench-47acc5f676ad087d.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/tmp/check/target/debug/deps/libpredtop_bench-47acc5f676ad087d.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/tmp/check/target/debug/deps/libpredtop_bench-47acc5f676ad087d.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
