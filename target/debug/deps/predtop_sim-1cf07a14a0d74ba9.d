/root/repo/target/debug/deps/predtop_sim-1cf07a14a0d74ba9.d: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/predtop_sim-1cf07a14a0d74ba9: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/costing.rs:
crates/sim/src/memory.rs:
crates/sim/src/opcost.rs:
crates/sim/src/pipeline.rs:
crates/sim/src/profiler.rs:
crates/sim/src/trace.rs:
