/root/repo/target/debug/deps/table5_mre_platform1-a285bb936481bd2a.d: crates/bench/src/bin/table5_mre_platform1.rs Cargo.toml

/root/repo/target/debug/deps/libtable5_mre_platform1-a285bb936481bd2a.rmeta: crates/bench/src/bin/table5_mre_platform1.rs Cargo.toml

crates/bench/src/bin/table5_mre_platform1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
