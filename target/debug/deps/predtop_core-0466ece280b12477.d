/root/repo/target/debug/deps/predtop_core-0466ece280b12477.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/debug/deps/libpredtop_core-0466ece280b12477.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/debug/deps/libpredtop_core-0466ece280b12477.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
