/root/repo/target/debug/deps/ablation_early_stop-d761861faba96de2.d: crates/bench/src/bin/ablation_early_stop.rs

/root/repo/target/debug/deps/ablation_early_stop-d761861faba96de2: crates/bench/src/bin/ablation_early_stop.rs

crates/bench/src/bin/ablation_early_stop.rs:
