/tmp/check/target/debug/deps/predtop_parallel-73c401e5656cb204.d: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_parallel-73c401e5656cb204.rmeta: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs Cargo.toml

crates/parallel/src/lib.rs:
crates/parallel/src/cache.rs:
crates/parallel/src/config.rs:
crates/parallel/src/interstage.rs:
crates/parallel/src/intra.rs:
crates/parallel/src/plan.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/sharding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
