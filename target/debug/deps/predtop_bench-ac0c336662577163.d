/tmp/check/target/debug/deps/predtop_bench-ac0c336662577163.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/tmp/check/target/debug/deps/predtop_bench-ac0c336662577163: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
