/tmp/check/target/debug/deps/predtop_models-702820354543c0c5.d: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_models-702820354543c0c5.rmeta: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/layers.rs:
crates/models/src/spec.rs:
crates/models/src/stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
