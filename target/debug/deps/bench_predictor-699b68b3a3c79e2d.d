/root/repo/target/debug/deps/bench_predictor-699b68b3a3c79e2d.d: crates/bench/src/bin/bench_predictor.rs

/root/repo/target/debug/deps/bench_predictor-699b68b3a3c79e2d: crates/bench/src/bin/bench_predictor.rs

crates/bench/src/bin/bench_predictor.rs:
