/root/repo/target/debug/deps/ablation_k_range-79fa2d79f530ade0.d: crates/bench/src/bin/ablation_k_range.rs

/root/repo/target/debug/deps/ablation_k_range-79fa2d79f530ade0: crates/bench/src/bin/ablation_k_range.rs

crates/bench/src/bin/ablation_k_range.rs:
