/tmp/check/target/debug/deps/predtop_lint-60b4b1b4310298b6.d: crates/analyze/src/bin/predtop_lint.rs

/tmp/check/target/debug/deps/predtop_lint-60b4b1b4310298b6: crates/analyze/src/bin/predtop_lint.rs

crates/analyze/src/bin/predtop_lint.rs:
