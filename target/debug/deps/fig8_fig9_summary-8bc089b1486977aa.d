/root/repo/target/debug/deps/fig8_fig9_summary-8bc089b1486977aa.d: crates/bench/src/bin/fig8_fig9_summary.rs

/root/repo/target/debug/deps/fig8_fig9_summary-8bc089b1486977aa: crates/bench/src/bin/fig8_fig9_summary.rs

crates/bench/src/bin/fig8_fig9_summary.rs:
