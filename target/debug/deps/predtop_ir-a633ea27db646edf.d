/tmp/check/target/debug/deps/predtop_ir-a633ea27db646edf.d: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_ir-a633ea27db646edf.rmeta: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/display.rs:
crates/ir/src/dtype.rs:
crates/ir/src/error.rs:
crates/ir/src/features.rs:
crates/ir/src/graph.rs:
crates/ir/src/op.rs:
crates/ir/src/prune.rs:
crates/ir/src/reach.rs:
crates/ir/src/shape.rs:
crates/ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
