/tmp/check/target/debug/deps/eqn4_validation-ab92001b748a4e80.d: crates/bench/src/bin/eqn4_validation.rs

/tmp/check/target/debug/deps/eqn4_validation-ab92001b748a4e80: crates/bench/src/bin/eqn4_validation.rs

crates/bench/src/bin/eqn4_validation.rs:
