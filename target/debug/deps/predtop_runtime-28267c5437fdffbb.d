/tmp/check/target/debug/deps/predtop_runtime-28267c5437fdffbb.d: crates/runtime/src/lib.rs crates/runtime/src/exec.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_runtime-28267c5437fdffbb.rmeta: crates/runtime/src/lib.rs crates/runtime/src/exec.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
