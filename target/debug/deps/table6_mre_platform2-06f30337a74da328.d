/root/repo/target/debug/deps/table6_mre_platform2-06f30337a74da328.d: crates/bench/src/bin/table6_mre_platform2.rs

/root/repo/target/debug/deps/table6_mre_platform2-06f30337a74da328: crates/bench/src/bin/table6_mre_platform2.rs

crates/bench/src/bin/table6_mre_platform2.rs:
