/root/repo/target/debug/deps/search_scaling-f5234980f81457e0.d: crates/bench/src/bin/search_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_scaling-f5234980f81457e0.rmeta: crates/bench/src/bin/search_scaling.rs Cargo.toml

crates/bench/src/bin/search_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
