/root/repo/target/debug/deps/ablation_early_stop-4a0536b9b9b26fee.d: crates/bench/src/bin/ablation_early_stop.rs Cargo.toml

/root/repo/target/debug/deps/libablation_early_stop-4a0536b9b9b26fee.rmeta: crates/bench/src/bin/ablation_early_stop.rs Cargo.toml

crates/bench/src/bin/ablation_early_stop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
