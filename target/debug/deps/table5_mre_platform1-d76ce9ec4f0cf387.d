/root/repo/target/debug/deps/table5_mre_platform1-d76ce9ec4f0cf387.d: crates/bench/src/bin/table5_mre_platform1.rs

/root/repo/target/debug/deps/table5_mre_platform1-d76ce9ec4f0cf387: crates/bench/src/bin/table5_mre_platform1.rs

crates/bench/src/bin/table5_mre_platform1.rs:
