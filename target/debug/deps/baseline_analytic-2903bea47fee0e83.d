/tmp/check/target/debug/deps/baseline_analytic-2903bea47fee0e83.d: crates/bench/src/bin/baseline_analytic.rs Cargo.toml

/tmp/check/target/debug/deps/libbaseline_analytic-2903bea47fee0e83.rmeta: crates/bench/src/bin/baseline_analytic.rs Cargo.toml

crates/bench/src/bin/baseline_analytic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
