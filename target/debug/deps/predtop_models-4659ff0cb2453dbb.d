/root/repo/target/debug/deps/predtop_models-4659ff0cb2453dbb.d: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/root/repo/target/debug/deps/predtop_models-4659ff0cb2453dbb: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

crates/models/src/lib.rs:
crates/models/src/layers.rs:
crates/models/src/spec.rs:
crates/models/src/stage.rs:
