/tmp/check/target/debug/deps/predtop_parallel-aab2f90d310f5105.d: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/tmp/check/target/debug/deps/libpredtop_parallel-aab2f90d310f5105.rlib: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/tmp/check/target/debug/deps/libpredtop_parallel-aab2f90d310f5105.rmeta: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

crates/parallel/src/lib.rs:
crates/parallel/src/cache.rs:
crates/parallel/src/config.rs:
crates/parallel/src/interstage.rs:
crates/parallel/src/intra.rs:
crates/parallel/src/plan.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/sharding.rs:
