/tmp/check/target/debug/deps/predtop-4d6ac8adbb459106.d: src/main.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop-4d6ac8adbb459106.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
