/root/repo/target/debug/deps/predtop_gnn-513330b171bcc3d1.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libpredtop_gnn-513330b171bcc3d1.rmeta: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs Cargo.toml

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
