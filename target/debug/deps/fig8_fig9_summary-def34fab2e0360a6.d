/tmp/check/target/debug/deps/fig8_fig9_summary-def34fab2e0360a6.d: crates/bench/src/bin/fig8_fig9_summary.rs

/tmp/check/target/debug/deps/fig8_fig9_summary-def34fab2e0360a6: crates/bench/src/bin/fig8_fig9_summary.rs

crates/bench/src/bin/fig8_fig9_summary.rs:
