/root/repo/target/debug/deps/search_engine-b947e662b5ed0f54.d: tests/search_engine.rs

/root/repo/target/debug/deps/search_engine-b947e662b5ed0f54: tests/search_engine.rs

tests/search_engine.rs:
