/root/repo/target/debug/deps/table6_mre_platform2-b92ba4e1886898ba.d: crates/bench/src/bin/table6_mre_platform2.rs Cargo.toml

/root/repo/target/debug/deps/libtable6_mre_platform2-b92ba4e1886898ba.rmeta: crates/bench/src/bin/table6_mre_platform2.rs Cargo.toml

crates/bench/src/bin/table6_mre_platform2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
