/root/repo/target/debug/deps/fig10_optimization-4620075653d5ada7.d: crates/bench/src/bin/fig10_optimization.rs

/root/repo/target/debug/deps/fig10_optimization-4620075653d5ada7: crates/bench/src/bin/fig10_optimization.rs

crates/bench/src/bin/fig10_optimization.rs:
