/tmp/check/target/debug/deps/predtop_core-3dbd97992763d930.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_core-3dbd97992763d930.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
