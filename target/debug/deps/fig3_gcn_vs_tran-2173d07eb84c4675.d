/root/repo/target/debug/deps/fig3_gcn_vs_tran-2173d07eb84c4675.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs

/root/repo/target/debug/deps/fig3_gcn_vs_tran-2173d07eb84c4675: crates/bench/src/bin/fig3_gcn_vs_tran.rs

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
