/tmp/check/target/debug/deps/predtop_ir-6aa940675406e6e0.d: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

/tmp/check/target/debug/deps/libpredtop_ir-6aa940675406e6e0.rlib: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

/tmp/check/target/debug/deps/libpredtop_ir-6aa940675406e6e0.rmeta: crates/ir/src/lib.rs crates/ir/src/display.rs crates/ir/src/dtype.rs crates/ir/src/error.rs crates/ir/src/features.rs crates/ir/src/graph.rs crates/ir/src/op.rs crates/ir/src/prune.rs crates/ir/src/reach.rs crates/ir/src/shape.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/display.rs:
crates/ir/src/dtype.rs:
crates/ir/src/error.rs:
crates/ir/src/features.rs:
crates/ir/src/graph.rs:
crates/ir/src/op.rs:
crates/ir/src/prune.rs:
crates/ir/src/reach.rs:
crates/ir/src/shape.rs:
crates/ir/src/verify.rs:
