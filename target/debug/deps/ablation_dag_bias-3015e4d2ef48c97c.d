/root/repo/target/debug/deps/ablation_dag_bias-3015e4d2ef48c97c.d: crates/bench/src/bin/ablation_dag_bias.rs

/root/repo/target/debug/deps/ablation_dag_bias-3015e4d2ef48c97c: crates/bench/src/bin/ablation_dag_bias.rs

crates/bench/src/bin/ablation_dag_bias.rs:
