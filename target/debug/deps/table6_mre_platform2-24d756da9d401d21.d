/tmp/check/target/debug/deps/table6_mre_platform2-24d756da9d401d21.d: crates/bench/src/bin/table6_mre_platform2.rs Cargo.toml

/tmp/check/target/debug/deps/libtable6_mre_platform2-24d756da9d401d21.rmeta: crates/bench/src/bin/table6_mre_platform2.rs Cargo.toml

crates/bench/src/bin/table6_mre_platform2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
