/tmp/check/target/debug/deps/predtop-1100368aafa96e53.d: src/main.rs

/tmp/check/target/debug/deps/predtop-1100368aafa96e53: src/main.rs

src/main.rs:
