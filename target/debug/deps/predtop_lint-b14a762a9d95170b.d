/tmp/check/target/debug/deps/predtop_lint-b14a762a9d95170b.d: crates/analyze/src/bin/predtop_lint.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_lint-b14a762a9d95170b.rmeta: crates/analyze/src/bin/predtop_lint.rs Cargo.toml

crates/analyze/src/bin/predtop_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
