/tmp/check/target/debug/deps/tables_setup-1f9610a80260fb7b.d: crates/bench/src/bin/tables_setup.rs Cargo.toml

/tmp/check/target/debug/deps/libtables_setup-1f9610a80260fb7b.rmeta: crates/bench/src/bin/tables_setup.rs Cargo.toml

crates/bench/src/bin/tables_setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
