/root/repo/target/debug/deps/fig3_gcn_vs_tran-353192a4ba8b9680.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_gcn_vs_tran-353192a4ba8b9680.rmeta: crates/bench/src/bin/fig3_gcn_vs_tran.rs Cargo.toml

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
