/tmp/check/target/debug/deps/table5_mre_platform1-d13b03a50df7476c.d: crates/bench/src/bin/table5_mre_platform1.rs

/tmp/check/target/debug/deps/table5_mre_platform1-d13b03a50df7476c: crates/bench/src/bin/table5_mre_platform1.rs

crates/bench/src/bin/table5_mre_platform1.rs:
