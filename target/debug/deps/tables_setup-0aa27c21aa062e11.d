/root/repo/target/debug/deps/tables_setup-0aa27c21aa062e11.d: crates/bench/src/bin/tables_setup.rs

/root/repo/target/debug/deps/tables_setup-0aa27c21aa062e11: crates/bench/src/bin/tables_setup.rs

crates/bench/src/bin/tables_setup.rs:
