/tmp/check/target/debug/deps/search_engine-1e9a315a730f9dc5.d: tests/search_engine.rs

/tmp/check/target/debug/deps/search_engine-1e9a315a730f9dc5: tests/search_engine.rs

tests/search_engine.rs:
