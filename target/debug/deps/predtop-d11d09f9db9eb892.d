/root/repo/target/debug/deps/predtop-d11d09f9db9eb892.d: src/lib.rs

/root/repo/target/debug/deps/predtop-d11d09f9db9eb892: src/lib.rs

src/lib.rs:
