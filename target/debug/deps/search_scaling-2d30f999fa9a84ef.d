/root/repo/target/debug/deps/search_scaling-2d30f999fa9a84ef.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-2d30f999fa9a84ef: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
