/tmp/check/target/debug/deps/fig2_plan_variation-2a64bd757a2691d7.d: crates/bench/src/bin/fig2_plan_variation.rs

/tmp/check/target/debug/deps/fig2_plan_variation-2a64bd757a2691d7: crates/bench/src/bin/fig2_plan_variation.rs

crates/bench/src/bin/fig2_plan_variation.rs:
