/tmp/check/target/debug/deps/ablation_loss_prune-4feb391920a82eb5.d: crates/bench/src/bin/ablation_loss_prune.rs Cargo.toml

/tmp/check/target/debug/deps/libablation_loss_prune-4feb391920a82eb5.rmeta: crates/bench/src/bin/ablation_loss_prune.rs Cargo.toml

crates/bench/src/bin/ablation_loss_prune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
