/root/repo/target/debug/deps/bench_predictor-cb03fc397844c49c.d: crates/bench/src/bin/bench_predictor.rs

/root/repo/target/debug/deps/bench_predictor-cb03fc397844c49c: crates/bench/src/bin/bench_predictor.rs

crates/bench/src/bin/bench_predictor.rs:
