/root/repo/target/debug/deps/predtop_parallel-6ce551b7de66dfa4.d: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

/root/repo/target/debug/deps/predtop_parallel-6ce551b7de66dfa4: crates/parallel/src/lib.rs crates/parallel/src/cache.rs crates/parallel/src/config.rs crates/parallel/src/interstage.rs crates/parallel/src/intra.rs crates/parallel/src/plan.rs crates/parallel/src/schedule.rs crates/parallel/src/sharding.rs

crates/parallel/src/lib.rs:
crates/parallel/src/cache.rs:
crates/parallel/src/config.rs:
crates/parallel/src/interstage.rs:
crates/parallel/src/intra.rs:
crates/parallel/src/plan.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/sharding.rs:
