/tmp/check/target/debug/deps/determinism-12655ee908fb65f2.d: tests/determinism.rs

/tmp/check/target/debug/deps/determinism-12655ee908fb65f2: tests/determinism.rs

tests/determinism.rs:
