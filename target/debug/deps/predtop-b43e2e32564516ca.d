/tmp/check/target/debug/deps/predtop-b43e2e32564516ca.d: src/main.rs

/tmp/check/target/debug/deps/predtop-b43e2e32564516ca: src/main.rs

src/main.rs:
