/tmp/check/target/debug/deps/ablation_early_stop-3ea66c3976c754c2.d: crates/bench/src/bin/ablation_early_stop.rs Cargo.toml

/tmp/check/target/debug/deps/libablation_early_stop-3ea66c3976c754c2.rmeta: crates/bench/src/bin/ablation_early_stop.rs Cargo.toml

crates/bench/src/bin/ablation_early_stop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
