/root/repo/target/debug/deps/fig2_plan_variation-2c6cc07c23bcdb5d.d: crates/bench/src/bin/fig2_plan_variation.rs

/root/repo/target/debug/deps/fig2_plan_variation-2c6cc07c23bcdb5d: crates/bench/src/bin/fig2_plan_variation.rs

crates/bench/src/bin/fig2_plan_variation.rs:
