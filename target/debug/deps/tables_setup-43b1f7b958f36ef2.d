/root/repo/target/debug/deps/tables_setup-43b1f7b958f36ef2.d: crates/bench/src/bin/tables_setup.rs Cargo.toml

/root/repo/target/debug/deps/libtables_setup-43b1f7b958f36ef2.rmeta: crates/bench/src/bin/tables_setup.rs Cargo.toml

crates/bench/src/bin/tables_setup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
