/root/repo/target/debug/deps/table6_mre_platform2-91b175c22861fb31.d: crates/bench/src/bin/table6_mre_platform2.rs

/root/repo/target/debug/deps/table6_mre_platform2-91b175c22861fb31: crates/bench/src/bin/table6_mre_platform2.rs

crates/bench/src/bin/table6_mre_platform2.rs:
