/tmp/check/target/debug/deps/fig3_gcn_vs_tran-03cce71cb3441e6c.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs Cargo.toml

/tmp/check/target/debug/deps/libfig3_gcn_vs_tran-03cce71cb3441e6c.rmeta: crates/bench/src/bin/fig3_gcn_vs_tran.rs Cargo.toml

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
