/tmp/check/target/debug/deps/predtop-8f0448e7f9b10047.d: src/lib.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop-8f0448e7f9b10047.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
