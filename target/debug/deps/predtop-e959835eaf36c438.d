/root/repo/target/debug/deps/predtop-e959835eaf36c438.d: src/main.rs

/root/repo/target/debug/deps/predtop-e959835eaf36c438: src/main.rs

src/main.rs:
