/tmp/check/target/debug/deps/predtop_sim-3b89274c08a05b0f.d: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/tmp/check/target/debug/deps/libpredtop_sim-3b89274c08a05b0f.rlib: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

/tmp/check/target/debug/deps/libpredtop_sim-3b89274c08a05b0f.rmeta: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/costing.rs:
crates/sim/src/memory.rs:
crates/sim/src/opcost.rs:
crates/sim/src/pipeline.rs:
crates/sim/src/profiler.rs:
crates/sim/src/trace.rs:
