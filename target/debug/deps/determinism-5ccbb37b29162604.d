/root/repo/target/debug/deps/determinism-5ccbb37b29162604.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-5ccbb37b29162604: tests/determinism.rs

tests/determinism.rs:
