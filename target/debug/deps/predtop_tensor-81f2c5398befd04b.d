/root/repo/target/debug/deps/predtop_tensor-81f2c5398befd04b.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libpredtop_tensor-81f2c5398befd04b.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/libpredtop_tensor-81f2c5398befd04b.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
