/root/repo/target/debug/deps/baseline_analytic-4f163e2b4c730162.d: crates/bench/src/bin/baseline_analytic.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_analytic-4f163e2b4c730162.rmeta: crates/bench/src/bin/baseline_analytic.rs Cargo.toml

crates/bench/src/bin/baseline_analytic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
