/root/repo/target/debug/deps/predtop_lint-67fa9c015078c84e.d: crates/analyze/src/bin/predtop_lint.rs

/root/repo/target/debug/deps/predtop_lint-67fa9c015078c84e: crates/analyze/src/bin/predtop_lint.rs

crates/analyze/src/bin/predtop_lint.rs:
