/root/repo/target/debug/deps/search_scaling-1cf8b97c08066a8b.d: crates/bench/src/bin/search_scaling.rs

/root/repo/target/debug/deps/search_scaling-1cf8b97c08066a8b: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
