/tmp/check/target/debug/deps/ablation_loss_prune-8feeef4be4ba58ff.d: crates/bench/src/bin/ablation_loss_prune.rs

/tmp/check/target/debug/deps/ablation_loss_prune-8feeef4be4ba58ff: crates/bench/src/bin/ablation_loss_prune.rs

crates/bench/src/bin/ablation_loss_prune.rs:
