/tmp/check/target/debug/deps/ablation_k_range-10e1623ce397f1d4.d: crates/bench/src/bin/ablation_k_range.rs

/tmp/check/target/debug/deps/ablation_k_range-10e1623ce397f1d4: crates/bench/src/bin/ablation_k_range.rs

crates/bench/src/bin/ablation_k_range.rs:
