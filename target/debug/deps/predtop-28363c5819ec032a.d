/root/repo/target/debug/deps/predtop-28363c5819ec032a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpredtop-28363c5819ec032a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
