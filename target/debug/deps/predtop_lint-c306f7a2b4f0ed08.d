/tmp/check/target/debug/deps/predtop_lint-c306f7a2b4f0ed08.d: crates/analyze/src/bin/predtop_lint.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_lint-c306f7a2b4f0ed08.rmeta: crates/analyze/src/bin/predtop_lint.rs Cargo.toml

crates/analyze/src/bin/predtop_lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
