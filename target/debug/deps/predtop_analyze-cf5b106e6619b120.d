/tmp/check/target/debug/deps/predtop_analyze-cf5b106e6619b120.d: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/tmp/check/target/debug/deps/libpredtop_analyze-cf5b106e6619b120.rlib: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/tmp/check/target/debug/deps/libpredtop_analyze-cf5b106e6619b120.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/graph_passes.rs:
crates/analyze/src/legality.rs:
crates/analyze/src/pass.rs:
crates/analyze/src/plan_passes.rs:
crates/analyze/src/registry.rs:
crates/analyze/src/render.rs:
