/tmp/check/target/debug/deps/predtop_sim-9b8bfc8bedf17ced.d: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_sim-9b8bfc8bedf17ced.rmeta: crates/sim/src/lib.rs crates/sim/src/costing.rs crates/sim/src/memory.rs crates/sim/src/opcost.rs crates/sim/src/pipeline.rs crates/sim/src/profiler.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/costing.rs:
crates/sim/src/memory.rs:
crates/sim/src/opcost.rs:
crates/sim/src/pipeline.rs:
crates/sim/src/profiler.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
