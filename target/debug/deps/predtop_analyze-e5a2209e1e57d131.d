/root/repo/target/debug/deps/predtop_analyze-e5a2209e1e57d131.d: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

/root/repo/target/debug/deps/predtop_analyze-e5a2209e1e57d131: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs

crates/analyze/src/lib.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/graph_passes.rs:
crates/analyze/src/legality.rs:
crates/analyze/src/pass.rs:
crates/analyze/src/plan_passes.rs:
crates/analyze/src/registry.rs:
crates/analyze/src/render.rs:
