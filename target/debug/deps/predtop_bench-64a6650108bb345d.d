/root/repo/target/debug/deps/predtop_bench-64a6650108bb345d.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/predtop_bench-64a6650108bb345d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/jsonout.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
