/tmp/check/target/debug/deps/ablation_k_range-ef8d7c1bcbaf7f08.d: crates/bench/src/bin/ablation_k_range.rs Cargo.toml

/tmp/check/target/debug/deps/libablation_k_range-ef8d7c1bcbaf7f08.rmeta: crates/bench/src/bin/ablation_k_range.rs Cargo.toml

crates/bench/src/bin/ablation_k_range.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
