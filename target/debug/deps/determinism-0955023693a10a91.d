/root/repo/target/debug/deps/determinism-0955023693a10a91.d: crates/gnn/tests/determinism.rs

/root/repo/target/debug/deps/determinism-0955023693a10a91: crates/gnn/tests/determinism.rs

crates/gnn/tests/determinism.rs:
