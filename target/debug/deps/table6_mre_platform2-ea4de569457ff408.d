/tmp/check/target/debug/deps/table6_mre_platform2-ea4de569457ff408.d: crates/bench/src/bin/table6_mre_platform2.rs

/tmp/check/target/debug/deps/table6_mre_platform2-ea4de569457ff408: crates/bench/src/bin/table6_mre_platform2.rs

crates/bench/src/bin/table6_mre_platform2.rs:
