/tmp/check/target/debug/deps/fig10_optimization-cddf35a81f45e23f.d: crates/bench/src/bin/fig10_optimization.rs

/tmp/check/target/debug/deps/fig10_optimization-cddf35a81f45e23f: crates/bench/src/bin/fig10_optimization.rs

crates/bench/src/bin/fig10_optimization.rs:
