/root/repo/target/debug/deps/eqn4_validation-59462ae15cb06618.d: crates/bench/src/bin/eqn4_validation.rs Cargo.toml

/root/repo/target/debug/deps/libeqn4_validation-59462ae15cb06618.rmeta: crates/bench/src/bin/eqn4_validation.rs Cargo.toml

crates/bench/src/bin/eqn4_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
