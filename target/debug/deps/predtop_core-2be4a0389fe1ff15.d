/root/repo/target/debug/deps/predtop_core-2be4a0389fe1ff15.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/root/repo/target/debug/deps/predtop_core-2be4a0389fe1ff15: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
