/tmp/check/target/debug/deps/fig10_optimization-3f1011b2547b36d1.d: crates/bench/src/bin/fig10_optimization.rs Cargo.toml

/tmp/check/target/debug/deps/libfig10_optimization-3f1011b2547b36d1.rmeta: crates/bench/src/bin/fig10_optimization.rs Cargo.toml

crates/bench/src/bin/fig10_optimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
