/root/repo/target/debug/deps/ablation_loss_prune-1e52649937633679.d: crates/bench/src/bin/ablation_loss_prune.rs

/root/repo/target/debug/deps/ablation_loss_prune-1e52649937633679: crates/bench/src/bin/ablation_loss_prune.rs

crates/bench/src/bin/ablation_loss_prune.rs:
