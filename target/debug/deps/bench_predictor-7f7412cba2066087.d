/root/repo/target/debug/deps/bench_predictor-7f7412cba2066087.d: crates/bench/src/bin/bench_predictor.rs Cargo.toml

/root/repo/target/debug/deps/libbench_predictor-7f7412cba2066087.rmeta: crates/bench/src/bin/bench_predictor.rs Cargo.toml

crates/bench/src/bin/bench_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
