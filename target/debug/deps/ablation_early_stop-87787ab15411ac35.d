/tmp/check/target/debug/deps/ablation_early_stop-87787ab15411ac35.d: crates/bench/src/bin/ablation_early_stop.rs

/tmp/check/target/debug/deps/ablation_early_stop-87787ab15411ac35: crates/bench/src/bin/ablation_early_stop.rs

crates/bench/src/bin/ablation_early_stop.rs:
