/root/repo/target/debug/deps/table5_mre_platform1-1315ad40edc96094.d: crates/bench/src/bin/table5_mre_platform1.rs

/root/repo/target/debug/deps/table5_mre_platform1-1315ad40edc96094: crates/bench/src/bin/table5_mre_platform1.rs

crates/bench/src/bin/table5_mre_platform1.rs:
