/tmp/check/target/debug/deps/cli-ac3012166a531c6c.d: tests/cli.rs

/tmp/check/target/debug/deps/cli-ac3012166a531c6c: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_predtop=/tmp/check/target/debug/predtop
