/root/repo/target/debug/deps/ablation_k_range-b7a7b90eb4d044a0.d: crates/bench/src/bin/ablation_k_range.rs

/root/repo/target/debug/deps/ablation_k_range-b7a7b90eb4d044a0: crates/bench/src/bin/ablation_k_range.rs

crates/bench/src/bin/ablation_k_range.rs:
