/root/repo/target/debug/deps/predtop-68c3b960a8a1e724.d: src/main.rs

/root/repo/target/debug/deps/predtop-68c3b960a8a1e724: src/main.rs

src/main.rs:
