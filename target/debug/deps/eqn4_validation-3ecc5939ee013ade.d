/tmp/check/target/debug/deps/eqn4_validation-3ecc5939ee013ade.d: crates/bench/src/bin/eqn4_validation.rs Cargo.toml

/tmp/check/target/debug/deps/libeqn4_validation-3ecc5939ee013ade.rmeta: crates/bench/src/bin/eqn4_validation.rs Cargo.toml

crates/bench/src/bin/eqn4_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
