/tmp/check/target/debug/deps/predtop_core-4147844769da8815.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/tmp/check/target/debug/deps/libpredtop_core-4147844769da8815.rlib: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/tmp/check/target/debug/deps/libpredtop_core-4147844769da8815.rmeta: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
