/tmp/check/target/debug/deps/search_scaling-7dcc334e2e97e1cd.d: crates/bench/src/bin/search_scaling.rs Cargo.toml

/tmp/check/target/debug/deps/libsearch_scaling-7dcc334e2e97e1cd.rmeta: crates/bench/src/bin/search_scaling.rs Cargo.toml

crates/bench/src/bin/search_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
