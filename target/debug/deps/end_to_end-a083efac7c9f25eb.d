/root/repo/target/debug/deps/end_to_end-a083efac7c9f25eb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a083efac7c9f25eb: tests/end_to_end.rs

tests/end_to_end.rs:
