/root/repo/target/debug/deps/baseline_analytic-2d4b8aaf13eebb1a.d: crates/bench/src/bin/baseline_analytic.rs

/root/repo/target/debug/deps/baseline_analytic-2d4b8aaf13eebb1a: crates/bench/src/bin/baseline_analytic.rs

crates/bench/src/bin/baseline_analytic.rs:
