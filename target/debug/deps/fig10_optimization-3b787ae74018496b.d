/root/repo/target/debug/deps/fig10_optimization-3b787ae74018496b.d: crates/bench/src/bin/fig10_optimization.rs

/root/repo/target/debug/deps/fig10_optimization-3b787ae74018496b: crates/bench/src/bin/fig10_optimization.rs

crates/bench/src/bin/fig10_optimization.rs:
