/root/repo/target/debug/deps/ablation_dag_bias-4d28a869a5846179.d: crates/bench/src/bin/ablation_dag_bias.rs Cargo.toml

/root/repo/target/debug/deps/libablation_dag_bias-4d28a869a5846179.rmeta: crates/bench/src/bin/ablation_dag_bias.rs Cargo.toml

crates/bench/src/bin/ablation_dag_bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
