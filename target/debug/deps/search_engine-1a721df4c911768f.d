/tmp/check/target/debug/deps/search_engine-1a721df4c911768f.d: tests/search_engine.rs Cargo.toml

/tmp/check/target/debug/deps/libsearch_engine-1a721df4c911768f.rmeta: tests/search_engine.rs Cargo.toml

tests/search_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
