/tmp/check/target/debug/deps/proptest-ad126dd73efa8aa4.d: /tmp/stubs/proptest/src/lib.rs

/tmp/check/target/debug/deps/libproptest-ad126dd73efa8aa4.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
