/tmp/check/target/debug/deps/paper_invariants-9f98a815aee8f486.d: tests/paper_invariants.rs Cargo.toml

/tmp/check/target/debug/deps/libpaper_invariants-9f98a815aee8f486.rmeta: tests/paper_invariants.rs Cargo.toml

tests/paper_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
