/tmp/check/target/debug/deps/predtop_cluster-b4ecce897a6faca1.d: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_cluster-b4ecce897a6faca1.rmeta: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
