/root/repo/target/debug/deps/fig8_fig9_summary-767bb698ad2a9c02.d: crates/bench/src/bin/fig8_fig9_summary.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_fig9_summary-767bb698ad2a9c02.rmeta: crates/bench/src/bin/fig8_fig9_summary.rs Cargo.toml

crates/bench/src/bin/fig8_fig9_summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
