/tmp/check/target/debug/deps/fig3_gcn_vs_tran-4586f88bf37db36e.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs

/tmp/check/target/debug/deps/fig3_gcn_vs_tran-4586f88bf37db36e: crates/bench/src/bin/fig3_gcn_vs_tran.rs

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
