/root/repo/target/debug/deps/predtop-241c096c413101cd.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpredtop-241c096c413101cd.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
