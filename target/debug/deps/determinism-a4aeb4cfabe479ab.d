/tmp/check/target/debug/deps/determinism-a4aeb4cfabe479ab.d: tests/determinism.rs Cargo.toml

/tmp/check/target/debug/deps/libdeterminism-a4aeb4cfabe479ab.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
