/tmp/check/target/debug/deps/predtop_models-161a57ac4fb06b31.d: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/tmp/check/target/debug/deps/libpredtop_models-161a57ac4fb06b31.rlib: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

/tmp/check/target/debug/deps/libpredtop_models-161a57ac4fb06b31.rmeta: crates/models/src/lib.rs crates/models/src/layers.rs crates/models/src/spec.rs crates/models/src/stage.rs

crates/models/src/lib.rs:
crates/models/src/layers.rs:
crates/models/src/spec.rs:
crates/models/src/stage.rs:
