/tmp/check/target/debug/deps/fig2_plan_variation-d62a977f9124f9b0.d: crates/bench/src/bin/fig2_plan_variation.rs Cargo.toml

/tmp/check/target/debug/deps/libfig2_plan_variation-d62a977f9124f9b0.rmeta: crates/bench/src/bin/fig2_plan_variation.rs Cargo.toml

crates/bench/src/bin/fig2_plan_variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
