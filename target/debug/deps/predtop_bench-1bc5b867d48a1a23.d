/root/repo/target/debug/deps/predtop_bench-1bc5b867d48a1a23.d: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpredtop_bench-1bc5b867d48a1a23.rlib: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libpredtop_bench-1bc5b867d48a1a23.rmeta: crates/bench/src/lib.rs crates/bench/src/grid.rs crates/bench/src/jsonout.rs crates/bench/src/protocol.rs crates/bench/src/scenario.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/grid.rs:
crates/bench/src/jsonout.rs:
crates/bench/src/protocol.rs:
crates/bench/src/scenario.rs:
crates/bench/src/table.rs:
