/tmp/check/target/debug/deps/search_scaling-cca64610785535f2.d: crates/bench/src/bin/search_scaling.rs

/tmp/check/target/debug/deps/search_scaling-cca64610785535f2: crates/bench/src/bin/search_scaling.rs

crates/bench/src/bin/search_scaling.rs:
