/tmp/check/target/debug/deps/predtop_core-f47dc927211bad11.d: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

/tmp/check/target/debug/deps/predtop_core-f47dc927211bad11: crates/core/src/lib.rs crates/core/src/analytic.rs crates/core/src/graybox.rs crates/core/src/persist.rs crates/core/src/predictor.rs crates/core/src/search.rs

crates/core/src/lib.rs:
crates/core/src/analytic.rs:
crates/core/src/graybox.rs:
crates/core/src/persist.rs:
crates/core/src/predictor.rs:
crates/core/src/search.rs:
