/tmp/check/target/debug/deps/analyzer-3e67bcadcb40dc61.d: crates/analyze/tests/analyzer.rs crates/analyze/tests/golden/kitchen_sink.json Cargo.toml

/tmp/check/target/debug/deps/libanalyzer-3e67bcadcb40dc61.rmeta: crates/analyze/tests/analyzer.rs crates/analyze/tests/golden/kitchen_sink.json Cargo.toml

crates/analyze/tests/analyzer.rs:
crates/analyze/tests/golden/kitchen_sink.json:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_predtop-lint=placeholder:predtop-lint
# env-dep:CARGO_MANIFEST_DIR=/tmp/check/crates/analyze
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
