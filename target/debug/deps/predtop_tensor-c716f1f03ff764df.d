/root/repo/target/debug/deps/predtop_tensor-c716f1f03ff764df.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs Cargo.toml

/root/repo/target/debug/deps/libpredtop_tensor-c716f1f03ff764df.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
