/tmp/check/target/debug/deps/serde_json-19d7cc8ad1a6b4c5.d: /tmp/stubs/serde_json/src/lib.rs

/tmp/check/target/debug/deps/libserde_json-19d7cc8ad1a6b4c5.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
