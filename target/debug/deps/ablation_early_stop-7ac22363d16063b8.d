/root/repo/target/debug/deps/ablation_early_stop-7ac22363d16063b8.d: crates/bench/src/bin/ablation_early_stop.rs

/root/repo/target/debug/deps/ablation_early_stop-7ac22363d16063b8: crates/bench/src/bin/ablation_early_stop.rs

crates/bench/src/bin/ablation_early_stop.rs:
