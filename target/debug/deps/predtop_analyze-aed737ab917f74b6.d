/tmp/check/target/debug/deps/predtop_analyze-aed737ab917f74b6.d: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_analyze-aed737ab917f74b6.rmeta: crates/analyze/src/lib.rs crates/analyze/src/diag.rs crates/analyze/src/graph_passes.rs crates/analyze/src/legality.rs crates/analyze/src/pass.rs crates/analyze/src/plan_passes.rs crates/analyze/src/registry.rs crates/analyze/src/render.rs Cargo.toml

crates/analyze/src/lib.rs:
crates/analyze/src/diag.rs:
crates/analyze/src/graph_passes.rs:
crates/analyze/src/legality.rs:
crates/analyze/src/pass.rs:
crates/analyze/src/plan_passes.rs:
crates/analyze/src/registry.rs:
crates/analyze/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
