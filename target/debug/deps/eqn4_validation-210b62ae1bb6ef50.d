/root/repo/target/debug/deps/eqn4_validation-210b62ae1bb6ef50.d: crates/bench/src/bin/eqn4_validation.rs

/root/repo/target/debug/deps/eqn4_validation-210b62ae1bb6ef50: crates/bench/src/bin/eqn4_validation.rs

crates/bench/src/bin/eqn4_validation.rs:
