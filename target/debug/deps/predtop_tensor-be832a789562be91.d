/tmp/check/target/debug/deps/predtop_tensor-be832a789562be91.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/tmp/check/target/debug/deps/libpredtop_tensor-be832a789562be91.rlib: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/tmp/check/target/debug/deps/libpredtop_tensor-be832a789562be91.rmeta: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
