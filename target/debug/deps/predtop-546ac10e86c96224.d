/root/repo/target/debug/deps/predtop-546ac10e86c96224.d: src/lib.rs

/root/repo/target/debug/deps/libpredtop-546ac10e86c96224.rlib: src/lib.rs

/root/repo/target/debug/deps/libpredtop-546ac10e86c96224.rmeta: src/lib.rs

src/lib.rs:
