/root/repo/target/debug/deps/fig10_optimization-d530206c1de6e188.d: crates/bench/src/bin/fig10_optimization.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_optimization-d530206c1de6e188.rmeta: crates/bench/src/bin/fig10_optimization.rs Cargo.toml

crates/bench/src/bin/fig10_optimization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
