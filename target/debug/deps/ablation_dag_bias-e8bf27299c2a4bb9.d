/tmp/check/target/debug/deps/ablation_dag_bias-e8bf27299c2a4bb9.d: crates/bench/src/bin/ablation_dag_bias.rs Cargo.toml

/tmp/check/target/debug/deps/libablation_dag_bias-e8bf27299c2a4bb9.rmeta: crates/bench/src/bin/ablation_dag_bias.rs Cargo.toml

crates/bench/src/bin/ablation_dag_bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
