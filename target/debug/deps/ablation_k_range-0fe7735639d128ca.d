/root/repo/target/debug/deps/ablation_k_range-0fe7735639d128ca.d: crates/bench/src/bin/ablation_k_range.rs Cargo.toml

/root/repo/target/debug/deps/libablation_k_range-0fe7735639d128ca.rmeta: crates/bench/src/bin/ablation_k_range.rs Cargo.toml

crates/bench/src/bin/ablation_k_range.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
