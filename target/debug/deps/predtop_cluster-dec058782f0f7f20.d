/tmp/check/target/debug/deps/predtop_cluster-dec058782f0f7f20.d: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop_cluster-dec058782f0f7f20.rmeta: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/mesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
