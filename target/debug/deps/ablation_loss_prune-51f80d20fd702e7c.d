/root/repo/target/debug/deps/ablation_loss_prune-51f80d20fd702e7c.d: crates/bench/src/bin/ablation_loss_prune.rs Cargo.toml

/root/repo/target/debug/deps/libablation_loss_prune-51f80d20fd702e7c.rmeta: crates/bench/src/bin/ablation_loss_prune.rs Cargo.toml

crates/bench/src/bin/ablation_loss_prune.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
