/tmp/check/target/debug/deps/predtop_tensor-6f82672e636832c4.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/tmp/check/target/debug/deps/predtop_tensor-6f82672e636832c4: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
