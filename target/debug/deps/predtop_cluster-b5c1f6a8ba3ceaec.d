/root/repo/target/debug/deps/predtop_cluster-b5c1f6a8ba3ceaec.d: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

/root/repo/target/debug/deps/predtop_cluster-b5c1f6a8ba3ceaec: crates/cluster/src/lib.rs crates/cluster/src/collective.rs crates/cluster/src/gpu.rs crates/cluster/src/interconnect.rs crates/cluster/src/mesh.rs

crates/cluster/src/lib.rs:
crates/cluster/src/collective.rs:
crates/cluster/src/gpu.rs:
crates/cluster/src/interconnect.rs:
crates/cluster/src/mesh.rs:
