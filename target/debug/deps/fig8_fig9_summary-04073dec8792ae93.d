/root/repo/target/debug/deps/fig8_fig9_summary-04073dec8792ae93.d: crates/bench/src/bin/fig8_fig9_summary.rs

/root/repo/target/debug/deps/fig8_fig9_summary-04073dec8792ae93: crates/bench/src/bin/fig8_fig9_summary.rs

crates/bench/src/bin/fig8_fig9_summary.rs:
