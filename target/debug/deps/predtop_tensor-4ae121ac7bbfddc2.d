/root/repo/target/debug/deps/predtop_tensor-4ae121ac7bbfddc2.d: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

/root/repo/target/debug/deps/predtop_tensor-4ae121ac7bbfddc2: crates/tensor/src/lib.rs crates/tensor/src/init.rs crates/tensor/src/loss.rs crates/tensor/src/matrix.rs crates/tensor/src/optim.rs crates/tensor/src/pool.rs crates/tensor/src/schedule.rs crates/tensor/src/tape.rs

crates/tensor/src/lib.rs:
crates/tensor/src/init.rs:
crates/tensor/src/loss.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/optim.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/schedule.rs:
crates/tensor/src/tape.rs:
