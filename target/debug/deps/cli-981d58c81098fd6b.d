/root/repo/target/debug/deps/cli-981d58c81098fd6b.d: tests/cli.rs

/root/repo/target/debug/deps/cli-981d58c81098fd6b: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_predtop=/root/repo/target/debug/predtop
