/root/repo/target/debug/deps/analyzer-342a5589a801f4e0.d: crates/analyze/tests/analyzer.rs crates/analyze/tests/golden/kitchen_sink.json

/root/repo/target/debug/deps/analyzer-342a5589a801f4e0: crates/analyze/tests/analyzer.rs crates/analyze/tests/golden/kitchen_sink.json

crates/analyze/tests/analyzer.rs:
crates/analyze/tests/golden/kitchen_sink.json:

# env-dep:CARGO_BIN_EXE_predtop-lint=/root/repo/target/debug/predtop-lint
# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/analyze
