/root/repo/target/debug/deps/predtop_gnn-f5dcd1c89c43f170.d: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

/root/repo/target/debug/deps/predtop_gnn-f5dcd1c89c43f170: crates/gnn/src/lib.rs crates/gnn/src/dag_transformer.rs crates/gnn/src/dataset.rs crates/gnn/src/ensemble.rs crates/gnn/src/gat.rs crates/gnn/src/gcn.rs crates/gnn/src/metrics.rs crates/gnn/src/model.rs crates/gnn/src/train.rs

crates/gnn/src/lib.rs:
crates/gnn/src/dag_transformer.rs:
crates/gnn/src/dataset.rs:
crates/gnn/src/ensemble.rs:
crates/gnn/src/gat.rs:
crates/gnn/src/gcn.rs:
crates/gnn/src/metrics.rs:
crates/gnn/src/model.rs:
crates/gnn/src/train.rs:
