/tmp/check/target/debug/deps/ablation_early_stop-09adf4b7b63fd6ec.d: crates/bench/src/bin/ablation_early_stop.rs Cargo.toml

/tmp/check/target/debug/deps/libablation_early_stop-09adf4b7b63fd6ec.rmeta: crates/bench/src/bin/ablation_early_stop.rs Cargo.toml

crates/bench/src/bin/ablation_early_stop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
