/root/repo/target/debug/deps/fig3_gcn_vs_tran-0236e7f74058b5f5.d: crates/bench/src/bin/fig3_gcn_vs_tran.rs

/root/repo/target/debug/deps/fig3_gcn_vs_tran-0236e7f74058b5f5: crates/bench/src/bin/fig3_gcn_vs_tran.rs

crates/bench/src/bin/fig3_gcn_vs_tran.rs:
