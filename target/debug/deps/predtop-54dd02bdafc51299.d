/tmp/check/target/debug/deps/predtop-54dd02bdafc51299.d: src/lib.rs Cargo.toml

/tmp/check/target/debug/deps/libpredtop-54dd02bdafc51299.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
