/tmp/check/target/debug/deps/paper_invariants-855da8be24d3fa50.d: tests/paper_invariants.rs

/tmp/check/target/debug/deps/paper_invariants-855da8be24d3fa50: tests/paper_invariants.rs

tests/paper_invariants.rs:
