/root/repo/target/debug/deps/ablation_loss_prune-174423616653af35.d: crates/bench/src/bin/ablation_loss_prune.rs

/root/repo/target/debug/deps/ablation_loss_prune-174423616653af35: crates/bench/src/bin/ablation_loss_prune.rs

crates/bench/src/bin/ablation_loss_prune.rs:
