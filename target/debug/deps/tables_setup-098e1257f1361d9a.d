/tmp/check/target/debug/deps/tables_setup-098e1257f1361d9a.d: crates/bench/src/bin/tables_setup.rs

/tmp/check/target/debug/deps/tables_setup-098e1257f1361d9a: crates/bench/src/bin/tables_setup.rs

crates/bench/src/bin/tables_setup.rs:
