/tmp/check/target/debug/examples/pipeline_schedule-24a69244b1360cca.d: examples/pipeline_schedule.rs Cargo.toml

/tmp/check/target/debug/examples/libpipeline_schedule-24a69244b1360cca.rmeta: examples/pipeline_schedule.rs Cargo.toml

examples/pipeline_schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
