/root/repo/target/debug/examples/quickstart-2af1a632c3aad83f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2af1a632c3aad83f: examples/quickstart.rs

examples/quickstart.rs:
