/tmp/check/target/debug/examples/graph_pruning-df02f4a0016e41e2.d: examples/graph_pruning.rs Cargo.toml

/tmp/check/target/debug/examples/libgraph_pruning-df02f4a0016e41e2.rmeta: examples/graph_pruning.rs Cargo.toml

examples/graph_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
