/tmp/check/target/debug/examples/train_predictor-3b123af7980f8182.d: examples/train_predictor.rs

/tmp/check/target/debug/examples/train_predictor-3b123af7980f8182: examples/train_predictor.rs

examples/train_predictor.rs:
