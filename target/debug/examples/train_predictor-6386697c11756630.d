/root/repo/target/debug/examples/train_predictor-6386697c11756630.d: examples/train_predictor.rs

/root/repo/target/debug/examples/train_predictor-6386697c11756630: examples/train_predictor.rs

examples/train_predictor.rs:
