/tmp/check/target/debug/examples/quickstart-b8ea79565390bc20.d: examples/quickstart.rs

/tmp/check/target/debug/examples/quickstart-b8ea79565390bc20: examples/quickstart.rs

examples/quickstart.rs:
