/tmp/check/target/debug/examples/train_predictor-50c596a9c26dafaf.d: examples/train_predictor.rs Cargo.toml

/tmp/check/target/debug/examples/libtrain_predictor-50c596a9c26dafaf.rmeta: examples/train_predictor.rs Cargo.toml

examples/train_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
