/tmp/check/target/debug/examples/plan_search-9a90186cbe312e37.d: examples/plan_search.rs Cargo.toml

/tmp/check/target/debug/examples/libplan_search-9a90186cbe312e37.rmeta: examples/plan_search.rs Cargo.toml

examples/plan_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
