/tmp/check/target/debug/examples/quickstart-d7df00c7d5eadef0.d: examples/quickstart.rs Cargo.toml

/tmp/check/target/debug/examples/libquickstart-d7df00c7d5eadef0.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
