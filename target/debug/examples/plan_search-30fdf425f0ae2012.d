/tmp/check/target/debug/examples/plan_search-30fdf425f0ae2012.d: examples/plan_search.rs

/tmp/check/target/debug/examples/plan_search-30fdf425f0ae2012: examples/plan_search.rs

examples/plan_search.rs:
