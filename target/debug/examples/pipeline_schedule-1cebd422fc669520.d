/root/repo/target/debug/examples/pipeline_schedule-1cebd422fc669520.d: examples/pipeline_schedule.rs

/root/repo/target/debug/examples/pipeline_schedule-1cebd422fc669520: examples/pipeline_schedule.rs

examples/pipeline_schedule.rs:
