/root/repo/target/debug/examples/plan_search-63f65b7940b6ac92.d: examples/plan_search.rs

/root/repo/target/debug/examples/plan_search-63f65b7940b6ac92: examples/plan_search.rs

examples/plan_search.rs:
