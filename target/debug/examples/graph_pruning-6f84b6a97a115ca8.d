/tmp/check/target/debug/examples/graph_pruning-6f84b6a97a115ca8.d: examples/graph_pruning.rs

/tmp/check/target/debug/examples/graph_pruning-6f84b6a97a115ca8: examples/graph_pruning.rs

examples/graph_pruning.rs:
