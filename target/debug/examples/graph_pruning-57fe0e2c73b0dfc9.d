/root/repo/target/debug/examples/graph_pruning-57fe0e2c73b0dfc9.d: examples/graph_pruning.rs

/root/repo/target/debug/examples/graph_pruning-57fe0e2c73b0dfc9: examples/graph_pruning.rs

examples/graph_pruning.rs:
