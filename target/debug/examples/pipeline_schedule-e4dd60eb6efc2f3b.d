/tmp/check/target/debug/examples/pipeline_schedule-e4dd60eb6efc2f3b.d: examples/pipeline_schedule.rs

/tmp/check/target/debug/examples/pipeline_schedule-e4dd60eb6efc2f3b: examples/pipeline_schedule.rs

examples/pipeline_schedule.rs:
