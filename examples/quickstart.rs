//! Quickstart: predict the end-to-end training iteration latency of a
//! GPT-style model with the gray-box workflow.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full §VI pipeline on a small model: profile a sampled
//! subset of stages on the simulated Platform 1, train a DAG Transformer
//! per (mesh, configuration) scenario, then predict the latency of a
//! pipeline plan that was never profiled — and compare with ground
//! truth.

use predtop::prelude::*;

fn main() {
    // A GPT-style benchmark scaled to run in seconds on a laptop core.
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 128;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 2048;
    model.num_layers = 8;

    // Platform 1: one node, two A40s over NVLink (simulated).
    let profiler = SimProfiler::new(Platform::platform1(), 42);
    let cluster = MeshShape::new(1, 2);

    // Phases 1+2 (§VI): profile sampled stages, train per-scenario
    // DAG Transformers.
    println!("fitting PredTOP (profiling + training phases)...");
    let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
    arch.hidden = 32;
    arch.layers = 2;
    let cfg = GrayBoxConfig {
        num_profile_stages: 24,
        max_stage_layers: 4,
        arch,
        train: TrainConfig::quick(60),
        seed: 42,
    };
    let predtop = PredTop::fit(model, cluster, &profiler, &cfg);
    println!(
        "  profiled {} stages, trained {} scenario predictors in {:.1}s",
        predtop.profiled_stage_count,
        predtop.scenarios().count(),
        predtop.training_seconds
    );

    // Phase 3: predict the latency of a two-stage pipeline plan.
    let stages = [
        (StageSpec::new(model, 0, 4), ParallelConfig::new(1, 1)),
        (StageSpec::new(model, 4, 8), ParallelConfig::new(1, 1)),
    ];
    let mesh = MeshShape::new(1, 1);
    let microbatches = 8;

    let predicted: Vec<f64> = stages
        .iter()
        .map(|(s, c)| predtop.stage_latency(s, mesh, *c))
        .collect();
    let actual: Vec<f64> = stages
        .iter()
        .map(|(s, c)| profiler.stage_latency(s, mesh, *c))
        .collect();

    // White-box composition (eqn. 4).
    let t_pred = pipeline_latency(&predicted, microbatches);
    let t_true = pipeline_latency(&actual, microbatches);

    println!("\nper-stage latencies (seconds):");
    for ((stage, _), (p, a)) in stages.iter().zip(predicted.iter().zip(&actual)) {
        println!(
            "  {:<14} predicted {:.5}  actual {:.5}  ({:+.1}%)",
            stage.label(),
            p,
            a,
            100.0 * (p - a) / a
        );
    }
    println!(
        "\npipeline iteration latency (Eqn. 4, B={microbatches}):\n  \
         predicted {t_pred:.5} s  vs  ground truth {t_true:.5} s  ({:+.1}%)",
        100.0 * (t_pred - t_true) / t_true
    );
}
