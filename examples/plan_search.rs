//! Automatic parallelization-plan search (§VIII-B): full profiling vs
//! partial profiling vs PredTOP on the simulated Platform 2 cluster.
//!
//! ```sh
//! cargo run --release --example plan_search
//! ```
//!
//! Prints the plan each method chooses, its true iteration latency, and
//! the profiling bill each method ran up — the Fig. 10 story in one run.

use predtop::prelude::*;
use predtop::sim::costing::CostTotals;

fn describe(plan: &PipelinePlan) -> String {
    plan.stages
        .iter()
        .map(|s| {
            format!(
                "{}@{}[{}]",
                s.stage.label(),
                s.mesh.label(),
                s.config.remark()
            )
        })
        .collect::<Vec<_>>()
        .join("  |  ")
}

fn main() {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 128;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 2048;
    model.num_layers = 8;

    let platform = Platform::platform2();
    let cluster = MeshShape::new(2, 2);
    let opts = InterStageOptions {
        microbatches: 8,
        imbalance_tolerance: None,
    };

    // --- Alpa-style full profiling -------------------------------------
    let profiler = SimProfiler::new(platform.clone(), 7);
    let full = search_plan(model, cluster, &profiler, &profiler, opts);
    let full_bill: CostTotals = profiler.ledger().totals();
    println!(
        "search engine: {} worker thread(s) (set PREDTOP_THREADS to change), {:.2}s wall\n",
        configured_threads(),
        full.search_seconds
    );
    println!(
        "full profiling ({} stage profiles, {:.0} simulated s):",
        full_bill.stages_profiled, full_bill.profiling_s
    );
    println!("  plan: {}", describe(&full.plan));
    println!("  true iteration latency: {:.5} s\n", full.true_latency);

    // --- partial profiling (vanilla Alpa heuristic) ---------------------
    let profiler_p = SimProfiler::new(platform.clone(), 7);
    let partial = search_plan(
        model,
        cluster,
        &profiler_p,
        &profiler_p,
        InterStageOptions {
            microbatches: 8,
            imbalance_tolerance: Some(0.25),
        },
    );
    let partial_bill = profiler_p.ledger().totals();
    println!(
        "partial profiling ({} stage profiles, {:.0} simulated s):",
        partial_bill.stages_profiled, partial_bill.profiling_s
    );
    println!("  plan: {}", describe(&partial.plan));
    println!("  true iteration latency: {:.5} s\n", partial.true_latency);

    // --- PredTOP ---------------------------------------------------------
    let profiler_pt = SimProfiler::new(platform.clone(), 7);
    let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
    arch.hidden = 32;
    arch.layers = 2;
    let cfg = GrayBoxConfig {
        num_profile_stages: 20,
        max_stage_layers: 4,
        arch,
        train: TrainConfig::quick(60),
        seed: 7,
    };
    println!(
        "PredTOP: profiling a {}-stage sample + training...",
        cfg.num_profile_stages
    );
    let predtop = PredTop::fit(model, cluster, &profiler_pt, &cfg);
    let pt_bill = profiler_pt.ledger().totals();
    let truth = SimProfiler::new(platform.clone(), 7);
    let predicted = search_plan(model, cluster, &predtop, &truth, opts);
    println!(
        "PredTOP ({} stage profiles, {:.0} simulated s + {:.1}s training + {:.1}s inference):",
        pt_bill.stages_profiled,
        pt_bill.profiling_s,
        predtop.training_seconds,
        predtop.inference_seconds()
    );
    println!("  plan: {}", describe(&predicted.plan));
    println!("  true iteration latency: {:.5} s", predicted.true_latency);

    let degradation = 100.0 * (predicted.true_latency - full.true_latency) / full.true_latency;
    let saving = 100.0 * (1.0 - pt_bill.profiling_s / partial_bill.profiling_s);
    println!(
        "\nsummary: PredTOP cut the profiling bill by {saving:.1}% vs partial profiling \
         at {degradation:+.2}% plan-latency degradation"
    );
}
