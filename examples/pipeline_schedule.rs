//! Visualize pipeline schedules (the Fig. 6 picture): 1F1B vs GPipe
//! timelines for a realistic stage partition, with bubble fractions and
//! activation-memory footprints.
//!
//! ```sh
//! cargo run --release --example pipeline_schedule
//! ```

use predtop::parallel::schedule::{gpipe, one_f_one_b, Schedule, Slot, SlotSpan};
use predtop::prelude::*;
use predtop::sim::trace::{schedule_trace, to_json};

/// Render simulated slot spans as an ASCII Gantt chart: one row per
/// stage, one column per time unit (forward = `Fi`, backward = `bi`,
/// idle = `..`).
fn render(spans: &[Vec<SlotSpan>], makespan: f64, unit: f64) -> String {
    let width = (makespan / unit).ceil() as usize;
    let mut out = String::new();
    for (s, row) in spans.iter().enumerate() {
        let mut line = vec!["..".to_string(); width];
        for sp in row {
            let label = match sp.slot {
                Slot::Forward(i) => format!("F{i}"),
                Slot::Backward(i) => format!("b{i}"),
            };
            let c0 = (sp.start / unit).round() as usize;
            let c1 = ((sp.finish / unit).round() as usize).min(width);
            for cell in line.iter_mut().take(c1).skip(c0) {
                *cell = format!("{label:<2}");
            }
        }
        out.push_str(&format!("stage {s}: {}\n", line.join("")));
    }
    out
}

fn main() {
    // per-stage forward/backward times from the simulator: a 4-stage even
    // partition of a small GPT on four single-GPU meshes
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 64;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 1024;
    model.num_layers = 8;
    let profiler = SimProfiler::new(Platform::platform2(), 3);
    let iter_times: Vec<f64> = (0..4)
        .map(|i| {
            profiler.stage_latency(
                &StageSpec::new(model, i * 2, (i + 1) * 2),
                MeshShape::new(1, 1),
                ParallelConfig::SERIAL,
            )
        })
        .collect();
    // iteration time = fwd + bwd with bwd ≈ 2×fwd
    let fwd: Vec<f64> = iter_times.iter().map(|t| t / 3.0).collect();
    let bwd: Vec<f64> = iter_times.iter().map(|t| t * 2.0 / 3.0).collect();
    let unit = fwd.iter().cloned().fold(f64::MAX, f64::min) / 2.0;
    let microbatches = 6;

    let schedules: [(&str, Schedule); 2] = [
        ("1F1B (the paper's schedule)", one_f_one_b(4, microbatches)),
        ("GPipe fill-drain", gpipe(4, microbatches)),
    ];
    for (name, sched) in &schedules {
        sched.validate().expect("valid schedule");
        let (spans, mk) = sched.simulate(&fwd, &bwd);
        println!("=== {name}: makespan {mk:.4} s ===");
        print!("{}", render(&spans, mk, unit));
        let peak: Vec<usize> = (0..4).map(|s| sched.peak_in_flight(s)).collect();
        println!("peak in-flight activations per stage: {peak:?}\n");
    }

    // export the 1F1B timeline as a chrome://tracing / Perfetto file
    let (spans, _) = schedules[0].1.simulate(&fwd, &bwd);
    let trace = to_json(&schedule_trace(&schedules[0].1, &spans));
    let path = std::env::temp_dir().join("predtop_1f1b_trace.json");
    std::fs::write(&path, trace).expect("write trace");
    println!(
        "Perfetto trace written to {} (open in ui.perfetto.dev)",
        path.display()
    );

    let total: Vec<f64> = fwd.iter().zip(&bwd).map(|(f, b)| f + b).collect();
    println!(
        "Eqn. 4 on t = fwd+bwd: {:.4} s (B = {microbatches})",
        pipeline_latency(&total, microbatches)
    );
    println!(
        "1F1B matches Eqn. 4; GPipe matches too but holds all {microbatches} microbatches live."
    );
}
