//! Train and compare all three predictor architectures on one scenario
//! (§VIII-A in miniature): GCN vs GAT vs DAG Transformer on the same
//! profiled stage pool, same split, same budget.
//!
//! ```sh
//! cargo run --release --example train_predictor
//! ```

use predtop::gnn::train::{eval_mre, train};
use predtop::prelude::*;

fn main() {
    let mut model = ModelSpec::moe_2p6b(2);
    model.seq_len = 128;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 2048;
    model.num_layers = 8;
    model.moe = Some(predtop::models::MoeSpec {
        num_experts: 8,
        expert_hidden: 256,
        every: 2,
    });

    let profiler = SimProfiler::new(Platform::platform2(), 11);
    let mesh = MeshShape::new(1, 2);
    let config = ParallelConfig::new(1, 2); // 2-way model parallel

    // profiling phase: a size-diverse random stage sample
    let stages = sample_stages(model, 30, 4, 11);
    println!(
        "profiling {} MoE stages on mesh {} under {}...",
        stages.len(),
        mesh.label(),
        config.remark()
    );
    let pe_dim = ArchConfig::scaled(ModelKind::DagTransformer).hidden;
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let latency = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), latency, pe_dim)
        })
        .collect();
    let avg_nodes =
        samples.iter().map(|s| s.num_nodes()).sum::<usize>() as f64 / samples.len() as f64;
    println!("average pruned graph size: {avg_nodes:.0} nodes");

    let ds = Dataset::new(samples);
    let split = ds.split(0.5, 11);
    println!(
        "split: {} train / {} val / {} test\n",
        split.train.len(),
        split.val.len(),
        split.test.len()
    );

    let cfg = TrainConfig::quick(30);
    println!(
        "{:<6} {:>9} {:>8} {:>10}",
        "model", "MRE (%)", "epochs", "train (s)"
    );
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::DagTransformer] {
        let mut net = ArchConfig::scaled(kind).build(11);
        let (scaler, report) = train(net.as_mut(), &ds, &split, &cfg);
        let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
        println!(
            "{:<6} {:>9.2} {:>8} {:>10.1}",
            kind.label(),
            mre,
            report.epochs_run,
            report.train_seconds
        );
    }
    println!("\n(the DAG Transformer should post the lowest, most stable error)");
}
