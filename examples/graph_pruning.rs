//! Graph construction and pruning (§IV-B2/B4, Fig. 5): build the
//! tensor-operator DAG of one transformer stage, inspect its op mix,
//! prune the bookkeeping relays, and show the Table I features and DAG
//! structure the predictors consume.
//!
//! ```sh
//! cargo run --release --example graph_pruning
//! ```

use predtop::ir::features::{node_features, FEATURE_DIM};
use predtop::ir::prune::prune;
use predtop::ir::reach::{critical_path_len, depths, Reachability};
use predtop::ir::NodeKind;
use predtop::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 128;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 2048;
    model.num_layers = 8;

    // one middle stage of two layers
    let stage = StageSpec::new(model, 2, 4);
    let graph = stage.build_graph();
    println!(
        "stage {}: {} nodes, {} edges, {:.1} MFLOP (forward, structural)",
        stage.label(),
        graph.len(),
        graph.num_edges(),
        graph.total_flops() as f64 / 1e6
    );

    // op histogram before pruning
    let mut histogram: BTreeMap<&str, usize> = BTreeMap::new();
    for node in graph.nodes() {
        if let NodeKind::Operator(op) = node.kind {
            *histogram.entry(op.name()).or_default() += 1;
        }
    }
    println!("\ntop operator kinds (before pruning):");
    let mut sorted: Vec<_> = histogram.into_iter().collect();
    sorted.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (name, count) in sorted.iter().take(10) {
        println!("  {name:<22} {count}");
    }

    // §IV-B4 pruning
    let (pruned, stats) = prune(&graph);
    println!(
        "\npruning removed {} nodes ({:.1}%): {} -> {} nodes",
        stats.removed,
        100.0 * stats.removal_ratio(),
        stats.nodes_before,
        stats.nodes_after
    );
    assert_eq!(pruned.count_ops(OpKind::Reshape), 0);
    assert_eq!(pruned.count_ops(OpKind::ConvertElementType), 0);

    // DAG structure the transformer uses
    let reach = Reachability::compute(&pruned);
    let d = depths(&pruned);
    println!(
        "\nDAG structure after pruning:\n  \
         critical path: {} nodes\n  \
         max depth (DAGPE range): {}\n  \
         DAGRA mask density: {:.1}% of node pairs may attend",
        critical_path_len(&pruned),
        d.iter().max().unwrap(),
        100.0 * reach.density()
    );

    // Table I features of one node
    let dot_node = pruned
        .nodes()
        .iter()
        .find(|n| n.kind == NodeKind::Operator(OpKind::DotGeneral))
        .expect("a stage has matmuls");
    let feats = node_features(dot_node);
    let nonzero = feats.iter().filter(|&&f| f != 0.0).count();
    println!(
        "\nTable I features of the first dot_general:\n  \
         output {} {}, {} of {FEATURE_DIM} feature slots non-zero",
        dot_node.dtype, dot_node.shape, nonzero
    );
}
