//! Vendored stand-in for `serde_derive`.
//!
//! The workspace's vendored `serde` defines `Serialize` / `Deserialize`
//! as marker traits (see `vendor/README.md`), so the derives only need
//! to emit empty trait impls. The input is parsed directly from the
//! token stream — no `syn`/`quote`, which are unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// Derive the `serde::Serialize` marker for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derive the `serde::Deserialize` marker for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Extract the type name from a `struct`/`enum` item and emit
/// `impl ::serde::<Trait> for <Name> {}`.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input)
        .unwrap_or_else(|| panic!("serde_derive stub: could not find struct/enum name"));
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        // Generic derived types would need the parameter
                        // list threaded through the impl; nothing in the
                        // workspace derives on generics, so reject them
                        // loudly instead of emitting broken code.
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                panic!("serde_derive stub: generic type `{name}` is not supported");
                            }
                        }
                        return Some(name.to_string());
                    }
                    _ => return None,
                }
            }
        }
    }
    None
}
