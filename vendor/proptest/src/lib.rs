//! Vendored stand-in for `proptest`, covering the API subset the
//! workspace uses: the `proptest!` macro, `prop_assert*` / `prop_assume`,
//! `Strategy` with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, `any::<T>()`, and `collection::vec`.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * **No shrinking.** A failing case panics with the test name, case
//!   index, and derived seed — enough to reproduce deterministically,
//!   since generation is a pure function of the test name.
//! * **Deterministic seeding.** Each test's RNG is seeded from an FNV
//!   hash of the test name, so runs are identical across machines,
//!   thread counts, and invocations. `PROPTEST_CASES` still overrides
//!   the default case count.

pub mod strategy {
    use rand::Rng;

    /// The RNG handed to strategies; deterministic per test.
    pub type TestRng = rand::rngs::StdRng;

    /// A generator of test values (no shrinking in this stand-in).
    pub trait Strategy: Sized {
        /// The type of value generated.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($S:ident . $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6
    )(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8
    )(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10
    )(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11
    )(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11, M.12
    ));
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive element-count bounds for [`vec()`]; converts from a bare
    /// count, `lo..hi`, or `lo..=hi` like the real crate's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `size` elements (a count or a range), each drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use crate::strategy::Strategy;
    use rand::SeedableRng;

    /// Per-test configuration (`proptest_config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Total `prop_assume` rejections tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig {
                cases,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            ProptestConfig::with_cases(cases)
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property is false for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume` precondition; the
        /// case is retried with fresh input instead of failing.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError::Fail(msg.to_string())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject(msg: impl std::fmt::Display) -> TestCaseError {
            TestCaseError::Reject(msg.to_string())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Outcome of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Execute `body` against `config.cases` inputs drawn from
    /// `strategy`, seeded deterministically from `name`. Panics on the
    /// first failing case with enough context to reproduce it.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let seed = fnv1a(name);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let value = strategy.generate(&mut rng);
            match body(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "{name}: too many prop_assume rejections \
                         ({rejects} after {case} cases, seed {seed:#x})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: case {case} of {} failed (seed {seed:#x}): {msg}",
                        config.cases
                    )
                }
            }
        }
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run(
                    &__cfg,
                    stringify!($name),
                    ($($strat,)+),
                    |($($pat,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert a condition inside a property test; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                l
            )));
        }
    }};
}

/// Reject the current case (retried with fresh input) when a
/// precondition is not met.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption not met: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = (0u32..100, 0u32..100);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_assume_work(a in 0usize..50, b in 1usize..=10) {
            prop_assume!(a != 7);
            prop_assert!(a < 50, "a = {a}");
            prop_assert_eq!(b.clamp(1, 10), b);
            prop_assert_ne!(a + b, a);
        }

        #[test]
        fn maps_and_vecs_compose(
            v in crate::collection::vec(0i64..100, 2..8),
            flag in any::<bool>(),
            (x, y) in (0u8..10, 0u8..10).prop_map(|(p, q)| (p as u16, q as u16)),
        ) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
            prop_assert!(x < 10 && y < 10);
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "failing_prop")]
    fn failures_panic_with_test_name() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "failing_prop",
            (0u32..10,),
            |(_n,)| Err(TestCaseError::fail("always")),
        );
    }
}
