//! Vendored stand-in for `serde`.
//!
//! `Serialize` / `Deserialize` are marker traits: they carry no methods,
//! and the companion `serde_json` stand-in serializes every value to a
//! placeholder and rejects every parse (see `vendor/README.md`). The
//! workspace is written against exactly this degraded contract — every
//! JSON-dependent assertion is gated on
//! `serde_json::from_str::<u32>("1").is_ok()`.

/// Marker for types the (stubbed) serializer accepts.
pub trait Serialize {}

/// Marker for types the (stubbed) deserializer accepts.
pub trait Deserialize {}

// The derive macros live in the macro namespace, the traits above in the
// type namespace, so the same names can be re-exported side by side.
pub use serde_derive::{Deserialize, Serialize};

macro_rules! markers {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

markers!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    String,
    ()
);

impl Serialize for str {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

macro_rules! tuple_markers {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Serialize),+> Serialize for ($($n,)+) {}
        impl<$($n: Deserialize),+> Deserialize for ($($n,)+) {}
    )*};
}

tuple_markers!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
));

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
