//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The container this repository builds in has no crates.io access, so
//! the workspace vendors the tiny API subset it actually uses (see
//! `vendor/README.md`). Semantics match the real crate for that subset:
//! [`Mutex::lock`] never returns a poison error — a panic while holding
//! the guard simply releases the lock for the next locker.

use std::sync::{MutexGuard as StdGuard, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s panic-transparent API:
/// `lock()` returns the guard directly instead of a poison `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous critical section does
    /// not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
