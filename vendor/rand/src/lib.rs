//! Vendored stand-in for `rand`, covering exactly the API subset the
//! workspace uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is xoshiro256** seeded through splitmix64 — a
//! different stream than the real crate's ChaCha12-based `StdRng`, but
//! every consumer in this workspace treats the stream as an opaque
//! deterministic function of the seed, which this is: the same seed
//! reproduces the same sequence on every platform and thread count.

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`'s
/// `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the element type
/// (like the real crate's `SampleRange<T>`) so a bare integer-literal
/// range infers its type from the call site — `rng.gen_range(1..40)`
/// where the result is used as a `usize` must compile.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The user-facing sampling interface (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Draw a value of the inferred type from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over the full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (this vendored crate's
    /// stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers (`rand::seq::SliceRandom` subset).
pub mod seq {
    use super::Rng;

    /// Shuffling and random element choice on slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&w));
            let x = rng.gen_range(0..=4u32);
            assert!(x <= 4);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle virtually never fixes");
        let opts = [1u8, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*opts.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
