//! Vendored stand-in for `serde_json`, implementing the degraded
//! contract the workspace is written against (see the gating helper
//! `json_roundtrip_supported()` in `crates/core/src/persist.rs` and
//! `tests/cli.rs`):
//!
//! * [`to_string`] / [`to_string_pretty`] serialize every value to the
//!   placeholder `"{}"` — callers only rely on them not panicking;
//! * [`from_str`] rejects every input with [`Error`], so
//!   `from_str::<u32>("1").is_ok()` is `false` and every JSON-roundtrip
//!   assertion in the test suite takes its offline leg.

/// Error type mirroring `serde_json::Error`'s public face (`Display`,
/// `Debug`, `std::error::Error`).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

/// Parsed JSON value. The stub parser never produces one, so the
/// accessors exist only to keep gated test code compiling.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, widened to `f64`.
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl serde::Deserialize for Value {}
impl serde::Serialize for Value {}

impl Value {
    /// The elements when `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string content when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content when `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialize to compact JSON. Stub: always the placeholder `"{}"`.
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

/// Serialize to pretty JSON. Stub: always the placeholder `"{}"`.
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_string())
}

/// Deserialize from JSON text. Stub: rejects every input — callers gate
/// round-trip assertions on `from_str::<u32>("1").is_ok()`.
pub fn from_str<T: serde::Deserialize>(_s: &str) -> Result<T, Error> {
    Err(Error {
        msg: "offline serde_json stub cannot deserialize",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stub_contract_holds() {
        assert_eq!(to_string(&42u32).unwrap(), "{}");
        assert_eq!(to_string_pretty(&vec![1u8, 2]).unwrap(), "{}");
        let err = from_str::<u32>("1").unwrap_err();
        assert!(format!("{err}").contains("offline"));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Array(vec![Value::Number(1.0), Value::String("x".into())]);
        assert_eq!(v.as_array().unwrap().len(), 2);
        assert!(v.as_str().is_none());
        let o = Value::Object(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(o.get("k"), Some(&Value::Bool(true)));
        assert_eq!(o.get("missing"), None);
    }
}
