//! Vendored stand-in for `criterion`, covering the API subset
//! `crates/bench/benches/microbench.rs` uses. Statistical analysis is
//! replaced by a plain mean-over-samples timer: each benchmark warms up
//! for `warm_up_time`, then runs `sample_size` samples sized to fill
//! `measurement_time`, and prints the per-iteration mean.

use std::time::{Duration, Instant};

/// Benchmark driver (configuration + reporting).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let report = run_one(self, &mut f);
        println!("{id:<40} {report}");
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Final report hook (no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let report = run_one(self.criterion, &mut |b: &mut Bencher| f(b, input));
        println!("{label:<40} {report}");
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify by parameter value alone.
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Identify by function name and parameter value.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, f: &mut F) -> String {
    // warm up and estimate the per-iteration cost
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up_time {
        f(&mut b);
        per_iter = (b.elapsed / b.iters as u32).max(Duration::from_nanos(1));
        b.iters = (b.iters * 2).min(1 << 20);
    }

    // size samples so all of them together roughly fill measurement_time
    let budget = config.measurement_time / config.sample_size as u32;
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..config.sample_size {
        let mut sample = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut sample);
        total += sample.elapsed;
        total_iters += sample.iters;
    }
    let mean = total.as_secs_f64() / total_iters.max(1) as f64;
    format!("time: {}", fmt_time(mean))
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Group benchmark functions under a named runner, optionally with a
/// custom `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit the benchmark binary's `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut hits = 0u64;
        tiny().bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        assert!(hits > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = tiny();
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3usize), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 us");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
    }
}
