//! # PredTOP
//!
//! A from-scratch Rust reproduction of *PredTOP: Latency Predictor
//! Utilizing DAG Transformers for Distributed Deep Learning Training
//! with Operator Parallelism* (Acharya & Shu, IPDPS 2025).
//!
//! PredTOP predicts the iteration latency of distributed deep-learning
//! training under hybrid parallelism by splitting the problem at the
//! stage boundary:
//!
//! * **inter-stage** (pipeline) parallelism is modeled *white-box* with
//!   the closed-form `T = Σ tᵢ + (B−1)·max tⱼ` (eqn. 4);
//! * **intra-stage** (model/tensor) parallelism is modeled *black-box*
//!   by a Transformer over the stage's operator DAG, with attention
//!   restricted to reachable node pairs (DAGRA) and node depth as the
//!   positional encoding (DAGPE).
//!
//! This facade re-exports the whole workspace. Quick taste:
//!
//! ```
//! use predtop::prelude::*;
//!
//! // a small GPT-style model and the 2-GPU Platform 1
//! let mut model = ModelSpec::gpt3_1p3b(2);
//! model.seq_len = 64; model.hidden = 64; model.num_heads = 4;
//! model.vocab = 256; model.num_layers = 4;
//! let profiler = SimProfiler::new(Platform::platform1(), 42);
//!
//! // ground-truth latency of one stage under 2-way model parallelism
//! let stage = StageSpec::new(model, 0, 2);
//! let t = profiler.stage_latency(&stage, MeshShape::new(1, 2), ParallelConfig::new(1, 2));
//! assert!(t > 0.0);
//!
//! // white-box pipeline composition (eqn. 4)
//! let total = pipeline_latency(&[t, t * 1.5], 8);
//! assert!(total > t * 1.5 * 8.0);
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! | crate | contents |
//! |---|---|
//! | [`store`] | content-addressed object store: latency replies, plan/model snapshots, gc |
//! | [`ir`] | tensor-operator DAG, pruning, Table I features, DAGRA/DAGPE |
//! | [`models`] | GPT-3 / MoE builders, stage slicing & sampling |
//! | [`cluster`] | GPU/interconnect/mesh specs, collective cost models |
//! | [`parallel`] | sharding strategies, intra-stage optimizer, inter-stage DP |
//! | [`runtime`] | deterministic worker pool sized by `PREDTOP_THREADS` |
//! | [`sim`] | roofline simulator, profiler, cost ledger, 1F1B event sim |
//! | [`tensor`] | matrices, autodiff tape, Adam, schedules, losses |
//! | [`gnn`] | GCN / GAT / DAG-Transformer predictors, training loop |
//! | [`service`] | `LatencyService` trait + memoize/batch/instrument/fallback/fault-tolerance middleware |
//! | [`analyze`] | fixpoint dataflow engine, graph/plan/stack lints, machine-applicable fixes |
//! | [`core`] | the gray-box workflow and plan-search use case |

#![warn(missing_docs)]

pub use predtop_analyze as analyze;
pub use predtop_cluster as cluster;
pub use predtop_core as core;
pub use predtop_gnn as gnn;
pub use predtop_ir as ir;
pub use predtop_models as models;
pub use predtop_parallel as parallel;
pub use predtop_runtime as runtime;
pub use predtop_service as service;
pub use predtop_sim as sim;
pub use predtop_store as store;
pub use predtop_tensor as tensor;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use predtop_analyze::{analyze_stack, has_errors, render_text, StaticLegality};
    pub use predtop_cluster::{GpuSpec, Link, Mesh, Platform};
    pub use predtop_core::{
        encode_outcome, encode_plan, load_model_service, pipeline_latency, run_search,
        search_legality, search_plan, search_plan_checked, search_plan_service, search_plan_stored,
        search_snapshot_key, AnalyticBaseline, ArchConfig, EngineConfig, GrayBoxConfig, PredTop,
        SearchOutcome, SearchRequest, ServeEngine, ServiceReport, StoredSearch,
    };
    pub use predtop_gnn::{
        mean_relative_error, train, Dataset, GraphSample, ModelKind, TrainConfig, TrainedPredictor,
    };
    pub use predtop_ir::{DType, Graph, GraphBuilder, OpKind, Shape};
    pub use predtop_models::{enumerate_stages, sample_stages, ModelSpec, StageSpec};
    pub use predtop_parallel::{
        optimize_pipeline, table3_configs, CacheStats, InterStageOptions, InternStats, MeshShape,
        ParallelConfig, PipelinePlan, StageLatencyProvider, StructuralInterner, StructuralKey,
    };
    pub use predtop_runtime::configured_threads;
    pub use predtop_service::{
        api, flat_json_fields, wire, AdmissionControl, BatchStats, BreakerConfig, DeadlinePolicy,
        DispatchPolicy, FaultConfig, LatencyQuery, LatencyReply, LatencyService, Ledger,
        LedgerField, LedgerValue, PersistStats, RetryPolicy, Retryability, ServiceBuilder,
        ServiceError, ServiceStack, Unavailable,
    };
    pub use predtop_sim::{DeviceCostModel, SimProfiler};
    pub use predtop_store::{ObjectKind, Store, StoreError};
}
