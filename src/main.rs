//! `predtop` — command-line front end to the library.
//!
//! ```text
//! predtop info                          platforms, meshes, benchmarks
//! predtop profile [options]             simulate one stage's latency
//! predtop search  [options]             optimize a pipeline plan
//! predtop fit     [options] -o FILE     fit a predictor and save it
//! predtop predict -m FILE [options]     predict with a saved predictor
//! ```
//!
//! Common options: `--model gpt3|moe`, `--platform 1|2`, `--mesh NxG`,
//! `--dp D --mp M`, `--stage A..B`, `--scaled` (shrink the benchmark so
//! runs finish in seconds on a laptop), `--seed S`.

use std::collections::HashMap;
use std::process::exit;

use predtop::core::persist;
use predtop::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: predtop <command> [options]\n\
         \n\
         commands:\n\
           info                       list platforms, meshes, and benchmarks\n\
           profile                    simulate one stage's training latency\n\
           search                     optimize a full pipeline plan\n\
           fit -o FILE                fit a DAG-Transformer predictor, save JSON\n\
           predict -m FILE            predict a stage latency with a saved model\n\
                                      (falls back to the analytic baseline if the\n\
                                      model cannot be loaded; see `source = ...`)\n\
         \n\
         options:\n\
           --plan-out FILE            (search) write the chosen plan as JSON\n\
           --model gpt3|moe           benchmark (default gpt3)\n\
           --platform 1|2             hardware platform (default 2)\n\
           --mesh NxG                 sub-mesh, e.g. 1x2 (default 1x1)\n\
           --dp D --mp M              parallelism config (default 1,1)\n\
           --stage A..B               layer range (default whole model)\n\
           --microbatches B           pipeline micro-batches (default 8)\n\
           --scaled                   shrink the benchmark for quick runs\n\
           --seed S                   simulator seed (default 7)"
    );
    exit(2)
}

struct Args {
    command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if !a.starts_with("--") && a != "-o" && a != "-m" {
            eprintln!("unexpected argument `{a}`");
            usage();
        }
        let key = a.trim_start_matches('-').to_string();
        if matches!(key.as_str(), "scaled") {
            switches.push(key);
        } else {
            i += 1;
            if i >= rest.len() {
                eprintln!("flag `{a}` needs a value");
                usage();
            }
            flags.insert(key, rest[i].clone());
        }
        i += 1;
    }
    Args {
        command,
        flags,
        switches,
    }
}

impl Args {
    fn model(&self) -> ModelSpec {
        let scaled = self.switches.iter().any(|s| s == "scaled");
        let mut m = match self.flags.get("model").map(|s| s.as_str()) {
            None | Some("gpt3") => ModelSpec::gpt3_1p3b(if scaled { 2 } else { 8 }),
            Some("moe") => ModelSpec::moe_2p6b(if scaled { 2 } else { 8 }),
            Some(other) => {
                eprintln!("unknown model `{other}` (gpt3|moe)");
                usage()
            }
        };
        if scaled {
            m.seq_len = 128;
            m.hidden = 128;
            m.num_heads = 8;
            m.vocab = 2048;
            m.num_layers = 8;
            if let Some(moe) = m.moe.as_mut() {
                moe.num_experts = 8;
                moe.expert_hidden = 256;
            }
        }
        m
    }

    fn platform(&self) -> Platform {
        match self.flags.get("platform").map(|s| s.as_str()) {
            Some("1") => Platform::platform1(),
            None | Some("2") => Platform::platform2(),
            Some(other) => {
                eprintln!("unknown platform `{other}` (1|2)");
                usage()
            }
        }
    }

    fn mesh(&self) -> MeshShape {
        let spec = self.flags.get("mesh").map(|s| s.as_str()).unwrap_or("1x1");
        let parts: Vec<&str> = spec.split('x').collect();
        match parts.as_slice() {
            [n, g] => match (n.parse(), g.parse()) {
                (Ok(n), Ok(g)) => MeshShape::new(n, g),
                _ => {
                    eprintln!("bad mesh `{spec}` (expected NxG)");
                    usage()
                }
            },
            _ => {
                eprintln!("bad mesh `{spec}` (expected NxG)");
                usage()
            }
        }
    }

    fn config(&self) -> ParallelConfig {
        let dp = self.usize_flag("dp", 1);
        let mp = self.usize_flag("mp", 1);
        ParallelConfig::new(dp, mp)
    }

    fn usize_flag(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{key} expects a number, got `{v}`");
                    usage()
                })
            })
            .unwrap_or(default)
    }

    fn seed(&self) -> u64 {
        self.usize_flag("seed", 7) as u64
    }

    fn stage(&self, model: ModelSpec) -> StageSpec {
        match self.flags.get("stage") {
            None => StageSpec::new(model, 0, model.num_layers),
            Some(spec) => {
                let parts: Vec<&str> = spec.split("..").collect();
                match parts.as_slice() {
                    [a, b] => match (a.parse(), b.parse()) {
                        (Ok(a), Ok(b)) => StageSpec::new(model, a, b),
                        _ => {
                            eprintln!("bad stage `{spec}` (expected A..B)");
                            usage()
                        }
                    },
                    _ => {
                        eprintln!("bad stage `{spec}` (expected A..B)");
                        usage()
                    }
                }
            }
        }
    }
}

fn cmd_info() {
    println!("PredTOP — gray-box latency prediction for distributed DL training\n");
    for platform in [Platform::platform1(), Platform::platform2()] {
        println!(
            "{}: {} ({} CUDA cores, {:.0} GiB, {:.0} GB/s)",
            platform.name,
            platform.gpu.name,
            platform.gpu.cuda_cores,
            platform.gpu.memory_gib,
            platform.gpu.mem_bandwidth_gbs
        );
        for mesh in platform.table2_meshes() {
            let shape = MeshShape::new(mesh.num_nodes, mesh.gpus_per_node);
            let configs: Vec<String> = table3_configs(shape).iter().map(|c| c.remark()).collect();
            println!(
                "  mesh {} ({}): {}",
                mesh.table2_index().unwrap(),
                mesh.label(),
                configs.join(" / ")
            );
        }
    }
    println!();
    for model in [ModelSpec::gpt3_1p3b(8), ModelSpec::moe_2p6b(8)] {
        println!(
            "{}: {} layers, hidden {}, seq {}, vocab {}, ~{:.2}B params, {} stage candidates",
            model.kind.name(),
            model.num_layers,
            model.hidden,
            model.seq_len,
            model.vocab,
            model.approx_params() as f64 / 1e9,
            enumerate_stages(model).len()
        );
    }
}

fn cmd_profile(args: &Args) {
    let model = args.model();
    let stage = args.stage(model);
    let mesh = args.mesh();
    let config = args.config();
    if config.num_devices() != mesh.num_devices() {
        eprintln!(
            "config dp*mp = {} does not fill mesh {} ({} devices)",
            config.num_devices(),
            mesh.label(),
            mesh.num_devices()
        );
        exit(2);
    }
    let profiler = SimProfiler::new(args.platform(), args.seed());
    let graph = profiler.stage_graph(&stage);
    // even a single query goes through the service stack, so the CLI
    // reports the same instrumented accounting as the search path
    let stack = ServiceBuilder::new(&profiler).instrumented().finish();
    let reply = stack
        .query(&LatencyQuery::new(stage, mesh, config))
        .expect("the simulator serves every scenario");
    println!(
        "{} on {} mesh {} [{}]",
        stage.label(),
        args.platform().name,
        mesh.label(),
        config.remark()
    );
    println!(
        "  graph: {} nodes, {} edges",
        graph.len(),
        graph.num_edges()
    );
    println!(
        "  training-iteration latency: {:.6} s (one micro-batch, source = {})",
        reply.seconds, reply.source
    );
}

fn cmd_search(args: &Args) {
    let model = args.model();
    let platform = args.platform();
    let cluster = MeshShape::new(platform.max_nodes, platform.gpus_per_node);
    let profiler = SimProfiler::new(platform.clone(), args.seed());
    let opts = InterStageOptions {
        microbatches: args.usize_flag("microbatches", 8),
        imbalance_tolerance: None,
    };
    eprintln!(
        "searching plans for {} on {} ({} candidates will be profiled)...",
        model.kind.name(),
        platform.name,
        enumerate_stages(model).len()
    );
    // the canonical stack: memoized, fanned out over the worker pool,
    // instrumented at the top so the accounting matches what the search
    // observed
    let stack = ServiceBuilder::new(&profiler)
        .memoize()
        .batched_auto()
        .instrumented()
        .finish();
    let out = search_plan_service(model, cluster, &stack, &profiler, opts, None)
        .expect("the simulator stack serves every scenario");
    println!("optimal plan ({} stage-latency queries):", out.num_queries);
    for ps in &out.plan.stages {
        println!(
            "  {} on {} [{}]",
            ps.stage.label(),
            ps.mesh.label(),
            ps.config.remark()
        );
    }
    println!(
        "iteration latency: {:.6} s (B = {})",
        out.true_latency, out.plan.microbatches
    );
    if let Some(report) = &out.service {
        if let Some(c) = report.cache {
            println!("memoize: {} hits / {} misses", c.hits, c.misses);
        }
        if let Some(m) = &report.metrics {
            println!(
                "service: {} queries in {} batches ({} errors), {:.3} served seconds",
                m.queries, m.batches, m.errors, m.served_seconds
            );
        }
    }
    let bill = profiler.ledger().totals();
    println!(
        "profiling bill: {} stages, {:.0} simulated seconds",
        bill.stages_profiled, bill.profiling_s
    );
    if let Some(path) = args.flags.get("plan-out") {
        let json = serde_json::to_string(&out.plan).unwrap_or_else(|e| {
            eprintln!("plan serialization failed: {e}");
            exit(1);
        });
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("could not write plan to {path}: {e}");
            exit(1);
        }
        eprintln!("plan written to {path}");
    }
}

fn cmd_fit(args: &Args) {
    let Some(out_path) = args.flags.get("o") else {
        eprintln!("fit requires -o FILE");
        usage()
    };
    let model = args.model();
    let mesh = args.mesh();
    let config = args.config();
    let platform = args.platform();
    let profiler = SimProfiler::new(platform.clone(), args.seed());

    let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
    if !args.switches.iter().any(|s| s == "scaled") {
        arch = ArchConfig::paper(ModelKind::DagTransformer);
    }
    let stages = sample_stages(model, args.usize_flag("stages", 24), 4, args.seed());
    eprintln!(
        "profiling {} stages on {} {} [{}]...",
        stages.len(),
        platform.name,
        mesh.label(),
        config.remark()
    );
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, arch.pe_dim())
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.8, args.seed());
    let mut net = arch.build(args.seed());
    eprintln!(
        "training DAG Transformer ({} layers x {})...",
        arch.layers, arch.hidden
    );
    let (scaler, report) = predtop::gnn::train::train(
        net.as_mut(),
        &ds,
        &split,
        &TrainConfig::quick(args.usize_flag("epochs", 60)),
    );
    let mre = predtop::gnn::train::eval_mre(net.as_ref(), &scaler, &ds, &split.test);
    let predictor = TrainedPredictor { model: net, scaler };
    persist::save_to_file(out_path, arch, &predictor).unwrap_or_else(|e| {
        eprintln!("save failed: {e}");
        exit(1);
    });
    println!(
        "trained in {:.1}s ({} epochs), held-out MRE {:.2}%, saved to {out_path}",
        report.train_seconds, report.epochs_run, mre
    );
}

/// A predictor restored from disk, lifted into the service stack: every
/// query rebuilds the stage graph and serves the DAG-Transformer
/// estimate, attributed to `"predictor"`.
struct SavedModelService {
    predictor: TrainedPredictor,
    pe_dim: usize,
}

impl LatencyService for SavedModelService {
    fn name(&self) -> &'static str {
        "predictor"
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let sample = GraphSample::new(&q.stage.build_graph(), 1.0, self.pe_dim);
        Ok(LatencyReply {
            seconds: self.predictor.predict(&sample),
            source: self.name(),
        })
    }
}

/// Load a saved predictor as a service, or a named [`Unavailable`] that
/// carries the load failure into the fallback chain.
fn load_model_service(path: &str) -> Box<dyn LatencyService> {
    let attempt = || -> Result<SavedModelService, String> {
        let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let saved: persist::SavedPredictor =
            serde_json::from_str(&body).map_err(|e| e.to_string())?;
        let pe_dim = saved.arch.pe_dim();
        let predictor = persist::restore(&saved).map_err(|e| e.to_string())?;
        Ok(SavedModelService { predictor, pe_dim })
    };
    match attempt() {
        Ok(svc) => Box::new(svc),
        Err(reason) => {
            eprintln!("model load failed ({reason}); degrading to the analytic baseline");
            Box::new(Unavailable::new("predictor", reason))
        }
    }
}

fn cmd_predict(args: &Args) {
    let Some(model_path) = args.flags.get("m") else {
        eprintln!("predict requires -m FILE");
        usage()
    };
    let model = args.model();
    let stage = args.stage(model);
    let mesh = args.mesh();
    let config = args.config();
    // predictor → analytic fallback chain: a missing or undecodable
    // model file degrades the answer instead of aborting the command
    let analytic = AnalyticBaseline::new(args.platform());
    let stack = ServiceBuilder::new(load_model_service(model_path))
        .or_fallback_to(analytic)
        .finish();
    let reply = stack
        .query(&LatencyQuery::new(stage, mesh, config))
        .unwrap_or_else(|e| {
            eprintln!("prediction failed: {e}");
            exit(1);
        });
    println!(
        "{}: predicted latency {:.6} s (source = {})",
        stage.label(),
        reply.seconds,
        reply.source
    );
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "info" => cmd_info(),
        "profile" => cmd_profile(&args),
        "search" => cmd_search(&args),
        "fit" => cmd_fit(&args),
        "predict" => cmd_predict(&args),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
