//! `predtop` — command-line front end to the library.
//!
//! ```text
//! predtop info                          platforms, meshes, benchmarks
//! predtop profile [options]             simulate one stage's latency
//! predtop search  [options]             optimize a pipeline plan
//! predtop fit     [options] -o FILE     fit a predictor and save it
//! predtop predict -m FILE [options]     predict with a saved predictor
//! predtop store ACTION --store DIR      inspect/verify/gc an object store
//! predtop help                          print the full flag reference
//! ```
//!
//! Common options: `--model gpt3|moe`, `--platform 1|2`, `--mesh NxG`,
//! `--dp D --mp M`, `--stage A..B`, `--threads T`, `--format text|json`,
//! `--scaled` (shrink the benchmark so runs finish in seconds on a
//! laptop), `--seed S`. `search` additionally takes the fault-tolerance
//! flags `--inject-fault-rate`, `--fault-seed`, `--retry`, and
//! `--deadline-ms` (see `DESIGN.md` §10 for the fault model).
//!
//! `--store DIR` on `profile`/`search`/`predict` installs the disk tier
//! (DESIGN.md §13): latency replies are keyed by structural descriptor
//! in a content-addressed object store, so a second identical run is
//! served from disk — bit-identically — instead of recomputed.

use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;

use predtop::core::persist;
use predtop::prelude::*;
use predtop::store::hash::digest_bytes;

/// The complete help text. `predtop help` / `--help` print it verbatim
/// (a golden test in `tests/cli.rs` pins it), and every usage error
/// points at it.
const HELP: &str = "usage: predtop <command> [options]

commands:
  info                       list platforms, meshes, and benchmarks
  profile                    simulate one stage's training latency
  search                     optimize a full pipeline plan
  fit -o FILE                fit a DAG-Transformer predictor, save JSON
  predict -m FILE            predict a stage latency with a saved model
                             (falls back to the analytic baseline if the
                             model cannot be loaded; see `source = ...`)
  store stats|verify|gc      inspect, verify, or compact the object
                             store named by --store DIR
  help                       print this help (also --help / -h)

options:
  --model gpt3|moe           benchmark (default gpt3)
  --platform 1|2             hardware platform (default 2)
  --mesh NxG                 sub-mesh, e.g. 1x2 (default 1x1)
  --dp D --mp M              parallelism config (default 1,1)
  --stage A..B               layer range (default whole model)
  --microbatches B           pipeline micro-batches (default 8)
  --threads T                (search) evaluation worker threads
  --format text|json         output format (default text)
  --plan-out FILE            (search) write the chosen plan as JSON
  --store DIR                persist latency replies and plan/outcome
                             snapshots in a content-addressed object
                             store at DIR, so a second identical run
                             is served from disk (profile/search/predict)
  --raw-cache                (search) memoize on raw query identity
                             instead of structural equivalence classes
  --checked                  (search) reject statically illegal
                             candidates (sharding divisibility + the
                             liveness-tight memory bound) before any
                             latency evaluation
  --scaled                   shrink the benchmark for quick runs
  --seed S                   simulator seed (default 7)

fault tolerance (search):
  --inject-fault-rate R      inject transient faults at rate R in [0,1]
  --fault-seed S             fault-injection hash seed (default 0)
  --retry N                  re-attempt transient failures up to N times
  --deadline-ms MS           per-query latency budget in milliseconds";

fn usage() -> ! {
    eprintln!("{HELP}");
    exit(2)
}

fn help() -> ! {
    println!("{HELP}");
    exit(0)
}

struct Args {
    command: String,
    /// The bare action word after the `store` command (`stats` | `verify`
    /// | `gc`); every other command rejects positionals.
    action: Option<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        help();
    }
    let mut action = None;
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if !a.starts_with("--") && a != "-o" && a != "-m" && a != "-h" {
            if command == "store" && action.is_none() {
                action = Some(a.clone());
                i += 1;
                continue;
            }
            eprintln!("unexpected argument `{a}`");
            usage();
        }
        let key = a.trim_start_matches('-').to_string();
        if matches!(key.as_str(), "help" | "h") {
            help();
        }
        if matches!(key.as_str(), "scaled" | "raw-cache" | "checked") {
            switches.push(key);
        } else {
            i += 1;
            if i >= rest.len() {
                eprintln!("flag `{a}` needs a value");
                usage();
            }
            flags.insert(key, rest[i].clone());
        }
        i += 1;
    }
    Args {
        command,
        action,
        flags,
        switches,
    }
}

/// Output rendering selected by `--format`.
#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Text,
    Json,
}

impl Args {
    fn model(&self) -> ModelSpec {
        let scaled = self.switches.iter().any(|s| s == "scaled");
        let mut m = match self.flags.get("model").map(|s| s.as_str()) {
            None | Some("gpt3") => ModelSpec::gpt3_1p3b(if scaled { 2 } else { 8 }),
            Some("moe") => ModelSpec::moe_2p6b(if scaled { 2 } else { 8 }),
            Some(other) => {
                eprintln!("unknown model `{other}` (gpt3|moe)");
                usage()
            }
        };
        if scaled {
            m.seq_len = 128;
            m.hidden = 128;
            m.num_heads = 8;
            m.vocab = 2048;
            m.num_layers = 8;
            if let Some(moe) = m.moe.as_mut() {
                moe.num_experts = 8;
                moe.expert_hidden = 256;
            }
        }
        m
    }

    fn platform(&self) -> Platform {
        match self.flags.get("platform").map(|s| s.as_str()) {
            Some("1") => Platform::platform1(),
            None | Some("2") => Platform::platform2(),
            Some(other) => {
                eprintln!("unknown platform `{other}` (1|2)");
                usage()
            }
        }
    }

    fn mesh(&self) -> MeshShape {
        let spec = self.flags.get("mesh").map(|s| s.as_str()).unwrap_or("1x1");
        let parts: Vec<&str> = spec.split('x').collect();
        match parts.as_slice() {
            [n, g] => match (n.parse(), g.parse()) {
                (Ok(n), Ok(g)) => MeshShape::new(n, g),
                _ => {
                    eprintln!("bad mesh `{spec}` (expected NxG)");
                    usage()
                }
            },
            _ => {
                eprintln!("bad mesh `{spec}` (expected NxG)");
                usage()
            }
        }
    }

    fn config(&self) -> ParallelConfig {
        let dp = self.usize_flag("dp", 1);
        let mp = self.usize_flag("mp", 1);
        ParallelConfig::new(dp, mp)
    }

    fn usize_flag(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{key} expects a number, got `{v}`");
                    usage()
                })
            })
            .unwrap_or(default)
    }

    fn f64_flag(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{key} expects a number, got `{v}`");
                    usage()
                })
            })
            .unwrap_or(default)
    }

    fn seed(&self) -> u64 {
        self.usize_flag("seed", 7) as u64
    }

    /// The `--store DIR` object store, opened (and its directory layout
    /// created) on demand.
    fn store(&self) -> Option<Arc<Store>> {
        self.flags.get("store").map(|dir| match Store::open(dir) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("could not open object store at {dir}: {e}");
                exit(1)
            }
        })
    }

    /// The platform's numeric id, for store-key namespaces. Replies
    /// simulated on different platforms (or seeds) must never collide.
    fn platform_id(&self) -> &str {
        match self.flags.get("platform").map(|s| s.as_str()) {
            Some("1") => "1",
            _ => "2",
        }
    }

    /// Store-key namespace of simulator-backed commands:
    /// `sim:<platform>:<seed>` — `profile` and `search` share it, so a
    /// search warms the store for later single-stage profiles.
    fn sim_namespace(&self) -> String {
        format!("sim:{}:{}", self.platform_id(), self.seed())
    }

    fn format(&self) -> OutputFormat {
        match self.flags.get("format").map(|s| s.as_str()) {
            None | Some("text") => OutputFormat::Text,
            Some("json") => OutputFormat::Json,
            Some(other) => {
                eprintln!("unknown format `{other}` (text|json)");
                usage()
            }
        }
    }

    fn stage(&self, model: ModelSpec) -> StageSpec {
        match self.flags.get("stage") {
            None => StageSpec::new(model, 0, model.num_layers),
            Some(spec) => {
                let parts: Vec<&str> = spec.split("..").collect();
                match parts.as_slice() {
                    [a, b] => match (a.parse(), b.parse()) {
                        (Ok(a), Ok(b)) => StageSpec::new(model, a, b),
                        _ => {
                            eprintln!("bad stage `{spec}` (expected A..B)");
                            usage()
                        }
                    },
                    _ => {
                        eprintln!("bad stage `{spec}` (expected A..B)");
                        usage()
                    }
                }
            }
        }
    }
}

/// The disk tier's text accounting line, shared by every `--store`
/// command.
fn persist_text_line(s: &PersistStats) -> String {
    let mut line = format!(
        "store: {} disk hits / {} disk misses ({:.1}% served from disk), {} written",
        s.disk_hits,
        s.disk_misses,
        s.disk_served_rate() * 100.0,
        s.writes
    );
    if s.corrupt_recovered > 0 {
        line.push_str(&format!(", {} corrupt recovered", s.corrupt_recovered));
    }
    if s.write_errors > 0 {
        line.push_str(&format!(", {} write errors", s.write_errors));
    }
    line
}

/// The disk tier's JSON fields (leading comma included).
fn persist_json_fields(s: &PersistStats) -> String {
    format!(
        ",\"store_disk_hits\":{},\"store_disk_misses\":{},\"store_writes\":{}",
        s.disk_hits, s.disk_misses, s.writes
    )
}

fn cmd_info() {
    println!("PredTOP — gray-box latency prediction for distributed DL training\n");
    for platform in [Platform::platform1(), Platform::platform2()] {
        println!(
            "{}: {} ({} CUDA cores, {:.0} GiB, {:.0} GB/s)",
            platform.name,
            platform.gpu.name,
            platform.gpu.cuda_cores,
            platform.gpu.memory_gib,
            platform.gpu.mem_bandwidth_gbs
        );
        for mesh in platform.table2_meshes() {
            let shape = MeshShape::new(mesh.num_nodes, mesh.gpus_per_node);
            let configs: Vec<String> = table3_configs(shape).iter().map(|c| c.remark()).collect();
            println!(
                "  mesh {} ({}): {}",
                mesh.table2_index().unwrap(),
                mesh.label(),
                configs.join(" / ")
            );
        }
    }
    println!();
    for model in [ModelSpec::gpt3_1p3b(8), ModelSpec::moe_2p6b(8)] {
        println!(
            "{}: {} layers, hidden {}, seq {}, vocab {}, ~{:.2}B params, {} stage candidates",
            model.kind.name(),
            model.num_layers,
            model.hidden,
            model.seq_len,
            model.vocab,
            model.approx_params() as f64 / 1e9,
            enumerate_stages(model).len()
        );
    }
}

fn cmd_profile(args: &Args) {
    let model = args.model();
    let stage = args.stage(model);
    let mesh = args.mesh();
    let config = args.config();
    if config.num_devices() != mesh.num_devices() {
        eprintln!(
            "config dp*mp = {} does not fill mesh {} ({} devices)",
            config.num_devices(),
            mesh.label(),
            mesh.num_devices()
        );
        exit(2);
    }
    let profiler = SimProfiler::new(args.platform(), args.seed());
    let graph = profiler.stage_graph(&stage);
    let query = LatencyQuery::new(stage, mesh, config);
    // even a single query goes through the service stack, so the CLI
    // reports the same instrumented accounting as the search path; with
    // `--store` the disk tier slots in under the (canonical-order)
    // memory cache, so a profile re-run is served from disk
    let (reply, persist) = match args.store() {
        Some(store) => {
            let stack = ServiceBuilder::new(&profiler)
                .persist(store, args.sim_namespace())
                .memoize()
                .instrumented()
                .finish();
            let reply = stack
                .query(&query)
                .expect("the simulator serves every scenario");
            let persist = stack.handles().persist.as_ref().map(|h| h.stats());
            (reply, persist)
        }
        None => {
            let stack = ServiceBuilder::new(&profiler).instrumented().finish();
            let reply = stack
                .query(&query)
                .expect("the simulator serves every scenario");
            (reply, None)
        }
    };
    match args.format() {
        OutputFormat::Text => {
            println!(
                "{} on {} mesh {} [{}]",
                stage.label(),
                args.platform().name,
                mesh.label(),
                config.remark()
            );
            println!(
                "  graph: {} nodes, {} edges",
                graph.len(),
                graph.num_edges()
            );
            println!(
                "  training-iteration latency: {:.6} s (one micro-batch, source = {})",
                reply.seconds, reply.source
            );
            if let Some(p) = &persist {
                println!("  {}", persist_text_line(p));
            }
        }
        OutputFormat::Json => println!(
            "{{\"stage\":\"{}\",\"mesh\":\"{}\",\"dp\":{},\"mp\":{},\"latency_s\":{:.9},\"source\":\"{}\"{}}}",
            stage.label(),
            mesh.label(),
            config.dp,
            config.mp,
            reply.seconds,
            reply.source,
            persist
                .as_ref()
                .map(persist_json_fields)
                .unwrap_or_default()
        ),
    }
}

/// Render a structured [`ServiceError`] for the terminal — the CLI's
/// side of the error redesign: every variant gets its classification and
/// an actionable hint.
fn die_service_error(e: ServiceError) -> ! {
    let class = match e.retryability() {
        Retryability::Transient => "transient",
        Retryability::Permanent => "permanent",
    };
    let hint = match &e {
        ServiceError::Unavailable { .. } => {
            "check the latency source (is the model file readable?)"
        }
        ServiceError::ScenarioUnsupported { .. } => {
            "fit a predictor for this scenario, or query the simulator instead"
        }
        ServiceError::InjectedFault { .. } => {
            "raise --retry so every query can outlive the injected faults"
        }
        ServiceError::DeadlineExceeded { .. } => "raise --deadline-ms or drop the budget",
        ServiceError::CircuitOpen { .. } => {
            "raise --retry so re-attempts outlast the breaker cooldown"
        }
    };
    eprintln!("search failed ({class}): {e}");
    eprintln!("  hint: {hint}");
    exit(1)
}

/// Lint the stack's layer ordering (the same `P2xxx` rules
/// `predtop-lint --stack` enforces), then run the plan search over it.
fn run_search<S: LatencyService>(
    stack: &ServiceStack<S>,
    model: ModelSpec,
    cluster: MeshShape,
    profiler: &SimProfiler,
    opts: InterStageOptions,
    legality: Option<&StaticLegality>,
) -> SearchOutcome {
    let stack_diags = analyze_stack(stack.spec());
    if has_errors(&stack_diags) {
        eprintln!("internal error: the search service stack is misordered");
        eprint!("{}", render_text(&stack_diags));
        exit(1);
    }
    match search_plan_service(model, cluster, stack, profiler, opts, legality) {
        Ok(out) => out,
        Err(e) => die_service_error(e),
    }
}

fn cmd_search(args: &Args) {
    let model = args.model();
    let platform = args.platform();
    let cluster = MeshShape::new(platform.max_nodes, platform.gpus_per_node);
    let profiler = SimProfiler::new(platform.clone(), args.seed());
    let opts = InterStageOptions {
        microbatches: args.usize_flag("microbatches", 8),
        imbalance_tolerance: None,
    };
    let threads = args.usize_flag("threads", configured_threads());
    let fault_rate = args.f64_flag("inject-fault-rate", 0.0);
    if !(0.0..=1.0).contains(&fault_rate) {
        eprintln!("--inject-fault-rate expects a probability in [0, 1], got {fault_rate}");
        exit(2);
    }
    let fault_seed = args.usize_flag("fault-seed", 0) as u64;
    let retries = args.usize_flag("retry", 0);
    let deadline = args
        .flags
        .contains_key("deadline-ms")
        .then(|| args.f64_flag("deadline-ms", 0.0) / 1000.0);
    let chaos = fault_rate > 0.0 || retries > 0 || deadline.is_some();
    eprintln!(
        "searching plans for {} on {} ({} candidates will be profiled)...",
        model.kind.name(),
        platform.name,
        enumerate_stages(model).len()
    );
    let checked = args.switches.iter().any(|s| s == "checked");
    if checked && (opts.microbatches == 0 || !model.batch.is_multiple_of(opts.microbatches)) {
        // P1301 rejects *every* candidate, so a checked search can never
        // find a covering partition — fail up front with the structured
        // diagnostic (and its machine-applicable fix) instead.
        let diags = predtop::analyze::plan_passes::divisibility_diags(
            &model,
            opts.microbatches,
            ParallelConfig::new(1, 1),
            predtop::analyze::Span::Plan,
            None,
        );
        eprintln!(
            "checked search rejected up front: no candidate can satisfy \
             the micro-batch divisibility rule"
        );
        eprint!("{}", render_text(&diags));
        exit(2);
    }
    let legality = checked.then(|| search_legality(model, &profiler, opts));
    // the canonical chaos-capable stack (DESIGN.md §10): faults are
    // injected innermost, the deadline polices each attempt, the retry
    // loop absorbs transient failures, and only then do persistence,
    // memoization, fan-out, and instrumentation see the (now reliable)
    // service. With the default flags every fault-tolerance layer is a
    // pass-through. structural memoization is the default: the simulator
    // is a pure function of the stage graph, so isomorphic layer windows
    // share one cache entry. `--raw-cache` restores raw query-identity
    // keys; `--store` slots the disk tier under the memory cache
    // (DESIGN.md §13), so a second identical run is served from disk.
    let raw_cache = args.switches.iter().any(|s| s == "raw-cache");
    let store = args.store();
    let namespace = args.sim_namespace();
    let builder = ServiceBuilder::new(&profiler)
        .inject_faults(FaultConfig::errors(fault_seed, fault_rate))
        .deadline(DeadlinePolicy {
            per_query_seconds: deadline,
            per_batch_seconds: None,
        })
        .retry(RetryPolicy::retries(retries));
    let out = match &store {
        Some(store) => {
            let b = builder.persist(Arc::clone(store), namespace.clone());
            let b = if raw_cache {
                b.memoize()
            } else {
                b.memoize_structural()
            };
            let stack = b.batched(threads).instrumented().finish();
            run_search(&stack, model, cluster, &profiler, opts, legality.as_ref())
        }
        None => {
            let b = if raw_cache {
                builder.memoize()
            } else {
                builder.memoize_structural()
            };
            let stack = b.batched(threads).instrumented().finish();
            run_search(&stack, model, cluster, &profiler, opts, legality.as_ref())
        }
    };
    // write-behind the outcome/plan snapshots under a key derived from
    // the search problem itself; best-effort — an unwritable store
    // degrades persistence, never the result
    if let Some(store) = &store {
        let key = search_snapshot_key(&namespace, model, cluster, opts, checked);
        let _ = store.put(ObjectKind::Outcome, &key, &encode_outcome(&out));
        let _ = store.put(ObjectKind::Plan, &key, &encode_plan(&out.plan));
    }
    let report = out.service.as_ref();
    match args.format() {
        OutputFormat::Text => {
            println!("optimal plan ({} stage-latency queries):", out.num_queries);
            for ps in &out.plan.stages {
                println!(
                    "  {} on {} [{}]",
                    ps.stage.label(),
                    ps.mesh.label(),
                    ps.config.remark()
                );
            }
            println!(
                "iteration latency: {:.6} s (B = {})",
                out.true_latency, out.plan.microbatches
            );
            if checked {
                println!(
                    "legality: {} candidates rejected before evaluation \
                     ({} by the liveness memory bound)",
                    out.num_rejected, out.num_rejected_memory
                );
            }
            if let Some(report) = report {
                if let Some(c) = report.cache {
                    println!(
                        "memoize: {} hits / {} misses ({:.1}% hit rate)",
                        c.hits,
                        c.misses,
                        c.hit_rate() * 100.0
                    );
                }
                if let Some(i) = report.interner {
                    println!(
                        "structural keys: {} distinct structures over {} lookups \
                         ({:.1}% reuse)",
                        i.distinct,
                        i.lookups,
                        i.reuse_rate() * 100.0
                    );
                }
                if let Some(p) = &report.persist {
                    println!("{}", persist_text_line(p));
                }
                if let Some(b) = report.batch {
                    println!(
                        "dispatch: {} batches ({} fanned out, {} inline), \
                         {} chunks, last chunk size {}",
                        b.batches, b.dispatched, b.inline, b.chunks, b.last_chunk_size
                    );
                }
                if let Some(m) = &report.metrics {
                    println!(
                        "service: {} queries in {} batches ({} errors), {:.3} served seconds",
                        m.queries, m.batches, m.errors, m.served_seconds
                    );
                }
                if chaos {
                    if let Some(f) = report.fault {
                        println!(
                            "faults: {} injected, {} passed (rate {}, seed {})",
                            f.injected_errors, f.passed, fault_rate, fault_seed
                        );
                    }
                    if let Some(r) = report.retry {
                        println!(
                            "retry: {} re-attempts, {} recovered, {} exhausted, \
                             {:.3} s backoff (accounted)",
                            r.retries, r.recovered, r.exhausted, r.backoff_seconds
                        );
                    }
                    if let Some(d) = report.deadline {
                        println!(
                            "deadline: {} overruns / {} served",
                            d.query_overruns + d.batch_overruns,
                            d.served
                        );
                    }
                }
            }
            let bill = profiler.ledger().totals();
            println!(
                "profiling bill: {} stages, {:.0} simulated seconds",
                bill.stages_profiled, bill.profiling_s
            );
        }
        OutputFormat::Json => {
            let stages: Vec<String> = out
                .plan
                .stages
                .iter()
                .map(|ps| {
                    format!(
                        "{{\"start\":{},\"end\":{},\"nodes\":{},\"gpus_per_node\":{},\"dp\":{},\"mp\":{}}}",
                        ps.stage.start,
                        ps.stage.end,
                        ps.mesh.nodes,
                        ps.mesh.gpus_per_node,
                        ps.config.dp,
                        ps.config.mp
                    )
                })
                .collect();
            let mut svc_fields = String::new();
            if checked {
                svc_fields.push_str(&format!(
                    ",\"num_rejected\":{},\"num_rejected_memory\":{}",
                    out.num_rejected, out.num_rejected_memory
                ));
            }
            if let Some(c) = report.and_then(|r| r.cache) {
                svc_fields.push_str(&format!(
                    ",\"cache_hits\":{},\"cache_misses\":{}",
                    c.hits, c.misses
                ));
            }
            if let Some(i) = report.and_then(|r| r.interner) {
                svc_fields.push_str(&format!(",\"distinct_structures\":{}", i.distinct));
            }
            if let Some(p) = report.and_then(|r| r.persist) {
                svc_fields.push_str(&persist_json_fields(&p));
            }
            let mut chaos_fields = String::new();
            if chaos {
                if let Some(f) = report.and_then(|r| r.fault) {
                    chaos_fields.push_str(&format!(",\"injected_faults\":{}", f.injected_errors));
                }
                if let Some(r) = report.and_then(|r| r.retry) {
                    chaos_fields.push_str(&format!(
                        ",\"retries\":{},\"recovered\":{}",
                        r.retries, r.recovered
                    ));
                }
                if let Some(d) = report.and_then(|r| r.deadline) {
                    chaos_fields.push_str(&format!(
                        ",\"deadline_overruns\":{}",
                        d.query_overruns + d.batch_overruns
                    ));
                }
            }
            println!(
                "{{\"model\":\"{}\",\"iteration_latency_s\":{:.9},\"microbatches\":{},\
                 \"num_queries\":{},\"stages\":[{}]{svc_fields}{chaos_fields}}}",
                model.kind.name(),
                out.true_latency,
                out.plan.microbatches,
                out.num_queries,
                stages.join(",")
            );
        }
    }
    if let Some(path) = args.flags.get("plan-out") {
        let json = serde_json::to_string(&out.plan).unwrap_or_else(|e| {
            eprintln!("plan serialization failed: {e}");
            exit(1);
        });
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("could not write plan to {path}: {e}");
            exit(1);
        }
        eprintln!("plan written to {path}");
    }
}

fn cmd_fit(args: &Args) {
    let Some(out_path) = args.flags.get("o") else {
        eprintln!("fit requires -o FILE");
        usage()
    };
    let model = args.model();
    let mesh = args.mesh();
    let config = args.config();
    let platform = args.platform();
    let profiler = SimProfiler::new(platform.clone(), args.seed());

    let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
    if !args.switches.iter().any(|s| s == "scaled") {
        arch = ArchConfig::paper(ModelKind::DagTransformer);
    }
    let stages = sample_stages(model, args.usize_flag("stages", 24), 4, args.seed());
    eprintln!(
        "profiling {} stages on {} {} [{}]...",
        stages.len(),
        platform.name,
        mesh.label(),
        config.remark()
    );
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, arch.pe_dim())
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.8, args.seed());
    let mut net = arch.build(args.seed());
    eprintln!(
        "training DAG Transformer ({} layers x {})...",
        arch.layers, arch.hidden
    );
    let (scaler, report) = predtop::gnn::train::train(
        net.as_mut(),
        &ds,
        &split,
        &TrainConfig::quick(args.usize_flag("epochs", 60)),
    );
    let mre = predtop::gnn::train::eval_mre(net.as_ref(), &scaler, &ds, &split.test);
    let predictor = TrainedPredictor { model: net, scaler };
    persist::save_to_file(out_path, arch, &predictor).unwrap_or_else(|e| {
        eprintln!("save failed: {e}");
        exit(1);
    });
    println!(
        "trained in {:.1}s ({} epochs), held-out MRE {:.2}%, saved to {out_path}",
        report.train_seconds, report.epochs_run, mre
    );
}

/// A predictor restored from disk, lifted into the service stack: every
/// query rebuilds the stage graph and serves the DAG-Transformer
/// estimate, attributed to `"predictor"`.
struct SavedModelService {
    predictor: TrainedPredictor,
    pe_dim: usize,
}

impl LatencyService for SavedModelService {
    fn name(&self) -> &'static str {
        "predictor"
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let sample = GraphSample::new(&q.stage.build_graph(), 1.0, self.pe_dim);
        Ok(LatencyReply {
            seconds: self.predictor.predict(&sample),
            source: self.name(),
        })
    }
}

/// Load a saved predictor as a service, or a named [`Unavailable`] that
/// carries the load failure into the fallback chain.
fn load_model_service(path: &str) -> Box<dyn LatencyService> {
    let attempt = || -> Result<SavedModelService, String> {
        let body = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        let saved: persist::SavedPredictor =
            serde_json::from_str(&body).map_err(|e| e.to_string())?;
        let pe_dim = saved.arch.pe_dim();
        let predictor = persist::restore(&saved).map_err(|e| e.to_string())?;
        Ok(SavedModelService { predictor, pe_dim })
    };
    match attempt() {
        Ok(svc) => Box::new(svc),
        Err(reason) => {
            eprintln!("model load failed ({reason}); degrading to the analytic baseline");
            Box::new(Unavailable::new("predictor", reason))
        }
    }
}

fn cmd_predict(args: &Args) {
    let Some(model_path) = args.flags.get("m") else {
        eprintln!("predict requires -m FILE");
        usage()
    };
    let model = args.model();
    let stage = args.stage(model);
    let mesh = args.mesh();
    let config = args.config();
    // predictor → analytic fallback chain: a missing or undecodable
    // model file degrades the answer instead of aborting the command
    let analytic = AnalyticBaseline::new(args.platform());
    let builder = ServiceBuilder::new(load_model_service(model_path)).or_fallback_to(analytic);
    let query = LatencyQuery::new(stage, mesh, config);
    let (reply, persist) = match args.store() {
        Some(store) => {
            // the namespace ties persisted answers to the exact model
            // weights (file digest) and fallback platform, so swapping
            // the model file can never serve stale predictions
            let weights = match std::fs::read(model_path) {
                Ok(bytes) => digest_bytes(&bytes).to_hex(),
                Err(_) => "unloadable".to_string(),
            };
            let ns = format!("predict:{}:{}", args.platform_id(), weights);
            let stack = builder.persist(store, ns).memoize().finish();
            let reply = stack.query(&query);
            let persist = stack.handles().persist.as_ref().map(|h| h.stats());
            (reply, persist)
        }
        None => (builder.finish().query(&query), None),
    };
    let reply = reply.unwrap_or_else(|e| {
        eprintln!("prediction failed: {e}");
        exit(1);
    });
    match args.format() {
        OutputFormat::Text => {
            println!(
                "{}: predicted latency {:.6} s (source = {})",
                stage.label(),
                reply.seconds,
                reply.source
            );
            if let Some(p) = &persist {
                println!("{}", persist_text_line(p));
            }
        }
        OutputFormat::Json => println!(
            "{{\"stage\":\"{}\",\"latency_s\":{:.9},\"source\":\"{}\"{}}}",
            stage.label(),
            reply.seconds,
            reply.source,
            persist
                .as_ref()
                .map(persist_json_fields)
                .unwrap_or_default()
        ),
    }
}

/// `predtop store stats|verify|gc --store DIR` — the object-store
/// maintenance surface (DESIGN.md §13).
fn cmd_store(args: &Args) {
    let Some(action) = args.action.as_deref() else {
        eprintln!("store requires an action: stats | verify | gc");
        usage()
    };
    let Some(store) = args.store() else {
        eprintln!("store requires --store DIR");
        usage()
    };
    let dir = &args.flags["store"];
    match action {
        "stats" => {
            let s = store.stats().unwrap_or_else(|e| {
                eprintln!("store stats failed: {e}");
                exit(1)
            });
            println!("object store at {dir} (generation {}):", s.generation);
            println!(
                "  loose:  {} objects, {} bytes",
                s.loose_objects, s.loose_bytes
            );
            println!(
                "  packed: {} objects, {} bytes in {} pack file(s)",
                s.packed_objects, s.pack_bytes, s.pack_files
            );
        }
        "verify" => {
            let report = store.verify().unwrap_or_else(|e| {
                eprintln!("store verify failed: {e}");
                exit(1)
            });
            println!(
                "verified {} objects ({} loose, {} packed): {}",
                report.checked,
                report.loose,
                report.packed,
                if report.is_clean() {
                    "clean"
                } else {
                    "CORRUPT"
                }
            );
            if !report.is_clean() {
                for (digest, reason) in &report.corrupt {
                    eprintln!("  corrupt {}: {reason}", digest.to_hex());
                }
                exit(1);
            }
        }
        "gc" => {
            let r = store.gc().unwrap_or_else(|e| {
                eprintln!("store gc failed: {e}");
                exit(1)
            });
            println!(
                "gc generation {}: packed {} objects ({} duplicates folded, \
                 {} corrupt dropped)",
                r.generation, r.packed, r.duplicates_folded, r.corrupt_dropped
            );
            println!(
                "  removed {} loose file(s) and {} prior pack(s); \
                 {} -> {} bytes",
                r.loose_removed, r.packs_removed, r.bytes_before, r.bytes_after
            );
        }
        other => {
            eprintln!("unknown store action `{other}` (stats|verify|gc)");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "info" => cmd_info(),
        "profile" => cmd_profile(&args),
        "search" => cmd_search(&args),
        "fit" => cmd_fit(&args),
        "predict" => cmd_predict(&args),
        "store" => cmd_store(&args),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
