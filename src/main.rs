//! `predtop` — command-line front end to the library.
//!
//! ```text
//! predtop info                          platforms, meshes, benchmarks
//! predtop profile [options]             simulate one stage's latency
//! predtop search  [options]             optimize a pipeline plan
//! predtop fit     [options] -o FILE     fit a predictor and save it
//! predtop predict -m FILE [options]     predict with a saved predictor
//! predtop store ACTION --store DIR      inspect/verify/gc an object store
//! predtop serve   [options]             framed request/response daemon
//! predtop help                          print the full flag reference
//! ```
//!
//! Common options: `--model gpt3|moe`, `--platform 1|2`, `--mesh NxG`,
//! `--dp D --mp M`, `--stage A..B`, `--threads T`, `--format text|json`,
//! `--scaled` (shrink the benchmark so runs finish in seconds on a
//! laptop), `--seed S`. `search` and `serve` additionally take the
//! fault-tolerance flags `--inject-fault-rate`, `--fault-seed`,
//! `--retry`, and `--deadline-ms` (see `DESIGN.md` §10 for the fault
//! model).
//!
//! `--store DIR` on `profile`/`search`/`predict`/`serve` installs the
//! disk tier (DESIGN.md §13): latency replies are keyed by structural
//! descriptor in a content-addressed object store, so a second
//! identical run is served from disk — bit-identically — instead of
//! recomputed.
//!
//! Every command speaks the unified request/response API of
//! `predtop_service::api`: the CLI parses its flags into the **same**
//! [`api::Request`] values the `serve` daemon decodes off a socket, and
//! both hand them to the same [`ServeEngine`] (DESIGN.md §14).

use std::collections::HashMap;
use std::path::Path;
use std::process::exit;
use std::sync::Arc;

use predtop::core::persist;
use predtop::prelude::*;

/// The complete help text. `predtop help` / `--help` print it verbatim
/// (a golden test in `tests/cli.rs` pins it), and every usage error
/// points at it.
const HELP: &str = "usage: predtop <command> [options]

commands:
  info                       list platforms, meshes, and benchmarks
  profile                    simulate one stage's training latency
  search                     optimize a full pipeline plan
  fit -o FILE                fit a DAG-Transformer predictor, save JSON
  predict -m FILE            predict a stage latency with a saved model
                             (falls back to the analytic baseline if the
                             model cannot be loaded; see `source = ...`)
  store stats|verify|gc      inspect, verify, or compact the object
                             store named by --store DIR
  serve                      run the framed wire-protocol daemon on
                             --listen (TCP) and/or --socket (Unix);
                             drains gracefully on SIGTERM or a
                             Shutdown frame
  help                       print this help (also --help / -h)

options:
  --model gpt3|moe           benchmark (default gpt3)
  --platform 1|2             hardware platform (default 2)
  --mesh NxG                 sub-mesh, e.g. 1x2 (default 1x1)
  --dp D --mp M              parallelism config (default 1,1)
  --stage A..B               layer range (default whole model)
  --microbatches B           pipeline micro-batches (default 8)
  --threads T                (search/serve) evaluation worker threads
  --format text|json         output format (default text)
  --plan-out FILE            (search) write the chosen plan as JSON
  --store DIR                persist latency replies and plan/outcome
                             snapshots in a content-addressed object
                             store at DIR, so a second identical run
                             is served from disk (profile/search/
                             predict/serve)
  --raw-cache                (search/serve) memoize on raw query
                             identity instead of structural equivalence
                             classes
  --checked                  (search) reject statically illegal
                             candidates (sharding divisibility + the
                             liveness-tight memory bound) before any
                             latency evaluation
  --scaled                   shrink the benchmark for quick runs
  --seed S                   simulator seed (default 7)

fault tolerance (search, serve):
  --inject-fault-rate R      inject transient faults at rate R in [0,1]
  --fault-seed S             fault-injection hash seed (default 0)
  --retry N                  re-attempt transient failures up to N times
  --deadline-ms MS           per-query latency budget in milliseconds

serving (serve):
  --listen HOST:PORT         accept framed requests over TCP
  --socket PATH              accept framed requests on a Unix socket
  -m FILE                    saved predictor backing Predict requests
  --max-connections N        concurrent-connection ceiling
  --breaker-trip N           admission breaker trips after N failures
                             and sheds requests until its cooldown
                             probe succeeds (default 5)";

fn usage() -> ! {
    eprintln!("{HELP}");
    exit(2)
}

fn help() -> ! {
    println!("{HELP}");
    exit(0)
}

struct Args {
    command: String,
    /// The bare action word after the `store` command (`stats` | `verify`
    /// | `gc`); every other command rejects positionals.
    action: Option<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        help();
    }
    let mut action = None;
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if !a.starts_with("--") && a != "-o" && a != "-m" && a != "-h" {
            if command == "store" && action.is_none() {
                action = Some(a.clone());
                i += 1;
                continue;
            }
            eprintln!("unexpected argument `{a}`");
            usage();
        }
        let key = a.trim_start_matches('-').to_string();
        if matches!(key.as_str(), "help" | "h") {
            help();
        }
        if matches!(key.as_str(), "scaled" | "raw-cache" | "checked") {
            switches.push(key);
        } else {
            i += 1;
            if i >= rest.len() {
                eprintln!("flag `{a}` needs a value");
                usage();
            }
            flags.insert(key, rest[i].clone());
        }
        i += 1;
    }
    Args {
        command,
        action,
        flags,
        switches,
    }
}

/// Output rendering selected by `--format`.
#[derive(Clone, Copy, PartialEq)]
enum OutputFormat {
    Text,
    Json,
}

impl Args {
    fn model(&self) -> ModelSpec {
        let scaled = self.switches.iter().any(|s| s == "scaled");
        let mut m = match self.flags.get("model").map(|s| s.as_str()) {
            None | Some("gpt3") => ModelSpec::gpt3_1p3b(if scaled { 2 } else { 8 }),
            Some("moe") => ModelSpec::moe_2p6b(if scaled { 2 } else { 8 }),
            Some(other) => {
                eprintln!("unknown model `{other}` (gpt3|moe)");
                usage()
            }
        };
        if scaled {
            m.seq_len = 128;
            m.hidden = 128;
            m.num_heads = 8;
            m.vocab = 2048;
            m.num_layers = 8;
            if let Some(moe) = m.moe.as_mut() {
                moe.num_experts = 8;
                moe.expert_hidden = 256;
            }
        }
        m
    }

    fn platform(&self) -> Platform {
        match self.flags.get("platform").map(|s| s.as_str()) {
            Some("1") => Platform::platform1(),
            None | Some("2") => Platform::platform2(),
            Some(other) => {
                eprintln!("unknown platform `{other}` (1|2)");
                usage()
            }
        }
    }

    fn mesh(&self) -> MeshShape {
        let spec = self.flags.get("mesh").map(|s| s.as_str()).unwrap_or("1x1");
        let parts: Vec<&str> = spec.split('x').collect();
        match parts.as_slice() {
            [n, g] => match (n.parse(), g.parse()) {
                (Ok(n), Ok(g)) => MeshShape::new(n, g),
                _ => {
                    eprintln!("bad mesh `{spec}` (expected NxG)");
                    usage()
                }
            },
            _ => {
                eprintln!("bad mesh `{spec}` (expected NxG)");
                usage()
            }
        }
    }

    fn config(&self) -> ParallelConfig {
        let dp = self.usize_flag("dp", 1);
        let mp = self.usize_flag("mp", 1);
        ParallelConfig::new(dp, mp)
    }

    fn usize_flag(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{key} expects a number, got `{v}`");
                    usage()
                })
            })
            .unwrap_or(default)
    }

    fn f64_flag(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .map(|v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("--{key} expects a number, got `{v}`");
                    usage()
                })
            })
            .unwrap_or(default)
    }

    fn seed(&self) -> u64 {
        self.usize_flag("seed", 7) as u64
    }

    /// The `--store DIR` object store, opened (and its directory layout
    /// created) on demand.
    fn store(&self) -> Option<Arc<Store>> {
        self.flags.get("store").map(|dir| match Store::open(dir) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("could not open object store at {dir}: {e}");
                exit(1)
            }
        })
    }

    /// The platform's numeric id, for store-key namespaces. Replies
    /// simulated on different platforms (or seeds) must never collide.
    fn platform_id(&self) -> &str {
        match self.flags.get("platform").map(|s| s.as_str()) {
            Some("1") => "1",
            _ => "2",
        }
    }

    fn format(&self) -> OutputFormat {
        match self.flags.get("format").map(|s| s.as_str()) {
            None | Some("text") => OutputFormat::Text,
            Some("json") => OutputFormat::Json,
            Some(other) => {
                eprintln!("unknown format `{other}` (text|json)");
                usage()
            }
        }
    }

    fn stage(&self, model: ModelSpec) -> StageSpec {
        match self.flags.get("stage") {
            None => StageSpec::new(model, 0, model.num_layers),
            Some(spec) => {
                let parts: Vec<&str> = spec.split("..").collect();
                match parts.as_slice() {
                    [a, b] => match (a.parse(), b.parse()) {
                        (Ok(a), Ok(b)) => StageSpec::new(model, a, b),
                        _ => {
                            eprintln!("bad stage `{spec}` (expected A..B)");
                            usage()
                        }
                    },
                    _ => {
                        eprintln!("bad stage `{spec}` (expected A..B)");
                        usage()
                    }
                }
            }
        }
    }

    /// Assemble the request-execution engine every command shares, from
    /// the common flags. One construction path: the CLI, the `serve`
    /// daemon, and the tests all run the identical stacks.
    fn engine(&self, model_path: Option<String>) -> ServeEngine {
        let fault_rate = self.f64_flag("inject-fault-rate", 0.0);
        if !(0.0..=1.0).contains(&fault_rate) {
            eprintln!("--inject-fault-rate expects a probability in [0, 1], got {fault_rate}");
            exit(2);
        }
        let mut config = EngineConfig::new(self.platform(), self.platform_id(), self.seed());
        config.threads = self.usize_flag("threads", configured_threads());
        config.store = self.store();
        config.raw_cache = self.switches.iter().any(|s| s == "raw-cache");
        config.fault_rate = fault_rate;
        config.fault_seed = self.usize_flag("fault-seed", 0) as u64;
        config.retries = self.usize_flag("retry", 0);
        config.deadline = self
            .flags
            .contains_key("deadline-ms")
            .then(|| self.f64_flag("deadline-ms", 0.0) / 1000.0);
        config.breaker = BreakerConfig::tripping_after(self.usize_flag("breaker-trip", 5));
        config.model_path = model_path;
        match ServeEngine::new(config) {
            Ok(engine) => engine,
            Err(diags) => {
                // the same `P2xxx` rules `predtop-lint --stack` enforces
                eprintln!("internal error: the search service stack is misordered");
                eprint!("{diags}");
                exit(1);
            }
        }
    }
}

/// The stage-window request `profile` and `predict` share.
fn stage_request(stage: &StageSpec, mesh: MeshShape, config: ParallelConfig) -> api::ProfileSpec {
    api::ProfileSpec {
        model: stage.model,
        start: stage.start,
        end: stage.end,
        mesh,
        config,
    }
}

fn cmd_info() {
    println!("PredTOP — gray-box latency prediction for distributed DL training\n");
    for platform in [Platform::platform1(), Platform::platform2()] {
        println!(
            "{}: {} ({} CUDA cores, {:.0} GiB, {:.0} GB/s)",
            platform.name,
            platform.gpu.name,
            platform.gpu.cuda_cores,
            platform.gpu.memory_gib,
            platform.gpu.mem_bandwidth_gbs
        );
        for mesh in platform.table2_meshes() {
            let shape = MeshShape::new(mesh.num_nodes, mesh.gpus_per_node);
            let configs: Vec<String> = table3_configs(shape).iter().map(|c| c.remark()).collect();
            println!(
                "  mesh {} ({}): {}",
                mesh.table2_index().unwrap(),
                mesh.label(),
                configs.join(" / ")
            );
        }
    }
    println!();
    for model in [ModelSpec::gpt3_1p3b(8), ModelSpec::moe_2p6b(8)] {
        println!(
            "{}: {} layers, hidden {}, seq {}, vocab {}, ~{:.2}B params, {} stage candidates",
            model.kind.name(),
            model.num_layers,
            model.hidden,
            model.seq_len,
            model.vocab,
            model.approx_params() as f64 / 1e9,
            enumerate_stages(model).len()
        );
    }
}

fn cmd_profile(args: &Args) {
    let model = args.model();
    let stage = args.stage(model);
    let mesh = args.mesh();
    let config = args.config();
    if config.num_devices() != mesh.num_devices() {
        eprintln!(
            "config dp*mp = {} does not fill mesh {} ({} devices)",
            config.num_devices(),
            mesh.label(),
            mesh.num_devices()
        );
        exit(2);
    }
    let engine = args.engine(None);
    let graph = engine.profiler().stage_graph(&stage);
    let request = api::Request::Profile(stage_request(&stage, mesh, config));
    let (seconds, source) = match engine.handle(&request) {
        api::Response::Latency { seconds, source } => (seconds, source),
        api::Response::Error(e) => {
            eprintln!("profile failed: {}", e.message);
            exit(1)
        }
        other => {
            eprintln!("internal error: unexpected profile reply {other:?}");
            exit(1)
        }
    };
    let persist = engine.report().persist;
    match args.format() {
        OutputFormat::Text => {
            println!(
                "{} on {} mesh {} [{}]",
                stage.label(),
                args.platform().name,
                mesh.label(),
                config.remark()
            );
            println!(
                "  graph: {} nodes, {} edges",
                graph.len(),
                graph.num_edges()
            );
            println!(
                "  training-iteration latency: {seconds:.6} s (one micro-batch, source = {source})"
            );
            if let Some(p) = &persist {
                println!("  {}", p.summary());
            }
        }
        OutputFormat::Json => println!(
            "{{\"stage\":\"{}\",\"mesh\":\"{}\",\"dp\":{},\"mp\":{},\"latency_s\":{:.9},\"source\":\"{}\"{}}}",
            stage.label(),
            mesh.label(),
            config.dp,
            config.mp,
            seconds,
            source,
            persist
                .as_ref()
                .map(|p| flat_json_fields(p))
                .unwrap_or_default()
        ),
    }
}

/// Render a failed request for the terminal — the CLI's side of the
/// error redesign: every failure class gets its retryability and an
/// actionable hint.
fn die_api_error(e: &api::ErrorBody) -> ! {
    let class = if e.transient {
        "transient"
    } else {
        "permanent"
    };
    let hint = match e.kind {
        api::ErrorKind::BadRequest => "check the flags against `predtop help`",
        api::ErrorKind::Unavailable => "check the latency source (is the model file readable?)",
        api::ErrorKind::Unsupported => {
            "fit a predictor for this scenario, or query the simulator instead"
        }
        api::ErrorKind::Fault => "raise --retry so every query can outlive the injected faults",
        api::ErrorKind::Deadline => "raise --deadline-ms or drop the budget",
        api::ErrorKind::Shed => "raise --retry so re-attempts outlast the breaker cooldown",
    };
    eprintln!("search failed ({class}): {}", e.message);
    eprintln!("  hint: {hint}");
    exit(1)
}

fn cmd_search(args: &Args) {
    let model = args.model();
    let platform = args.platform();
    let microbatches = args.usize_flag("microbatches", 8);
    let engine = args.engine(None);
    let fault_rate = engine.config().fault_rate;
    let fault_seed = engine.config().fault_seed;
    let chaos =
        fault_rate > 0.0 || engine.config().retries > 0 || engine.config().deadline.is_some();
    eprintln!(
        "searching plans for {} on {} ({} candidates will be profiled)...",
        model.kind.name(),
        platform.name,
        enumerate_stages(model).len()
    );
    let checked = args.switches.iter().any(|s| s == "checked");
    if checked && (microbatches == 0 || !model.batch.is_multiple_of(microbatches)) {
        // P1301 rejects *every* candidate, so a checked search can never
        // find a covering partition — fail up front with the structured
        // diagnostic (and its machine-applicable fix) instead.
        let diags = predtop::analyze::plan_passes::divisibility_diags(
            &model,
            microbatches,
            ParallelConfig::new(1, 1),
            predtop::analyze::Span::Plan,
            None,
        );
        eprintln!(
            "checked search rejected up front: no candidate can satisfy \
             the micro-batch divisibility rule"
        );
        eprint!("{}", render_text(&diags));
        exit(2);
    }
    let request = api::Request::Search(api::SearchSpec {
        model,
        microbatches,
        imbalance_tolerance: None,
        checked,
    });
    let out = match engine.handle(&request) {
        api::Response::Search(out) => out,
        api::Response::Error(e) => die_api_error(&e),
        other => {
            eprintln!("internal error: unexpected search reply {other:?}");
            exit(1)
        }
    };
    let report = engine.report();
    match args.format() {
        OutputFormat::Text => {
            println!("optimal plan ({} stage-latency queries):", out.num_queries);
            for ps in &out.plan.stages {
                println!(
                    "  {} on {} [{}]",
                    ps.stage.label(),
                    ps.mesh.label(),
                    ps.config.remark()
                );
            }
            println!(
                "iteration latency: {:.6} s (B = {})",
                out.true_latency, out.plan.microbatches
            );
            if checked {
                println!(
                    "legality: {} candidates rejected before evaluation \
                     ({} by the liveness memory bound)",
                    out.num_rejected, out.num_rejected_memory
                );
            }
            // every installed sub-ledger renders through the one shared
            // `Ledger` surface the JSON and wire stats also use; the
            // fault-tolerance lines stay quiet unless chaos was asked for
            for ledger in report.ledgers() {
                let name = ledger.ledger_name();
                if matches!(name, "faults" | "retry" | "deadline") && !chaos {
                    continue;
                }
                if name == "faults" {
                    println!(
                        "{} (rate {fault_rate}, seed {fault_seed})",
                        ledger.summary()
                    );
                } else {
                    println!("{}", ledger.summary());
                }
            }
            let bill = engine.profiler().ledger().totals();
            println!(
                "profiling bill: {} stages, {:.0} simulated seconds",
                bill.stages_profiled, bill.profiling_s
            );
        }
        OutputFormat::Json => {
            let stages: Vec<String> = out
                .plan
                .stages
                .iter()
                .map(|ps| {
                    format!(
                        "{{\"start\":{},\"end\":{},\"nodes\":{},\"gpus_per_node\":{},\"dp\":{},\"mp\":{}}}",
                        ps.stage.start,
                        ps.stage.end,
                        ps.mesh.nodes,
                        ps.mesh.gpus_per_node,
                        ps.config.dp,
                        ps.config.mp
                    )
                })
                .collect();
            let mut svc_fields = String::new();
            if checked {
                svc_fields.push_str(&format!(
                    ",\"num_rejected\":{},\"num_rejected_memory\":{}",
                    out.num_rejected, out.num_rejected_memory
                ));
            }
            let mut chaos_fields = String::new();
            for ledger in report.ledgers() {
                let chaos_ledger = matches!(ledger.ledger_name(), "faults" | "retry" | "deadline");
                if chaos_ledger && !chaos {
                    continue;
                }
                let fields = flat_json_fields(ledger);
                if chaos_ledger {
                    chaos_fields.push_str(&fields);
                } else {
                    svc_fields.push_str(&fields);
                }
            }
            println!(
                "{{\"model\":\"{}\",\"iteration_latency_s\":{:.9},\"microbatches\":{},\
                 \"num_queries\":{},\"stages\":[{}]{svc_fields}{chaos_fields}}}",
                model.kind.name(),
                out.true_latency,
                out.plan.microbatches,
                out.num_queries,
                stages.join(",")
            );
        }
    }
    if let Some(path) = args.flags.get("plan-out") {
        let json = serde_json::to_string(&out.plan).unwrap_or_else(|e| {
            eprintln!("plan serialization failed: {e}");
            exit(1);
        });
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("could not write plan to {path}: {e}");
            exit(1);
        }
        eprintln!("plan written to {path}");
    }
}

fn cmd_fit(args: &Args) {
    let Some(out_path) = args.flags.get("o") else {
        eprintln!("fit requires -o FILE");
        usage()
    };
    let model = args.model();
    let mesh = args.mesh();
    let config = args.config();
    let platform = args.platform();
    let profiler = SimProfiler::new(platform.clone(), args.seed());

    let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
    if !args.switches.iter().any(|s| s == "scaled") {
        arch = ArchConfig::paper(ModelKind::DagTransformer);
    }
    let stages = sample_stages(model, args.usize_flag("stages", 24), 4, args.seed());
    eprintln!(
        "profiling {} stages on {} {} [{}]...",
        stages.len(),
        platform.name,
        mesh.label(),
        config.remark()
    );
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, arch.pe_dim())
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.8, args.seed());
    let mut net = arch.build(args.seed());
    eprintln!(
        "training DAG Transformer ({} layers x {})...",
        arch.layers, arch.hidden
    );
    let (scaler, report) = predtop::gnn::train::train(
        net.as_mut(),
        &ds,
        &split,
        &TrainConfig::quick(args.usize_flag("epochs", 60)),
    );
    let mre = predtop::gnn::train::eval_mre(net.as_ref(), &scaler, &ds, &split.test);
    let predictor = TrainedPredictor { model: net, scaler };
    persist::save_to_file(out_path, arch, &predictor).unwrap_or_else(|e| {
        eprintln!("save failed: {e}");
        exit(1);
    });
    println!(
        "trained in {:.1}s ({} epochs), held-out MRE {:.2}%, saved to {out_path}",
        report.train_seconds, report.epochs_run, mre
    );
}

fn cmd_predict(args: &Args) {
    let Some(model_path) = args.flags.get("m") else {
        eprintln!("predict requires -m FILE");
        usage()
    };
    let model = args.model();
    let stage = args.stage(model);
    let mesh = args.mesh();
    let config = args.config();
    // the engine wires the predictor → analytic fallback chain: a
    // missing or undecodable model file degrades the answer instead of
    // aborting the command
    let engine = args.engine(Some(model_path.clone()));
    let request = api::Request::Predict(stage_request(&stage, mesh, config));
    let (seconds, source) = match engine.handle(&request) {
        api::Response::Latency { seconds, source } => (seconds, source),
        api::Response::Error(e) => {
            eprintln!("prediction failed: {}", e.message);
            exit(1)
        }
        other => {
            eprintln!("internal error: unexpected predict reply {other:?}");
            exit(1)
        }
    };
    let persist = engine.predict_report().persist;
    match args.format() {
        OutputFormat::Text => {
            println!(
                "{}: predicted latency {seconds:.6} s (source = {source})",
                stage.label()
            );
            if let Some(p) = &persist {
                println!("{}", p.summary());
            }
        }
        OutputFormat::Json => println!(
            "{{\"stage\":\"{}\",\"latency_s\":{:.9},\"source\":\"{}\"{}}}",
            stage.label(),
            seconds,
            source,
            persist
                .as_ref()
                .map(|p| flat_json_fields(p))
                .unwrap_or_default()
        ),
    }
}

/// `predtop serve` — the long-lived daemon: a framed wire protocol over
/// TCP and/or a Unix socket, every request executed by the same
/// [`ServeEngine`] the CLI commands use (DESIGN.md §14).
fn cmd_serve(args: &Args) {
    let listen = args.flags.get("listen").cloned();
    let socket = args.flags.get("socket").cloned();
    if listen.is_none() && socket.is_none() {
        eprintln!("serve requires --listen HOST:PORT and/or --socket PATH");
        usage();
    }
    let engine = args.engine(args.flags.get("m").cloned());
    let mut config = wire::ServerConfig::default();
    if args.flags.contains_key("max-connections") {
        config.max_connections = args
            .usize_flag("max-connections", config.max_connections)
            .max(1);
    }
    // SIGINT/SIGTERM request the same graceful drain a Shutdown frame
    // does: in-flight requests finish, new connections are refused
    wire::signal::install_drain_signals();
    let server = wire::Server::bind(listen.as_deref(), socket.as_deref().map(Path::new), config)
        .unwrap_or_else(|e| {
            eprintln!("serve bind failed: {e}");
            exit(1)
        });
    if let Some(addr) = server.tcp_addr() {
        eprintln!("serving on tcp {addr}");
    }
    if let Some(path) = &socket {
        eprintln!("serving on unix socket {path}");
    }
    let stats = server.run(|req| engine.handle(req)).unwrap_or_else(|e| {
        eprintln!("serve failed: {e}");
        exit(1)
    });
    eprintln!(
        "drained clean: {} request(s) served, {} shed, {} connection(s)",
        engine.served(),
        engine.shed(),
        stats.connections
    );
}

/// `predtop store stats|verify|gc --store DIR` — the object-store
/// maintenance surface (DESIGN.md §13).
fn cmd_store(args: &Args) {
    let Some(action) = args.action.as_deref() else {
        eprintln!("store requires an action: stats | verify | gc");
        usage()
    };
    let Some(store) = args.store() else {
        eprintln!("store requires --store DIR");
        usage()
    };
    let dir = &args.flags["store"];
    match action {
        "stats" => {
            let s = store.stats().unwrap_or_else(|e| {
                eprintln!("store stats failed: {e}");
                exit(1)
            });
            println!("object store at {dir} (generation {}):", s.generation);
            println!(
                "  loose:  {} objects, {} bytes",
                s.loose_objects, s.loose_bytes
            );
            println!(
                "  packed: {} objects, {} bytes in {} pack file(s)",
                s.packed_objects, s.pack_bytes, s.pack_files
            );
        }
        "verify" => {
            let report = store.verify().unwrap_or_else(|e| {
                eprintln!("store verify failed: {e}");
                exit(1)
            });
            println!(
                "verified {} objects ({} loose, {} packed): {}",
                report.checked,
                report.loose,
                report.packed,
                if report.is_clean() {
                    "clean"
                } else {
                    "CORRUPT"
                }
            );
            if !report.is_clean() {
                for (digest, reason) in &report.corrupt {
                    eprintln!("  corrupt {}: {reason}", digest.to_hex());
                }
                exit(1);
            }
        }
        "gc" => {
            let r = store.gc().unwrap_or_else(|e| {
                eprintln!("store gc failed: {e}");
                exit(1)
            });
            println!(
                "gc generation {}: packed {} objects ({} duplicates folded, \
                 {} corrupt dropped)",
                r.generation, r.packed, r.duplicates_folded, r.corrupt_dropped
            );
            println!(
                "  removed {} loose file(s) and {} prior pack(s); \
                 {} -> {} bytes",
                r.loose_removed, r.packs_removed, r.bytes_before, r.bytes_after
            );
        }
        other => {
            eprintln!("unknown store action `{other}` (stats|verify|gc)");
            usage()
        }
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "info" => cmd_info(),
        "profile" => cmd_profile(&args),
        "search" => cmd_search(&args),
        "fit" => cmd_fit(&args),
        "predict" => cmd_predict(&args),
        "store" => cmd_store(&args),
        "serve" => cmd_serve(&args),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
