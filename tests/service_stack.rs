//! Acceptance contract of the `LatencyService` middleware refactor: a
//! checked search driven through an explicitly assembled
//! `ServiceBuilder` stack is **bit-identical** to the legacy
//! provider-based entry point, for both benchmark model families and at
//! multiple worker-pool sizes — and the stack's memoize / fallback
//! layers report honest accounting while staying transparent.

use predtop::prelude::*;

fn gpt3() -> ModelSpec {
    // batch 4 over 2 micro-batches: the static filter has real work to
    // do (dp=4 and mp=4 candidates are illegal) without rejecting all
    let mut m = ModelSpec::gpt3_1p3b(4);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 128;
    m.num_layers = 6;
    m
}

fn moe() -> ModelSpec {
    let mut m = ModelSpec::moe_2p6b(4);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 128;
    m.num_layers = 6;
    if let Some(moe) = m.moe.as_mut() {
        moe.num_experts = 4;
        moe.expert_hidden = 64;
    }
    m
}

fn opts() -> InterStageOptions {
    InterStageOptions {
        microbatches: 2,
        imbalance_tolerance: None,
    }
}

#[test]
fn service_stack_checked_search_is_bit_identical_to_legacy() {
    let cluster = MeshShape::new(2, 2);
    for (name, model) in [("gpt3", gpt3()), ("moe", moe())] {
        for threads in [1usize, 4] {
            // legacy provider path
            let profiler = SimProfiler::new(Platform::platform2(), 6);
            let legacy = predtop::core::search_plan_checked_with_threads(
                model,
                cluster,
                &profiler,
                &profiler,
                opts(),
                threads,
            );

            // the same search through a full middleware stack
            let profiler2 = SimProfiler::new(Platform::platform2(), 6);
            let legality = search_legality(model, &profiler2, opts());
            let stack = ServiceBuilder::new(&profiler2)
                .memoize()
                .batched(threads)
                .finish();
            let out =
                search_plan_service(model, cluster, &stack, &profiler2, opts(), Some(&legality))
                    .expect("the simulator stack serves every scenario");

            assert_eq!(out.plan, legacy.plan, "{name}@{threads}: plan drifted");
            assert_eq!(
                out.estimated_latency.to_bits(),
                legacy.estimated_latency.to_bits(),
                "{name}@{threads}: estimated latency drifted"
            );
            assert_eq!(
                out.true_latency.to_bits(),
                legacy.true_latency.to_bits(),
                "{name}@{threads}: true latency drifted"
            );
            assert_eq!(out.num_queries, legacy.num_queries);
            assert_eq!(out.num_rejected, legacy.num_rejected);

            // memoize accounting: every search query hit the layer, and
            // within one search every candidate is distinct
            let report = out.service.expect("memoized stack reports");
            let cache = report.cache.expect("memoize layer installed");
            assert_eq!(
                cache.queries(),
                out.num_queries,
                "{name}@{threads}: cache accounting incomplete"
            );
            assert_eq!(cache.misses, out.num_queries);
            assert_eq!(cache.hits, 0);
        }
    }
}

#[test]
fn fallback_layer_attributes_sources_and_stays_deterministic() {
    let model = gpt3();
    let cluster = MeshShape::new(1, 2);
    let profiler = SimProfiler::new(Platform::platform1(), 6);

    // the honest path: simulator serves, fallback untouched
    let healthy = ServiceBuilder::new(&profiler)
        .or_fallback_to(&profiler)
        .finish();
    // the degraded path: a dead predictor falls back to the simulator
    let degraded = ServiceBuilder::new(Unavailable::new("predictor", "model file lost"))
        .or_fallback_to(&profiler)
        .batched(4)
        .finish();

    let healthy_out =
        search_plan_service(model, cluster, &healthy, &profiler, opts(), None).unwrap();
    let degraded_out =
        search_plan_service(model, cluster, &degraded, &profiler, opts(), None).unwrap();

    // degradation is invisible in the outcome (same base truth)...
    assert_eq!(healthy_out.plan, degraded_out.plan);
    assert_eq!(
        healthy_out.estimated_latency.to_bits(),
        degraded_out.estimated_latency.to_bits()
    );

    // ...but fully visible in the attribution
    let h = healthy_out.service.expect("fallback stack reports");
    let hstats = h.fallback.expect("fallback layer installed");
    assert_eq!(hstats.primary_served, healthy_out.num_queries);
    assert_eq!(hstats.fallback_served, 0);

    let d = degraded_out.service.expect("fallback stack reports");
    let dstats = d.fallback.expect("fallback layer installed");
    assert_eq!(dstats.primary_served, 0);
    assert_eq!(dstats.fallback_served, degraded_out.num_queries);

    // per-query attribution names the service that actually answered
    let stage = StageSpec::new(model, 0, 2);
    let q = LatencyQuery::new(stage, MeshShape::new(1, 1), ParallelConfig::SERIAL);
    assert_eq!(healthy.query(&q).unwrap().source, "simulator");
    assert_eq!(degraded.query(&q).unwrap().source, "simulator");
}

#[test]
fn exhausted_fallback_chain_surfaces_the_error() {
    let model = gpt3();
    let cluster = MeshShape::new(1, 2);
    let profiler = SimProfiler::new(Platform::platform1(), 6);
    let dead = ServiceBuilder::new(Unavailable::new("predictor", "gone"))
        .or_fallback_to(Unavailable::new("analytic", "also gone"))
        .finish();
    let err = search_plan_service(model, cluster, &dead, &profiler, opts(), None)
        .expect_err("a dead chain cannot serve a search");
    assert_eq!(err.source(), "analytic", "the last hop owns the error");
}
