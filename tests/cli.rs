//! Integration tests for the `predtop` command-line binary.

use std::process::Command;

fn predtop() -> Command {
    Command::new(env!("CARGO_BIN_EXE_predtop"))
}

/// Whether the ambient `serde_json` can actually deserialize. Under the
/// offline stub (sandboxed builds) every saved model file is a
/// placeholder that cannot be loaded back, so `predict` legitimately
/// degrades to the analytic fallback.
fn json_roundtrip_supported() -> bool {
    serde_json::from_str::<u32>("1").is_ok()
}

#[test]
fn info_lists_platforms_and_benchmarks() {
    let out = predtop().arg("info").output().expect("run predtop info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("NVIDIA A40"));
    assert!(text.contains("NVIDIA RTX A5500"));
    assert!(text.contains("GPT-3"));
    assert!(text.contains("300 stage candidates"));
    assert!(text.contains("4 way Model parallel"));
}

#[test]
fn profile_reports_latency() {
    let out = predtop()
        .args([
            "profile", "--scaled", "--stage", "2..4", "--mesh", "1x2", "--mp", "2",
        ])
        .output()
        .expect("run predtop profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GPT-3[2..4)"));
    assert!(text.contains("2 way Model parallel"));
    assert!(text.contains("training-iteration latency"));
}

#[test]
fn profile_rejects_config_mesh_mismatch() {
    let out = predtop()
        .args(["profile", "--scaled", "--mesh", "1x1", "--mp", "2"])
        .output()
        .expect("run predtop profile");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not fill"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = predtop().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

/// Golden `--help` output: the full flag reference, verbatim. Update
/// this string deliberately whenever a flag is added or renamed — it is
/// the CLI's compatibility contract.
const GOLDEN_HELP: &str = "usage: predtop <command> [options]

commands:
  info                       list platforms, meshes, and benchmarks
  profile                    simulate one stage's training latency
  search                     optimize a full pipeline plan
  fit -o FILE                fit a DAG-Transformer predictor, save JSON
  predict -m FILE            predict a stage latency with a saved model
                             (falls back to the analytic baseline if the
                             model cannot be loaded; see `source = ...`)
  store stats|verify|gc      inspect, verify, or compact the object
                             store named by --store DIR
  serve                      run the framed wire-protocol daemon on
                             --listen (TCP) and/or --socket (Unix);
                             drains gracefully on SIGTERM or a
                             Shutdown frame
  help                       print this help (also --help / -h)

options:
  --model gpt3|moe           benchmark (default gpt3)
  --platform 1|2             hardware platform (default 2)
  --mesh NxG                 sub-mesh, e.g. 1x2 (default 1x1)
  --dp D --mp M              parallelism config (default 1,1)
  --stage A..B               layer range (default whole model)
  --microbatches B           pipeline micro-batches (default 8)
  --threads T                (search/serve) evaluation worker threads
  --format text|json         output format (default text)
  --plan-out FILE            (search) write the chosen plan as JSON
  --store DIR                persist latency replies and plan/outcome
                             snapshots in a content-addressed object
                             store at DIR, so a second identical run
                             is served from disk (profile/search/
                             predict/serve)
  --raw-cache                (search/serve) memoize on raw query
                             identity instead of structural equivalence
                             classes
  --checked                  (search) reject statically illegal
                             candidates (sharding divisibility + the
                             liveness-tight memory bound) before any
                             latency evaluation
  --scaled                   shrink the benchmark for quick runs
  --seed S                   simulator seed (default 7)

fault tolerance (search, serve):
  --inject-fault-rate R      inject transient faults at rate R in [0,1]
  --fault-seed S             fault-injection hash seed (default 0)
  --retry N                  re-attempt transient failures up to N times
  --deadline-ms MS           per-query latency budget in milliseconds

serving (serve):
  --listen HOST:PORT         accept framed requests over TCP
  --socket PATH              accept framed requests on a Unix socket
  -m FILE                    saved predictor backing Predict requests
  --max-connections N        concurrent-connection ceiling
  --breaker-trip N           admission breaker trips after N failures
                             and sheds requests until its cooldown
                             probe succeeds (default 5)
";

#[test]
fn help_matches_the_golden_reference() {
    for invocation in [&["help"][..], &["--help"][..], &["search", "-h"][..]] {
        let out = predtop().args(invocation).output().expect("run help");
        assert!(out.status.success(), "help exits 0 for {invocation:?}");
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            GOLDEN_HELP,
            "help text drifted from the golden reference ({invocation:?})"
        );
    }
}

#[test]
fn every_subcommand_answers_help_with_exit_zero() {
    for command in [
        "info", "profile", "search", "fit", "predict", "store", "serve",
    ] {
        let out = predtop()
            .args([command, "--help"])
            .output()
            .expect("run subcommand --help");
        assert!(
            out.status.success(),
            "`predtop {command} --help` must exit 0: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            GOLDEN_HELP,
            "`predtop {command} --help` drifted from the golden reference"
        );
    }
}

#[test]
fn fit_then_predict_roundtrip() {
    let model_path = std::env::temp_dir().join("predtop_cli_test_model.json");
    let _ = std::fs::remove_file(&model_path);
    let out = predtop()
        .args([
            "fit",
            "--scaled",
            "--mesh",
            "1x1",
            "--stages",
            "12",
            "--epochs",
            "6",
            "-o",
            model_path.to_str().unwrap(),
        ])
        .output()
        .expect("run predtop fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model_path.exists(), "model file written");

    let out = predtop()
        .args([
            "predict",
            "--scaled",
            "--stage",
            "1..3",
            "-m",
            model_path.to_str().unwrap(),
        ])
        .output()
        .expect("run predtop predict");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted latency"), "{text}");
    // fallback attribution: a loadable model answers as the predictor;
    // when the environment cannot round-trip JSON the chain degrades to
    // the analytic baseline — and says so
    if json_roundtrip_supported() {
        assert!(text.contains("source = predictor"), "{text}");
    } else {
        assert!(text.contains("source = analytic"), "{text}");
    }
    std::fs::remove_file(model_path).ok();
}

#[test]
fn predict_with_missing_model_falls_back_to_analytic() {
    let out = predtop()
        .args([
            "predict",
            "--scaled",
            "--stage",
            "1..3",
            "-m",
            "/nonexistent/predtop-missing-model.json",
        ])
        .output()
        .expect("run predtop predict");
    // the fallback chain absorbs the load failure: exit 0, answer served
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted latency"), "{text}");
    assert!(text.contains("source = analytic"), "{text}");
    // and the degradation is reported, not hidden
    assert!(String::from_utf8_lossy(&out.stderr).contains("model load failed"));
}

#[test]
fn search_finds_a_plan() {
    let out = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
        ])
        .output()
        .expect("run predtop search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal plan"));
    assert!(text.contains("iteration latency"));
    assert!(text.contains("profiling bill"));
    // the service stack's accounting is part of the report
    assert!(text.contains("memoize:"), "{text}");
    assert!(text.contains("service:"), "{text}");
}

#[test]
fn search_raw_cache_switch_changes_only_the_accounting() {
    let structural = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
        ])
        .output()
        .expect("run structural predtop search");
    assert!(structural.status.success());
    let structural = String::from_utf8_lossy(&structural.stdout);
    assert!(structural.contains("structural keys:"), "{structural}");

    let raw = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
            "--raw-cache",
        ])
        .output()
        .expect("run raw-cache predtop search");
    assert!(
        raw.status.success(),
        "{}",
        String::from_utf8_lossy(&raw.stderr)
    );
    let raw = String::from_utf8_lossy(&raw.stdout);
    // raw-identity keys never dedup within one search, and the
    // interner line disappears with them
    assert!(raw.contains("memoize: 0 hits"), "{raw}");
    assert!(!raw.contains("structural keys:"), "{raw}");
    // both runs land on the identical plan and latency
    let plan_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("GPT-3[") || l.contains("iteration latency"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(plan_lines(&structural), plan_lines(&raw));
}

#[test]
fn search_checked_reports_legality_and_keeps_the_plan() {
    // the scaled benchmark has batch 2, so 2 micro-batches divide evenly
    let plain = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "2",
        ])
        .output()
        .expect("run plain predtop search");
    assert!(plain.status.success());
    let plain = String::from_utf8_lossy(&plain.stdout);
    assert!(!plain.contains("legality:"), "{plain}");

    let checked = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "2",
            "--checked",
        ])
        .output()
        .expect("run checked predtop search");
    assert!(
        checked.status.success(),
        "{}",
        String::from_utf8_lossy(&checked.stderr)
    );
    let checked = String::from_utf8_lossy(&checked.stdout);
    assert!(checked.contains("legality:"), "{checked}");
    assert!(
        checked.contains("by the liveness memory bound"),
        "{checked}"
    );
    // static pruning never changes the chosen plan or its latency
    let plan_lines = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("GPT-3[") || l.contains("iteration latency"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(plan_lines(&plain), plan_lines(&checked));
    // and the JSON report carries the counters
    let json = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "2",
            "--checked",
            "--format",
            "json",
        ])
        .output()
        .expect("run checked json predtop search");
    assert!(json.status.success());
    let json = String::from_utf8_lossy(&json.stdout);
    assert!(json.contains("\"num_rejected\":"), "{json}");
    assert!(json.contains("\"num_rejected_memory\":"), "{json}");
}

#[test]
fn search_checked_rejects_indivisible_microbatches_up_front() {
    // batch 2 cannot split into 4 micro-batches: P1301 rejects every
    // candidate, so the checked search must exit 2 with the structured
    // diagnostic instead of panicking mid-search
    let out = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
            "--checked",
        ])
        .output()
        .expect("run indivisible checked predtop search");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("P1301"), "{stderr}");
    assert!(stderr.contains("does not divide"), "{stderr}");
    assert!(stderr.contains("fix:"), "{stderr}");
}

#[test]
fn search_with_injected_faults_recovers_and_reports() {
    let baseline = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
            "--threads",
            "2",
            "--format",
            "json",
        ])
        .output()
        .expect("run clean predtop search");
    assert!(baseline.status.success());

    let out = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
            "--threads",
            "2",
            "--format",
            "json",
            "--inject-fault-rate",
            "0.2",
            "--retry",
            "3",
        ])
        .output()
        .expect("run chaos predtop search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let clean = String::from_utf8_lossy(&baseline.stdout);
    let chaos = String::from_utf8_lossy(&out.stdout);
    // the chaos run found the identical plan (the JSON line extends the
    // clean one with the chaos counters)
    let clean_core = clean.trim_end().trim_end_matches('}');
    assert!(
        chaos.starts_with(clean_core),
        "chaos plan diverged:\n  clean: {clean}\n  chaos: {chaos}"
    );
    assert!(chaos.contains("\"injected_faults\":"), "{chaos}");
    assert!(chaos.contains("\"retries\":"), "{chaos}");
    // with rate 0.2 over a hundred-odd queries, some fault was injected
    assert!(!chaos.contains("\"injected_faults\":0,"), "{chaos}");
}

#[test]
fn search_with_zero_deadline_reports_a_structured_error() {
    let out = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
            "--deadline-ms",
            "0",
        ])
        .output()
        .expect("run predtop search");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("search failed (permanent)"), "{err}");
    assert!(err.contains("deadline exceeded"), "{err}");
    assert!(err.contains("hint:"), "{err}");
}

#[test]
fn search_rejects_an_out_of_range_fault_rate() {
    let out = predtop()
        .args(["search", "--scaled", "--inject-fault-rate", "1.5"])
        .output()
        .expect("run predtop search");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("probability"));
}

/// A fresh per-test store directory under the system temp dir.
fn fresh_store_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("predtop-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_backed_search_serves_the_second_run_from_disk() {
    let dir = fresh_store_dir("warm-search");
    let run = || {
        predtop()
            .args([
                "search",
                "--scaled",
                "--platform",
                "1",
                "--microbatches",
                "4",
                "--format",
                "json",
                "--store",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("run store-backed predtop search")
    };
    let cold = run();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold = String::from_utf8_lossy(&cold.stdout).into_owned();
    // the cold run saw an empty store: every distinct structure missed
    assert!(cold.contains("\"store_disk_hits\":0,"), "{cold}");
    assert!(!cold.contains("\"store_disk_misses\":0,"), "{cold}");

    let warm = run();
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm = String::from_utf8_lossy(&warm.stdout).into_owned();
    // the warm run recomputed nothing and wrote nothing new
    assert!(warm.contains("\"store_disk_misses\":0,"), "{warm}");
    assert!(warm.contains("\"store_writes\":0"), "{warm}");
    assert!(!warm.contains("\"store_disk_hits\":0,"), "{warm}");

    // bit-identical results: the JSON lines differ only in the store
    // counters, so compare everything around them
    let strip = |s: &str| -> String {
        s.split(',')
            .filter(|f| !f.contains("\"store_"))
            .collect::<Vec<_>>()
            .join(",")
    };
    assert_eq!(strip(&cold), strip(&warm), "warm plan diverged from cold");

    // the maintenance surface sees the objects the runs wrote
    let stats = predtop()
        .args(["store", "stats", "--store", dir.to_str().unwrap()])
        .output()
        .expect("run predtop store stats");
    assert!(stats.status.success());
    let stats = String::from_utf8_lossy(&stats.stdout);
    assert!(stats.contains("object store at"), "{stats}");
    assert!(!stats.contains("loose:  0 objects"), "{stats}");

    let verify = predtop()
        .args(["store", "verify", "--store", dir.to_str().unwrap()])
        .output()
        .expect("run predtop store verify");
    assert!(
        verify.status.success(),
        "{}",
        String::from_utf8_lossy(&verify.stderr)
    );
    assert!(String::from_utf8_lossy(&verify.stdout).contains("clean"));

    // gc packs the loose objects; the store stays clean and warm
    let gc = predtop()
        .args(["store", "gc", "--store", dir.to_str().unwrap()])
        .output()
        .expect("run predtop store gc");
    assert!(
        gc.status.success(),
        "{}",
        String::from_utf8_lossy(&gc.stderr)
    );
    let gc = String::from_utf8_lossy(&gc.stdout);
    assert!(gc.contains("gc generation"), "{gc}");

    let verify = predtop()
        .args(["store", "verify", "--store", dir.to_str().unwrap()])
        .output()
        .expect("run predtop store verify after gc");
    assert!(verify.status.success());
    let packed = run();
    assert!(packed.status.success());
    let packed = String::from_utf8_lossy(&packed.stdout).into_owned();
    assert!(packed.contains("\"store_disk_misses\":0,"), "{packed}");
    assert_eq!(strip(&cold), strip(&packed), "post-gc plan diverged");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_backed_profile_hits_disk_on_the_second_run() {
    let dir = fresh_store_dir("warm-profile");
    let run = || {
        predtop()
            .args([
                "profile",
                "--scaled",
                "--stage",
                "2..4",
                "--mesh",
                "1x2",
                "--mp",
                "2",
                "--store",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("run store-backed predtop profile")
    };
    let cold = run();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold = String::from_utf8_lossy(&cold.stdout).into_owned();
    assert!(
        cold.contains("store: 0 disk hits / 1 disk misses"),
        "{cold}"
    );
    let warm = run();
    assert!(warm.status.success());
    let warm = String::from_utf8_lossy(&warm.stdout).into_owned();
    assert!(
        warm.contains("store: 1 disk hits / 0 disk misses"),
        "{warm}"
    );
    // identical latency line, served from disk this time
    let latency = |s: &str| -> String {
        s.lines()
            .find(|l| l.contains("training-iteration latency"))
            .unwrap()
            .split("(")
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(latency(&cold), latency(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_command_requires_an_action_and_a_directory() {
    let out = predtop().arg("store").output().expect("run predtop store");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("stats | verify | gc"));

    let out = predtop()
        .args(["store", "stats"])
        .output()
        .expect("run predtop store stats without dir");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store DIR"));

    let dir = fresh_store_dir("bad-action");
    let out = predtop()
        .args(["store", "frobnicate", "--store", dir.to_str().unwrap()])
        .output()
        .expect("run predtop store frobnicate");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown store action"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn search_plan_out_writes_a_plan_file() {
    let plan_path = std::env::temp_dir().join("predtop_cli_test_plan.json");
    let _ = std::fs::remove_file(&plan_path);
    let out = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
            "--plan-out",
            plan_path.to_str().unwrap(),
        ])
        .output()
        .expect("run predtop search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&plan_path).expect("plan file written");
    assert!(!body.is_empty());
    if json_roundtrip_supported() {
        let plan: predtop::parallel::PipelinePlan =
            serde_json::from_str(&body).expect("plan file parses back");
        assert!(!plan.stages.is_empty());
    }
    std::fs::remove_file(plan_path).ok();
}
