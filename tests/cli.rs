//! Integration tests for the `predtop` command-line binary.

use std::process::Command;

fn predtop() -> Command {
    Command::new(env!("CARGO_BIN_EXE_predtop"))
}

#[test]
fn info_lists_platforms_and_benchmarks() {
    let out = predtop().arg("info").output().expect("run predtop info");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("NVIDIA A40"));
    assert!(text.contains("NVIDIA RTX A5500"));
    assert!(text.contains("GPT-3"));
    assert!(text.contains("300 stage candidates"));
    assert!(text.contains("4 way Model parallel"));
}

#[test]
fn profile_reports_latency() {
    let out = predtop()
        .args([
            "profile", "--scaled", "--stage", "2..4", "--mesh", "1x2", "--mp", "2",
        ])
        .output()
        .expect("run predtop profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GPT-3[2..4)"));
    assert!(text.contains("2 way Model parallel"));
    assert!(text.contains("training-iteration latency"));
}

#[test]
fn profile_rejects_config_mesh_mismatch() {
    let out = predtop()
        .args(["profile", "--scaled", "--mesh", "1x1", "--mp", "2"])
        .output()
        .expect("run predtop profile");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("does not fill"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = predtop().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn fit_then_predict_roundtrip() {
    let model_path = std::env::temp_dir().join("predtop_cli_test_model.json");
    let _ = std::fs::remove_file(&model_path);
    let out = predtop()
        .args([
            "fit",
            "--scaled",
            "--mesh",
            "1x1",
            "--stages",
            "12",
            "--epochs",
            "6",
            "-o",
            model_path.to_str().unwrap(),
        ])
        .output()
        .expect("run predtop fit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model_path.exists(), "model file written");

    let out = predtop()
        .args([
            "predict",
            "--scaled",
            "--stage",
            "1..3",
            "-m",
            model_path.to_str().unwrap(),
        ])
        .output()
        .expect("run predtop predict");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted latency"), "{text}");
    std::fs::remove_file(model_path).ok();
}

#[test]
fn search_finds_a_plan() {
    let out = predtop()
        .args([
            "search",
            "--scaled",
            "--platform",
            "1",
            "--microbatches",
            "4",
        ])
        .output()
        .expect("run predtop search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimal plan"));
    assert!(text.contains("iteration latency"));
    assert!(text.contains("profiling bill"));
}
