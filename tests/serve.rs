//! Integration tests for the `predtop serve` wire protocol: an
//! in-process [`wire::Server`] on a Unix socket, driven by real
//! [`wire::Client`] connections, executing requests through the same
//! [`ServeEngine`] the CLI uses.
#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

use predtop::prelude::*;

/// The CLI's `--scaled` GPT-3 benchmark, replicated so wire replies can
/// be compared against direct engine calls on identical inputs.
fn scaled_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 128;
    m.hidden = 128;
    m.num_heads = 8;
    m.vocab = 2048;
    m.num_layers = 8;
    m
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(Platform::platform2(), "2", 7)
}

fn profile_spec(start: usize) -> api::ProfileSpec {
    api::ProfileSpec {
        model: scaled_model(),
        start,
        end: start + 2,
        mesh: MeshShape::new(1, 1),
        config: ParallelConfig::new(1, 1),
    }
}

/// A per-test socket path that cannot collide across the test threads
/// sharing this process.
fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("predtop-serve-{name}-{}.sock", std::process::id()))
}

fn connect(path: &PathBuf) -> wire::Client<UnixStream> {
    wire::Client::new(UnixStream::connect(path).expect("connect to test server"))
}

#[test]
fn four_concurrent_clients_get_replies_bit_identical_to_direct_calls() {
    let path = socket_path("bit-identical");
    let engine = ServeEngine::new(engine_config()).expect("build served engine");
    let direct = ServeEngine::new(engine_config()).expect("build direct engine");
    let server = wire::Server::bind(None, Some(&path), wire::ServerConfig::default())
        .expect("bind unix server");

    let requests = |client: usize| {
        vec![
            api::Request::Profile(profile_spec(client)),
            api::Request::Search(api::SearchSpec {
                model: scaled_model(),
                microbatches: 2,
                imbalance_tolerance: None,
                checked: false,
            }),
            api::Request::Predict(profile_spec(client)),
        ]
    };

    let (replies, stats) = std::thread::scope(|scope| {
        let srv = scope.spawn(|| server.run(|req| engine.handle(req)).expect("server run"));
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let path = &path;
                scope.spawn(move || {
                    let mut client = connect(path);
                    requests(c)
                        .iter()
                        .map(|req| client.call(req).expect("wire call"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let replies: Vec<Vec<api::Response>> =
            clients.into_iter().map(|c| c.join().unwrap()).collect();

        // the live stats surface answers over the same connection kind
        let mut tail = connect(&path);
        match tail.call(&api::Request::Stats).expect("stats call") {
            api::Response::Stats(report) => {
                assert_eq!(report.served, 12, "4 clients x 3 requests all served");
                assert_eq!(report.shed, 0);
                assert!(!report.draining);
                assert!(
                    report.ledgers.iter().any(|l| l.name == "breaker"),
                    "admission ledger always present in wire stats"
                );
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // Shutdown is acknowledged and ends the server
        match tail.call(&api::Request::Shutdown).expect("shutdown call") {
            api::Response::Bye => {}
            other => panic!("expected Bye, got {other:?}"),
        }
        (replies, srv.join().unwrap())
    });

    assert_eq!(stats.connections, 5, "4 clients + the stats/shutdown tail");
    // every wire reply is bit-identical (canonical encoding compare) to
    // the same request executed directly against an identical engine
    for (c, client_replies) in replies.iter().enumerate() {
        for (req, wire_reply) in requests(c).iter().zip(client_replies) {
            let direct_reply = direct.handle(req);
            assert_eq!(
                api::encode_response(wire_reply),
                api::encode_response(&direct_reply),
                "client {c} reply diverged for {req:?}"
            );
        }
    }
}

#[test]
fn drain_finishes_in_flight_connections_and_refuses_new_ones() {
    let path = socket_path("drain");
    let engine = ServeEngine::new(engine_config()).expect("build engine");
    let server =
        wire::Server::bind(None, Some(&path), wire::ServerConfig::default()).expect("bind");
    let drain = server.drain_handle();

    std::thread::scope(|scope| {
        let srv = scope.spawn(|| server.run(|req| engine.handle(req)).expect("server run"));

        let mut client = connect(&path);
        match client.call(&api::Request::Profile(profile_spec(0))) {
            Ok(api::Response::Latency { seconds, .. }) => assert!(seconds > 0.0),
            other => panic!("expected Latency, got {other:?}"),
        }

        // begin drain (as SIGTERM would) while the connection is live
        drain.store(true, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(200));

        // the in-flight connection still gets one full answer...
        match client.call(&api::Request::Profile(profile_spec(0))) {
            Ok(api::Response::Latency { .. }) => {}
            other => panic!("draining server dropped an in-flight request: {other:?}"),
        }
        // ...and is then closed deterministically
        assert!(
            client.call(&api::Request::Stats).is_err(),
            "connection must close after the post-drain response"
        );

        let stats = srv.join().unwrap();
        assert_eq!(stats.connections, 1);
        // with the listener closed and the socket file gone, new
        // connections are refused
        assert!(
            UnixStream::connect(&path).is_err(),
            "drained server must refuse new connections"
        );
    });
}

#[test]
fn admission_control_sheds_over_the_wire_once_the_breaker_trips() {
    let path = socket_path("breaker");
    let mut config = engine_config();
    config.fault_rate = 1.0; // every query fails at the fault layer
    config.breaker = BreakerConfig::tripping_after(2);
    let engine = ServeEngine::new(config).expect("build faulty engine");
    let server =
        wire::Server::bind(None, Some(&path), wire::ServerConfig::default()).expect("bind");

    std::thread::scope(|scope| {
        let srv = scope.spawn(|| server.run(|req| engine.handle(req)).expect("server run"));
        let mut client = connect(&path);

        // two failures reach the stack and trip the breaker...
        for attempt in 0..2 {
            match client.call(&api::Request::Profile(profile_spec(0))) {
                Ok(api::Response::Error(body)) => {
                    assert_eq!(body.kind, api::ErrorKind::Fault, "attempt {attempt}");
                    assert!(body.transient);
                }
                other => panic!("expected an injected fault, got {other:?}"),
            }
        }
        // ...after which admission control sheds without touching it
        match client.call(&api::Request::Profile(profile_spec(0))) {
            Ok(api::Response::Error(body)) => {
                assert_eq!(body.kind, api::ErrorKind::Shed);
                assert!(body.transient, "shed requests are retryable");
                assert!(
                    body.message.contains("admission control open"),
                    "{}",
                    body.message
                );
            }
            other => panic!("expected a shed, got {other:?}"),
        }

        match client.call(&api::Request::Stats).expect("stats call") {
            api::Response::Stats(report) => {
                assert_eq!(report.served, 0, "no request succeeded");
                assert_eq!(report.shed, 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        match client.call(&api::Request::Shutdown).expect("shutdown") {
            api::Response::Bye => {}
            other => panic!("expected Bye, got {other:?}"),
        }
        srv.join().unwrap();
    });
}
