//! Acceptance contract of the structural-memoization + chunked-dispatch
//! search rework: on the Fig. 10-style full sweep the structural cache
//! turns well over half of all candidate queries into hits (interior
//! layer windows of equal length are isomorphic, so only `O(L)`
//! structures exist among `O(L²)` windows), and coarsening the dispatch
//! granularity never changes a single bit — chunked and per-query
//! policies produce identical candidate tables and identical
//! `SearchOutcome` plans at every thread count.

use predtop::prelude::*;
use predtop::service::ServiceBuilder;

/// Dense 12-layer benchmark model, shrunk so the sweep finishes in
/// seconds: 78 layer windows per (mesh, config), of which only 33 are
/// structurally distinct — a 57.7% structural hit rate.
fn dense_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 64;
    m.num_layers = 12;
    m
}

fn opts() -> InterStageOptions {
    InterStageOptions {
        microbatches: 2,
        imbalance_tolerance: None,
    }
}

#[test]
fn fig10_sweep_structural_hit_rate_exceeds_half() {
    let model = dense_model();
    let cluster = MeshShape::new(1, 2);
    let profiler = SimProfiler::new(Platform::platform1(), 7);

    let stack = ServiceBuilder::new(&profiler)
        .memoize_structural()
        .batched(4)
        .finish();
    let out = search_plan_service(model, cluster, &stack, &profiler, opts(), None)
        .expect("simulator stack is infallible");

    let report = out.service.expect("structural stack reports");
    let cache = report.cache.expect("memoize layer installed");
    let interner = report.interner.expect("interner rides along");

    // per-layer observability: the interner accounts every query, the
    // cache misses exactly once per distinct structure
    assert_eq!(interner.lookups, out.num_queries);
    assert_eq!(cache.queries(), out.num_queries);
    assert_eq!(cache.misses, interner.distinct);
    assert_eq!(cache.hits, out.num_queries - interner.distinct);

    // the headline property: most of the sweep is shared structure
    assert!(
        cache.hit_rate() > 0.5,
        "structural hit rate {:.3} (hits {} / misses {}) did not exceed 50%",
        cache.hit_rate(),
        cache.hits,
        cache.misses
    );

    // the underlying simulator did exactly one evaluation per distinct
    // structure during the sweep, plus the final ground-truth
    // re-evaluation of the winning plan's stages
    assert_eq!(
        profiler.queries_issued(),
        interner.distinct + out.plan.stages.len()
    );
}

#[test]
fn structural_search_outcome_is_bit_identical_to_raw_memoized_search() {
    let model = dense_model();
    let cluster = MeshShape::new(1, 2);

    let profiler = SimProfiler::new(Platform::platform1(), 7);
    let raw_stack = ServiceBuilder::new(&profiler).memoize().batched(2).finish();
    let raw = search_plan_service(model, cluster, &raw_stack, &profiler, opts(), None)
        .expect("simulator stack is infallible");

    let profiler2 = SimProfiler::new(Platform::platform1(), 7);
    let structural_stack = ServiceBuilder::new(&profiler2)
        .memoize_structural()
        .batched(2)
        .finish();
    let structural =
        search_plan_service(model, cluster, &structural_stack, &profiler2, opts(), None)
            .expect("simulator stack is infallible");

    assert_eq!(structural.plan, raw.plan);
    assert_eq!(
        structural.estimated_latency.to_bits(),
        raw.estimated_latency.to_bits()
    );
    assert_eq!(
        structural.true_latency.to_bits(),
        raw.true_latency.to_bits()
    );
    assert_eq!(structural.num_queries, raw.num_queries);
    // structural sharing strictly reduces underlying simulator work
    assert!(profiler2.queries_issued() < profiler.queries_issued());
}

#[test]
fn chunked_and_per_query_dispatch_are_bit_identical_at_every_thread_count() {
    let model = dense_model();
    let cluster = MeshShape::new(1, 2);
    let sweep: Vec<LatencyQuery> = predtop::parallel::enumerate_candidates(model, cluster, opts())
        .into_iter()
        .map(|(stage, mesh, config)| LatencyQuery::new(stage, mesh, config))
        .collect();
    assert!(sweep.len() > 64, "sweep must exceed the serial threshold");

    // serial ground-truth candidate table
    let profiler = SimProfiler::new(Platform::platform1(), 7);
    let reference: Vec<u64> = {
        let stack = ServiceBuilder::new(&profiler).batched(1).finish();
        stack
            .query_batch(&sweep)
            .into_iter()
            .map(|r| r.expect("simulator is infallible").seconds.to_bits())
            .collect()
    };

    let mut outcomes = Vec::new();
    for threads in [1usize, 4, 8] {
        for policy in [DispatchPolicy::default(), DispatchPolicy::per_query()] {
            // the raw candidate table is bit-identical however the
            // batch is carved up
            let profiler = SimProfiler::new(Platform::platform1(), 7);
            let stack = ServiceBuilder::new(&profiler)
                .memoize_structural()
                .batched_with_policy(threads, policy)
                .finish();
            let table: Vec<u64> = stack
                .query_batch(&sweep)
                .into_iter()
                .map(|r| r.expect("simulator is infallible").seconds.to_bits())
                .collect();
            assert_eq!(
                table, reference,
                "candidate table diverged at {threads} threads with {policy:?}"
            );

            // and so is the full search outcome built on top of it
            let profiler = SimProfiler::new(Platform::platform1(), 7);
            let stack = ServiceBuilder::new(&profiler)
                .memoize_structural()
                .batched_with_policy(threads, policy)
                .finish();
            let out = search_plan_service(model, cluster, &stack, &profiler, opts(), None)
                .expect("simulator stack is infallible");
            outcomes.push((threads, policy, out));
        }
    }

    let (_, _, first) = &outcomes[0];
    for (threads, policy, out) in &outcomes[1..] {
        assert_eq!(
            out.plan, first.plan,
            "plan diverged at {threads} threads with {policy:?}"
        );
        assert_eq!(
            out.estimated_latency.to_bits(),
            first.estimated_latency.to_bits(),
            "estimated latency diverged at {threads} threads with {policy:?}"
        );
        assert_eq!(
            out.true_latency.to_bits(),
            first.true_latency.to_bits(),
            "true latency diverged at {threads} threads with {policy:?}"
        );
        // the structural accounting is itself deterministic: same
        // distinct-structure count and hit/miss split every time
        let a = out.service.as_ref().unwrap();
        let b = first.service.as_ref().unwrap();
        assert_eq!(a.interner, b.interner);
        assert_eq!(a.cache, b.cache);
    }
}
