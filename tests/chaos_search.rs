//! Chaos contract of the fault-tolerant search path: injected transient
//! faults, retries, and a tripping circuit breaker are *reliability*
//! knobs — none may change the plan a search chooses, its reported
//! latencies, or its query accounting. The stacks here mirror the CLI's
//! `--inject-fault-rate/--retry` wiring end to end.

use predtop::core::search_plan_with_threads;
use predtop::prelude::*;

fn tiny_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 128;
    m.num_layers = 6;
    m
}

fn opts() -> InterStageOptions {
    InterStageOptions {
        microbatches: 4,
        imbalance_tolerance: None,
    }
}

fn assert_same_outcome(chaos: &SearchOutcome, clean: &SearchOutcome, label: &str) {
    assert_eq!(chaos.plan, clean.plan, "{label}: plan drifted under faults");
    assert_eq!(
        chaos.estimated_latency.to_bits(),
        clean.estimated_latency.to_bits(),
        "{label}: estimated latency drifted under faults"
    );
    assert_eq!(
        chaos.true_latency.to_bits(),
        clean.true_latency.to_bits(),
        "{label}: true latency drifted under faults"
    );
    assert_eq!(
        chaos.num_queries, clean.num_queries,
        "{label}: query accounting drifted under faults"
    );
}

/// Acceptance criterion of the fault-tolerance PR: a 20% injected-error
/// rate behind `Retry(3)` recovers to the byte-identical outcome of the
/// fault-free search, at 1 and at 4 worker threads, with nonzero
/// injected-fault and retry counters proving the layers actually fired.
#[test]
fn faulty_search_recovers_to_the_fault_free_outcome() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    for threads in [1, 4] {
        let profiler = SimProfiler::new(Platform::platform2(), 6);
        let clean = search_plan_with_threads(m, cluster, &profiler, &profiler, opts(), threads);

        let profiler2 = SimProfiler::new(Platform::platform2(), 6);
        let stack = ServiceBuilder::new(&profiler2)
            .inject_faults(FaultConfig::errors(1, 0.2))
            .retry(RetryPolicy::retries(3))
            .memoize()
            .batched(threads)
            .finish();
        let chaos = search_plan_service(m, cluster, &stack, &profiler2, opts(), None)
            .expect("retries absorb every injected fault");

        assert_same_outcome(&chaos, &clean, &format!("{threads} threads"));
        let report = chaos.service.expect("chaos search reports its layers");
        let fault = report.fault.expect("fault layer installed");
        let retry = report.retry.expect("retry layer installed");
        assert!(fault.injected_errors > 0, "no fault was ever injected");
        assert!(retry.retries > 0, "no retry was ever issued");
        assert_eq!(retry.exhausted, 0, "a query ran out of retries");
        assert_eq!(retry.permanent_failures, 0);
        // every injected error was a retry the layer above absorbed
        assert_eq!(retry.retries, fault.injected_errors);
        assert!(retry.backoff_seconds > 0.0, "backoff was never accounted");
    }
}

/// Same contract under a circuit breaker that actually trips: a high
/// fault rate drives the breaker through open/half-open/closed while the
/// outer retry loop burns the cooldown, and the search still lands on
/// the fault-free plan. Single-threaded so the trip schedule — and hence
/// the breaker counters — are deterministic.
#[test]
fn a_tripping_breaker_still_converges_on_the_fault_free_plan() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    let profiler = SimProfiler::new(Platform::platform2(), 6);
    let clean = search_plan_with_threads(m, cluster, &profiler, &profiler, opts(), 1);

    let profiler2 = SimProfiler::new(Platform::platform2(), 6);
    let stack = ServiceBuilder::new(&profiler2)
        .inject_faults(FaultConfig::errors(3, 0.4))
        .circuit_breaker(BreakerConfig::tripping_after(2))
        .retry(RetryPolicy::retries(32))
        .memoize()
        .batched(1)
        .finish();
    let chaos = search_plan_service(m, cluster, &stack, &profiler2, opts(), None)
        .expect("the retry budget outlasts every breaker cooldown");

    assert_same_outcome(&chaos, &clean, "seeded breaker");
    let report = chaos.service.expect("chaos search reports its layers");
    let fault = report.fault.expect("fault layer installed");
    let breaker = report.breaker.expect("breaker layer installed");
    let retry = report.retry.expect("retry layer installed");
    assert!(fault.injected_errors > 0, "no fault was ever injected");
    assert!(breaker.opened > 0, "the breaker never tripped");
    assert!(breaker.rejected > 0, "the open breaker never shed a query");
    assert!(
        breaker.closed > 0,
        "no half-open probe ever closed the breaker"
    );
    assert_eq!(retry.exhausted, 0, "a query ran out of retries");
}

/// The CLI builds the full chaos-capable stack unconditionally and
/// relies on neutral defaults (rate 0, 0 retries, no budget) being
/// perfect pass-throughs; this pins that contract.
#[test]
fn neutral_chaos_layers_are_pass_throughs() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    let profiler = SimProfiler::new(Platform::platform2(), 6);
    let clean = search_plan_with_threads(m, cluster, &profiler, &profiler, opts(), 2);

    let profiler2 = SimProfiler::new(Platform::platform2(), 6);
    let stack = ServiceBuilder::new(&profiler2)
        .inject_faults(FaultConfig::errors(0, 0.0))
        .deadline(DeadlinePolicy::default())
        .retry(RetryPolicy::retries(0))
        .memoize()
        .batched(2)
        .finish();
    let idle = search_plan_service(m, cluster, &stack, &profiler2, opts(), None)
        .expect("neutral layers never fail");

    assert_same_outcome(&idle, &clean, "neutral stack");
    let report = idle.service.expect("stack reports its layers");
    assert_eq!(report.fault.unwrap().injected_errors, 0);
    assert_eq!(report.retry.unwrap().retries, 0);
    let deadline = report.deadline.unwrap();
    assert_eq!(deadline.query_overruns, 0);
    assert_eq!(deadline.batch_overruns, 0);
}
