//! Reproducibility contract: everything is a pure function of its seeds.

use predtop::prelude::*;

fn tiny_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 128;
    m.num_layers = 6;
    m
}

#[test]
fn profiler_is_pure_in_platform_and_seed() {
    let stage = StageSpec::new(tiny_model(), 1, 4);
    let run = |seed: u64| {
        let p = SimProfiler::new(Platform::platform2(), seed);
        [
            p.stage_latency(&stage, MeshShape::new(1, 1), ParallelConfig::SERIAL),
            p.stage_latency(&stage, MeshShape::new(1, 2), ParallelConfig::new(2, 1)),
            p.stage_latency(&stage, MeshShape::new(2, 2), ParallelConfig::new(2, 2)),
        ]
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn stage_sampling_and_splits_reproduce() {
    let m = tiny_model();
    assert_eq!(sample_stages(m, 8, 3, 42), sample_stages(m, 8, 3, 42));
    let profiler = SimProfiler::new(Platform::platform1(), 1);
    let samples: Vec<GraphSample> = sample_stages(m, 8, 3, 42)
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, MeshShape::new(1, 1), ParallelConfig::SERIAL);
            GraphSample::new(&profiler.stage_graph(s), lat, 8)
        })
        .collect();
    let ds = Dataset::new(samples);
    assert_eq!(ds.split(0.5, 9).train, ds.split(0.5, 9).train);
    assert_ne!(ds.split(0.5, 9).train, ds.split(0.5, 10).train);
}

#[test]
fn full_workflow_reproduces_bit_for_bit() {
    let m = tiny_model();
    let run = || {
        let profiler = SimProfiler::new(Platform::platform1(), 4);
        let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
        arch.layers = 1;
        arch.hidden = 16;
        arch.heads = 2;
        let cfg = GrayBoxConfig {
            num_profile_stages: 12,
            max_stage_layers: 3,
            arch,
            train: TrainConfig::quick(10),
            seed: 4,
        };
        let pt = PredTop::fit(m, MeshShape::new(1, 2), &profiler, &cfg);
        let stage = StageSpec::new(m, 1, 4);
        pt.stage_latency(&stage, MeshShape::new(1, 2), ParallelConfig::new(1, 2))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "wall-clock noise must not leak into predictions");
}

#[test]
fn search_is_deterministic() {
    let m = tiny_model();
    let run = || {
        let profiler = SimProfiler::new(Platform::platform2(), 6);
        let out = search_plan(
            m,
            MeshShape::new(2, 2),
            &profiler,
            &profiler,
            InterStageOptions {
                microbatches: 4,
                imbalance_tolerance: None,
            },
        );
        (out.plan.clone(), out.true_latency)
    };
    let (plan_a, lat_a) = run();
    let (plan_b, lat_b) = run();
    assert_eq!(plan_a, plan_b);
    assert_eq!(lat_a, lat_b);
}

#[test]
fn random_plans_reproduce_per_seed() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    for seed in 0..10 {
        let a = predtop::parallel::plan::random_plan(m, cluster, 4, seed);
        let b = predtop::parallel::plan::random_plan(m, cluster, 4, seed);
        assert_eq!(a, b);
    }
}
