//! Cross-crate checks of the paper's structural claims: the encoded
//! tables, the white-box formula against the event simulator, and the
//! qualitative rankings the evaluation section reports.

use predtop::ir::prune::prune;
use predtop::prelude::*;
use predtop::sim::pipeline::simulate_uniform;

#[test]
fn table2_table3_scenario_counts() {
    // Platform 1 exposes meshes 1-2 (3 scenarios), Platform 2 meshes 1-3
    // (6 scenarios) — the column structure of Tables V and VI.
    let p1 = Platform::platform1();
    let scenarios1: usize = p1
        .table2_meshes()
        .iter()
        .map(|m| table3_configs(MeshShape::new(m.num_nodes, m.gpus_per_node)).len())
        .sum();
    assert_eq!(scenarios1, 3);
    let p2 = Platform::platform2();
    let scenarios2: usize = p2
        .table2_meshes()
        .iter()
        .map(|m| table3_configs(MeshShape::new(m.num_nodes, m.gpus_per_node)).len())
        .sum();
    assert_eq!(scenarios2, 6);
}

#[test]
fn table4_models_build_complete_graphs() {
    // the real Table IV models are too large to build per-test at full
    // batch; one layer of each demonstrates the emitters handle the
    // true dimensions
    let gpt = ModelSpec::gpt3_1p3b(1);
    let g = StageSpec::new(gpt, 10, 11).build_graph();
    assert!(g.len() > 50);
    // attention + ffn matmul flops at hidden 2048, seq 1024 exceed 50 GFLOP
    assert!(g.total_flops() > 50_000_000_000, "{}", g.total_flops());

    let moe = ModelSpec::moe_2p6b(1);
    let dense_layer = StageSpec::new(moe, 0, 1).build_graph();
    let moe_layer = StageSpec::new(moe, 1, 2).build_graph();
    assert!(
        moe_layer.len() > dense_layer.len(),
        "MoE layers must be structurally larger"
    );
}

#[test]
fn eqn4_matches_event_simulation_without_comm() {
    let model = {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.seq_len = 32;
        m.hidden = 32;
        m.num_heads = 4;
        m.vocab = 128;
        m.num_layers = 8;
        m
    };
    let profiler = SimProfiler::new(Platform::platform2(), 5);
    let mesh = MeshShape::new(1, 1);
    let times: Vec<f64> = (0..4)
        .map(|i| {
            profiler.stage_latency(
                &StageSpec::new(model, i * 2, (i + 1) * 2),
                mesh,
                ParallelConfig::SERIAL,
            )
        })
        .collect();
    for b in [1usize, 3, 8, 16] {
        let formula = pipeline_latency(&times, b);
        let sim = simulate_uniform(&times, b, &[0.0; 3]);
        assert!(
            (formula - sim.makespan).abs() < 1e-12,
            "B={b}: {formula} vs {}",
            sim.makespan
        );
    }
}

#[test]
fn fig2_premise_plans_vary_widely() {
    // the same model and hardware must yield substantially different
    // latencies across random parallelization plans
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 64;
    model.num_heads = 4;
    model.vocab = 256;
    model.num_layers = 8;
    let profiler = SimProfiler::new(Platform::platform2(), 5);
    let cluster = MeshShape::new(2, 2);
    let lats: Vec<f64> = (0..25)
        .map(|s| predtop::parallel::plan::random_plan(model, cluster, 8, s).latency(&profiler))
        .collect();
    let min = lats.iter().cloned().fold(f64::MAX, f64::min);
    let max = lats.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max / min > 1.5,
        "plan spread too small: {min}..{max} ({:.2}x)",
        max / min
    );
}

#[test]
fn pruning_shrinks_benchmark_graphs_markedly() {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 64;
    model.num_heads = 4;
    model.vocab = 256;
    model.num_layers = 8;
    let g = StageSpec::new(model, 0, 4).build_graph();
    let (p, stats) = prune(&g);
    assert!(
        stats.removal_ratio() > 0.05,
        "expected >5% bookkeeping nodes, got {:.1}%",
        100.0 * stats.removal_ratio()
    );
    assert_eq!(p.count_ops(OpKind::Reshape), 0);
    assert_eq!(p.count_ops(OpKind::ConvertElementType), 0);
    // compute content is untouched
    assert_eq!(
        p.count_ops(OpKind::DotGeneral),
        g.count_ops(OpKind::DotGeneral)
    );
    assert_eq!(p.total_flops(), g.total_flops());
}

#[test]
fn cross_node_parallelism_is_penalized() {
    // §VII-A: mesh 3 spans two nodes over 10 GbE; an all-MP config that
    // fits on one node's NVLink must beat the same config spanning nodes
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 64;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 512;
    model.num_layers = 4;
    let profiler = SimProfiler::new(Platform::platform2(), 5);
    let stage = StageSpec::new(model, 0, 4);
    let mp2_within =
        profiler.stage_latency(&stage, MeshShape::new(1, 2), ParallelConfig::new(1, 2));
    let mp4_across =
        profiler.stage_latency(&stage, MeshShape::new(2, 2), ParallelConfig::new(1, 4));
    // 4-way MP has more devices but pays 10 GbE for every collective;
    // within-node 2-way MP must win on this communication-bound size
    assert!(
        mp4_across > mp2_within,
        "mp4 across nodes {mp4_across} should lose to mp2 within node {mp2_within}"
    );
}

#[test]
fn paper_sized_predictors_run_on_real_stage_graphs() {
    // the full §IV-B6/§VII-D architectures (GCN 6×256, GAT 6×32,
    // Tran 4×64/4heads) forward + backward on a real multi-layer stage
    // sample — the --paper protocol's hot path, smoke-tested here so the
    // hours-long full run is not the first time it executes
    use predtop::tensor::Matrix;
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 64;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 1024;
    model.num_layers = 8;
    let graph = StageSpec::new(model, 0, 2).build_graph();

    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::DagTransformer] {
        let arch = ArchConfig::paper(kind);
        let sample = GraphSample::new(&graph, 0.01, arch.pe_dim());
        let mut net = arch.build(1);
        let mut tape = predtop::tensor::Tape::new();
        let out = net.forward(&mut tape, &sample);
        let v = tape.value(out).get(0, 0);
        assert!(v.is_finite(), "{kind:?} produced {v}");
        tape.backward(out, Matrix::full(1, 1, 1.0), net.store_mut());
        let grads_live = (0..net.store().len())
            .filter(|&p| net.store().grad(p).norm() > 0.0)
            .count();
        assert!(
            grads_live > net.store().len() / 2,
            "{kind:?}: only {grads_live} live grads"
        );
    }
}

#[test]
fn dag_transformer_beats_baselines_on_one_scenario() {
    // a smoke-scale rendition of the paper's headline: at a mid training
    // fraction the DAG Transformer's MRE is competitive with the best
    // baseline (full grids live in the bench binaries)
    use predtop::gnn::train::{eval_mre, train};
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 64;
    model.num_heads = 4;
    model.vocab = 256;
    model.num_layers = 8;
    let profiler = SimProfiler::new(Platform::platform1(), 5);
    let mesh = MeshShape::new(1, 2);
    let config = ParallelConfig::new(1, 2);
    let stages = sample_stages(model, 24, 3, 5);
    let pe = 16;
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, pe)
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.5, 5);

    let mut mres = std::collections::HashMap::new();
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::DagTransformer] {
        let mut arch = ArchConfig::scaled(kind);
        if kind == ModelKind::DagTransformer {
            arch.hidden = pe;
            arch.layers = 2;
            arch.heads = 2;
        }
        let mut net = arch.build(5);
        // 40 epochs: at 30 the transformer's loss is still mid-descent
        // on this stream of the vendored RNG and its MRE hovers right
        // at the 40% bar; ten more epochs put it comfortably inside
        let (scaler, _) = train(net.as_mut(), &ds, &split, &TrainConfig::quick(40));
        mres.insert(
            kind.label(),
            eval_mre(net.as_ref(), &scaler, &ds, &split.test),
        );
    }
    let tran = mres["Tran"];
    assert!(tran < 40.0, "Tran MRE {tran:.1}% too high");
    let best_baseline = mres["GCN"].min(mres["GAT"]);
    assert!(
        tran < best_baseline * 2.0,
        "Tran {tran:.1}% far behind best baseline {best_baseline:.1}%"
    );
}
