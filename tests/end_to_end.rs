//! End-to-end integration: the full gray-box workflow through the
//! public facade — profile, train, predict, search — on a miniature
//! benchmark.

use predtop::prelude::*;

fn tiny_gpt() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 128;
    m.num_layers = 6;
    m
}

fn tiny_arch() -> ArchConfig {
    let mut arch = ArchConfig::scaled(ModelKind::DagTransformer);
    arch.layers = 1;
    arch.hidden = 16;
    arch.heads = 2;
    arch
}

#[test]
fn graybox_workflow_produces_usable_predictions() {
    let model = tiny_gpt();
    let profiler = SimProfiler::new(Platform::platform1(), 3);
    let cluster = MeshShape::new(1, 2);
    let cfg = GrayBoxConfig {
        num_profile_stages: 14,
        max_stage_layers: 3,
        arch: tiny_arch(),
        train: TrainConfig::quick(20),
        seed: 3,
    };
    let pt = PredTop::fit(model, cluster, &profiler, &cfg);

    // predictions exist for every scenario and are positive & finite
    for &(mesh, config) in pt.scenarios().collect::<Vec<_>>() {
        let stage = StageSpec::new(model, 2, 4);
        let t = pt.stage_latency(&stage, mesh, config);
        assert!(t.is_finite() && t > 0.0, "({mesh:?},{config:?}): {t}");
    }

    // profiling bill was recorded
    let bill = profiler.ledger().totals();
    assert_eq!(bill.stages_profiled, 14 * 3); // 14 stages × 3 scenarios
    assert!(bill.profiling_s > 0.0);
    assert!(bill.training_s > 0.0);
}

#[test]
fn predictor_search_vs_full_profiling_search() {
    let model = tiny_gpt();
    let cluster = MeshShape::new(1, 2);
    let opts = InterStageOptions {
        microbatches: 4,
        imbalance_tolerance: None,
    };

    let profiler = SimProfiler::new(Platform::platform1(), 3);
    let full = search_plan(model, cluster, &profiler, &profiler, opts);
    full.plan.validate(&model).unwrap();

    let profiler2 = SimProfiler::new(Platform::platform1(), 3);
    let cfg = GrayBoxConfig {
        num_profile_stages: 10,
        max_stage_layers: 3,
        arch: tiny_arch(),
        train: TrainConfig::quick(25),
        seed: 3,
    };
    let pt = PredTop::fit(model, cluster, &profiler2, &cfg);
    let truth = SimProfiler::new(Platform::platform1(), 3);
    let pred = search_plan(model, cluster, &pt, &truth, opts);
    pred.plan.validate(&model).unwrap();

    // optimality of the full search is a hard invariant
    assert!(pred.true_latency >= full.true_latency - 1e-12);
    // the predictor search must profile far fewer stages than full search
    let full_bill = profiler.ledger().totals();
    let pt_bill = profiler2.ledger().totals();
    assert!(
        pt_bill.stages_profiled * 2 < full_bill.stages_profiled,
        "PredTOP profiled {} vs full {}",
        pt_bill.stages_profiled,
        full_bill.stages_profiled
    );
    assert!(pt_bill.profiling_s < full_bill.profiling_s);
}

#[test]
fn partial_profiling_cuts_queries_not_validity() {
    let model = tiny_gpt();
    let cluster = MeshShape::new(1, 2);
    let profiler = SimProfiler::new(Platform::platform1(), 9);
    let full = optimize_pipeline(
        model,
        cluster,
        &profiler,
        InterStageOptions {
            microbatches: 4,
            imbalance_tolerance: None,
        },
    );
    let partial = optimize_pipeline(
        model,
        cluster,
        &profiler,
        InterStageOptions {
            microbatches: 4,
            imbalance_tolerance: Some(0.3),
        },
    );
    partial.plan.validate(&model).unwrap();
    assert!(partial.num_queries < full.num_queries);
    assert!(partial.latency >= full.latency - 1e-12);
}

#[test]
fn memory_aware_search_avoids_oom_plans() {
    use predtop::sim::{estimate_stage_memory, fits_on, DeviceCostModel};

    // a wide model with a big micro-batch: activations alone overflow one
    // 24 GiB A5500 if the whole model runs as a single serial stage
    let mut model = ModelSpec::gpt3_1p3b(4);
    model.num_layers = 8;

    let platform = Platform::platform2();
    let full_stage = StageSpec::new(model, 0, 8);
    let g = full_stage.build_graph();
    let cost = DeviceCostModel::new(&platform.mesh(1, 1), 7);
    let serial_plan =
        predtop::parallel::intra::optimize(&g, MeshShape::new(1, 1), ParallelConfig::SERIAL, &cost);
    let est = estimate_stage_memory(&g, &serial_plan);
    assert!(
        !fits_on(&platform.gpu, &est, 0.1),
        "precondition: the whole model must OOM one device ({} GiB)",
        est.total() >> 30
    );

    let profiler = SimProfiler::new(platform.clone(), 7).with_memory_check(0.1);
    let out = search_plan(
        model,
        MeshShape::new(2, 2),
        &profiler,
        &profiler,
        InterStageOptions {
            microbatches: 4,
            imbalance_tolerance: None,
        },
    );
    out.plan.validate(&model).unwrap();
    assert!(
        out.true_latency.is_finite(),
        "search must find a memory-feasible plan"
    );
    // the chosen plan cannot be the single-device single stage
    let single_device_single_stage =
        out.plan.stages.len() == 1 && out.plan.stages[0].mesh.num_devices() == 1;
    assert!(
        !single_device_single_stage,
        "OOM plan chosen: {:?}",
        out.plan
    );
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // compile-time check that the prelude exposes the advertised types;
    // exercise a couple of them at runtime for good measure
    let model = tiny_gpt();
    let stages = enumerate_stages(model);
    assert_eq!(stages.len(), 6 * 7 / 2);
    let sampled = sample_stages(model, 5, 2, 1);
    assert_eq!(sampled.len(), 5);
    let configs = table3_configs(MeshShape::new(2, 2));
    assert_eq!(configs.len(), 3);
    assert_eq!(pipeline_latency(&[1.0, 2.0], 3), 3.0 + 2.0 * 2.0);
}
