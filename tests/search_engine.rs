//! Contract of the parallel, memoized plan-search engine: the worker
//! pool size and the memoization layer are *performance* knobs — neither
//! may change the plan a search chooses, its reported latencies, or its
//! query accounting.
//!
//! All stacks are assembled through `ServiceBuilder` — the single
//! latency API since the legacy `search_plan_cached*` / `CachedProvider`
//! entry points were retired.

use predtop::prelude::*;

fn tiny_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 32;
    m.hidden = 32;
    m.num_heads = 4;
    m.vocab = 128;
    m.num_layers = 6;
    m
}

fn opts() -> InterStageOptions {
    InterStageOptions {
        microbatches: 4,
        imbalance_tolerance: None,
    }
}

#[test]
fn search_is_bit_identical_across_thread_counts() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    let run = |threads: usize| {
        let profiler = SimProfiler::new(Platform::platform2(), 6);
        predtop::core::search_plan_with_threads(m, cluster, &profiler, &profiler, opts(), threads)
    };
    let base = run(1);
    for threads in [2, 8] {
        let out = run(threads);
        assert_eq!(
            out.estimated_latency.to_bits(),
            base.estimated_latency.to_bits(),
            "estimated latency drifted at {threads} threads"
        );
        assert_eq!(
            out.true_latency.to_bits(),
            base.true_latency.to_bits(),
            "true latency drifted at {threads} threads"
        );
        assert_eq!(out.num_queries, base.num_queries);
        assert_eq!(out.plan, base.plan, "plan drifted at {threads} threads");
    }
}

#[test]
fn memoized_search_never_changes_the_plan() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    for threads in [1, 4] {
        let profiler = SimProfiler::new(Platform::platform2(), 6);
        let plain = predtop::core::search_plan_with_threads(
            m,
            cluster,
            &profiler,
            &profiler,
            opts(),
            threads,
        );
        let profiler2 = SimProfiler::new(Platform::platform2(), 6);
        let stack = ServiceBuilder::new(&profiler2)
            .memoize()
            .batched(threads)
            .finish();
        let cached = search_plan_service(m, cluster, &stack, &profiler2, opts(), None)
            .expect("simulator stack is infallible");
        assert_eq!(cached.plan, plain.plan);
        assert_eq!(
            cached.estimated_latency.to_bits(),
            plain.estimated_latency.to_bits()
        );
        assert_eq!(cached.true_latency.to_bits(), plain.true_latency.to_bits());
        assert_eq!(cached.num_queries, plain.num_queries);
        let stats = cached.cache.expect("memoized search reports stats");
        assert_eq!(stats.queries(), cached.num_queries);
    }
}

#[test]
fn memoized_search_never_issues_more_underlying_queries() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);

    let profiler = SimProfiler::new(Platform::platform2(), 6);
    let _ = search_plan(m, cluster, &profiler, &profiler, opts());
    let uncached_queries = profiler.queries_issued();

    let profiler2 = SimProfiler::new(Platform::platform2(), 6);
    let stack = ServiceBuilder::new(&profiler2)
        .memoize()
        .batched(configured_threads())
        .finish();
    let cached = search_plan_service(m, cluster, &stack, &profiler2, opts(), None)
        .expect("simulator stack is infallible");
    assert!(
        profiler2.queries_issued() <= uncached_queries,
        "memoization increased the underlying query load: {} > {}",
        profiler2.queries_issued(),
        uncached_queries
    );
    // the cache's miss count is exactly the traffic that reached the
    // profiler during the search phase
    let stats = cached.cache.unwrap();
    assert!(stats.misses <= cached.num_queries);
}

#[test]
fn reusing_one_memoized_stack_across_searches_absorbs_repeat_traffic() {
    let m = tiny_model();
    let cluster = MeshShape::new(2, 2);
    let profiler = SimProfiler::new(Platform::platform2(), 6);

    // a campaign: the same full search twice through one shared stack
    // (the blanket &S service impl makes the layers non-consuming)
    let stack = ServiceBuilder::new(&profiler)
        .memoize()
        .batched(configured_threads())
        .finish();
    let first = search_plan_service(m, cluster, &stack, &profiler, opts(), None)
        .expect("simulator stack is infallible");
    let after_first = stack.handles().cache.as_ref().unwrap().stats();
    let second = search_plan_service(m, cluster, &stack, &profiler, opts(), None)
        .expect("simulator stack is infallible");
    let after_second = stack.handles().cache.as_ref().unwrap().stats();

    assert_eq!(first.plan, second.plan);
    // the second search's queries were all answered from the cache
    assert_eq!(after_second.misses, after_first.misses);
    assert_eq!(
        after_second.hits - after_first.hits,
        second.num_queries,
        "second search should be a pure cache replay"
    );
}
