//! Pass-based static analysis for PredTOP graphs and parallel plans.
//!
//! `predtop-analyze` turns the semantic rules scattered through the
//! workspace (`ir::verify`'s shape rules, `PipelinePlan`'s structural
//! checks, `sim::memory`'s capacity model) into a uniform pass
//! framework with structured [`Diagnostic`]s:
//!
//! - a stable machine-readable [`Code`] per rule (`P0107`, `P1401`, ...),
//! - a [`Severity`] policy (`Error` gates CI and the checked plan
//!   search; `Warn`/`Info` inform),
//! - a [`Span`] locating each finding in a graph or plan,
//! - deterministic ordering at any thread count.
//!
//! The two driver entry points are [`analyze_graph`] (semantics,
//! dead-code, dtype, const-fold passes) and [`analyze_plan`]
//! (structure, device-budget, divisibility, memory-fit passes); both
//! fan passes out via `predtop-runtime`. [`StaticLegality`] exposes the
//! plan rules as the candidate filter `predtop-core`'s checked search
//! plugs into, and the `predtop-lint` binary runs everything over the
//! benchmark models from CI. Code numbering is documented in
//! DESIGN.md §7.

#![warn(missing_docs)]

pub mod dataflow;
pub mod diag;
pub mod fix;
pub mod graph_passes;
pub mod legality;
pub mod pass;
pub mod plan_passes;
pub mod registry;
pub mod render;
pub mod stack_passes;

pub use dataflow::{
    peak_resident_bytes, resident_sets, solve, BitSet, Direction, Fixpoint, FlowGraph, Lattice,
    LiveBuffers, LivenessPass,
};
pub use diag::{
    has_errors, max_severity, sort_diagnostics, Code, Diagnostic, Fix, FixEdit, Severity, Span,
};
pub use fix::{apply_edit, collect_edits, fix_plan, FixOutcome};
pub use legality::StaticLegality;
pub use pass::{GraphPass, PlanCheckOptions, PlanContext, PlanPass};
pub use registry::{
    analyze_graph, analyze_graph_with_threads, analyze_plan, analyze_plan_with_threads,
    default_graph_passes, default_plan_passes, GraphLintCache, LintCacheStats,
};
pub use render::{render_json, render_text};
pub use stack_passes::analyze_stack;
