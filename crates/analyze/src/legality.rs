//! Static candidate legality for the plan search.
//!
//! [`StaticLegality`] packages the plan-level divisibility and memory
//! rules as a per-candidate predicate with the exact signature
//! `optimize_pipeline_filtered_with_threads` expects, so the search
//! engine rejects statically illegal `(stage, mesh, config)` candidates
//! *before* they ever reach the latency provider.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use predtop_cluster::GpuSpec;
use predtop_ir::Graph;
use predtop_models::{ModelSpec, StageSpec};
use predtop_parallel::{MeshShape, ParallelConfig};

use crate::diag::{has_errors, sort_diagnostics, Diagnostic, Span};
use crate::plan_passes::{divisibility_diags, memory_fit_diag};

/// Per-candidate static legality checks for the plan search.
///
/// The divisibility rules (`P13xx`) are pure arithmetic; the optional
/// memory rule (`P1401`) builds each candidate's stage graph once and
/// caches it by layer range, so an `n²`-range enumeration pays `n²`
/// graph builds at most (and typically far fewer, as ranges repeat
/// across meshes and configs).
pub struct StaticLegality {
    model: ModelSpec,
    microbatches: usize,
    gpu: Option<GpuSpec>,
    headroom_frac: f64,
    graphs: Mutex<HashMap<(usize, usize), Arc<Graph>>>,
    rejected: AtomicUsize,
    rejected_memory: AtomicUsize,
}

impl StaticLegality {
    /// Divisibility-only legality for `model` split into `microbatches`.
    pub fn new(model: ModelSpec, microbatches: usize) -> StaticLegality {
        StaticLegality {
            model,
            microbatches,
            gpu: None,
            headroom_frac: 0.1,
            graphs: Mutex::new(HashMap::new()),
            rejected: AtomicUsize::new(0),
            rejected_memory: AtomicUsize::new(0),
        }
    }

    /// Additionally reject candidates whose per-device memory lower
    /// bound cannot fit `gpu` with `headroom_frac` kept free.
    pub fn with_memory_check(mut self, gpu: GpuSpec, headroom_frac: f64) -> StaticLegality {
        self.gpu = Some(gpu);
        self.headroom_frac = headroom_frac;
        self
    }

    fn stage_graph(&self, stage: &StageSpec) -> Arc<Graph> {
        let key = (stage.start, stage.end);
        let mut cache = self.graphs.lock();
        if let Some(g) = cache.get(&key) {
            return Arc::clone(g);
        }
        let g = Arc::new(stage.build_graph());
        cache.insert(key, Arc::clone(&g));
        g
    }

    /// Every `Error`-severity finding for one search candidate, in
    /// canonical order. Empty means the candidate is statically legal.
    pub fn candidate_diagnostics(
        &self,
        stage: &StageSpec,
        _mesh: MeshShape,
        config: ParallelConfig,
    ) -> Vec<Diagnostic> {
        let mut out = divisibility_diags(&self.model, self.microbatches, config, Span::Plan, None);
        // only pay for a graph build when the cheap rules pass
        if out.is_empty() {
            if let Some(gpu) = &self.gpu {
                let graph = self.stage_graph(stage);
                if let Some(d) =
                    memory_fit_diag(&graph, config, gpu, self.headroom_frac, Span::Plan)
                {
                    out.push(d);
                }
            }
        }
        sort_diagnostics(&mut out);
        out
    }

    /// The search-engine predicate: `true` iff the candidate has no
    /// `Error`-severity finding.
    ///
    /// Note that if `model.batch` is not divisible by `microbatches`,
    /// *every* candidate is illegal and a filtered search will panic
    /// ("no covering partition survived the filter") — check `P1301`
    /// up front when the micro-batch count is user-supplied.
    pub fn is_legal(&self, stage: &StageSpec, mesh: MeshShape, config: ParallelConfig) -> bool {
        let diags = self.candidate_diagnostics(stage, mesh, config);
        if !has_errors(&diags) {
            return true;
        }
        self.rejected.fetch_add(1, Ordering::Relaxed);
        if diags.iter().any(|d| d.code.0 == 1401) {
            self.rejected_memory.fetch_add(1, Ordering::Relaxed);
        }
        false
    }

    /// How many candidates [`Self::is_legal`] has rejected so far.
    pub fn rejections(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }

    /// How many of those rejections were the liveness-tight `P1401`
    /// memory-fit rule (as opposed to pure divisibility arithmetic).
    pub fn memory_rejections(&self) -> usize {
        self.rejected_memory.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisibility_rejects_oversharded_configs() {
        // batch 4, 2 micro-batches -> per-microbatch 2; heads = 2
        let mut m = ModelSpec::gpt3_1p3b(4);
        m.num_heads = 2;
        m.num_layers = 4;
        let leg = StaticLegality::new(m, 2);
        let s = StageSpec::new(m, 0, 2);
        let mesh = MeshShape::new(2, 2);
        assert!(leg.is_legal(&s, mesh, ParallelConfig::new(2, 2)));
        assert!(leg.is_legal(&s, mesh, ParallelConfig::new(1, 2)));
        // dp=4 needs per-microbatch % 4 == 0
        assert!(!leg.is_legal(&s, mesh, ParallelConfig::new(4, 1)));
        // mp=4 needs heads % 4 == 0
        assert!(!leg.is_legal(&s, mesh, ParallelConfig::new(1, 4)));
        let diags = leg.candidate_diagnostics(&s, mesh, ParallelConfig::new(4, 4));
        let codes: Vec<u16> = diags.iter().map(|d| d.code.0).collect();
        assert_eq!(codes, vec![1302, 1304]);
    }

    #[test]
    fn indivisible_microbatch_count_rejects_everything() {
        let m = ModelSpec::gpt3_1p3b(8);
        let leg = StaticLegality::new(m, 3); // 8 % 3 != 0
        let s = StageSpec::new(m, 0, 4);
        let diags = leg.candidate_diagnostics(&s, MeshShape::new(1, 1), ParallelConfig::SERIAL);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.0, 1301);
    }

    #[test]
    fn memory_check_rejects_a_full_model_on_one_small_gpu() {
        // mirrors sim's Table IV observation: GPT-3 1.3B training state
        // cannot fit a single 24 GiB device
        let m = ModelSpec::gpt3_1p3b(1);
        let leg = StaticLegality::new(m, 1).with_memory_check(GpuSpec::a5500(), 0.1);
        let s = StageSpec::new(m, 0, m.num_layers);
        let diags = leg.candidate_diagnostics(&s, MeshShape::new(1, 1), ParallelConfig::SERIAL);
        assert!(
            diags.iter().any(|d| d.code.0 == 1401),
            "expected a P1401 memory-fit error, got {diags:?}"
        );
        assert!(!leg.is_legal(&s, MeshShape::new(1, 1), ParallelConfig::SERIAL));
    }

    #[test]
    fn stage_graphs_are_cached_by_layer_range() {
        let m = ModelSpec::gpt3_1p3b(8);
        let leg = StaticLegality::new(m, 1).with_memory_check(GpuSpec::a40(), 0.1);
        let s = StageSpec::new(m, 0, 2);
        for mp in [1, 2, 4] {
            let _ = leg.is_legal(&s, MeshShape::new(1, 4), ParallelConfig::new(1, mp));
        }
        assert_eq!(leg.graphs.lock().len(), 1);
    }
}
