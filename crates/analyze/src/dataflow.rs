//! Deterministic worklist fixpoint dataflow engine, and the backward
//! buffer-liveness analysis built on it.
//!
//! The engine (DESIGN.md §12) is the analyzer's substrate for any
//! analysis expressible as *join over flow neighbours, then a monotone
//! transfer*: a [`Lattice`] supplies the value type, direction,
//! boundary condition, transfer function, and join; [`solve`] runs the
//! classic worklist algorithm over a [`FlowGraph`] to the least
//! fixpoint.
//!
//! Determinism contract: the engine is **sequential by construction**.
//! The worklist is seeded in topological order (ascending node ids
//! forward, descending backward — `predtop-ir` graphs have dense
//! topologically ordered ids, so id order *is* a topological order),
//! nodes are processed FIFO, and successors are appended in a fixed
//! order. Thread-count invariance of the analyzer is preserved because
//! parallelism only ever happens *across* passes (the registry's
//! `par_map_with` fan-out), never inside a fixpoint solve — the same
//! discipline that keeps the plan search bit-identical at any
//! `PREDTOP_THREADS`.
//!
//! The first client is [`LiveBuffers`]: a backward liveness pass over
//! the stage's execution schedule that computes, for every program
//! point, the set of live activation buffers. [`peak_resident_bytes`]
//! folds a per-buffer weight profile (`sim::memory::activation_profile`)
//! over those sets to produce the peak-over-live-sets memory bound that
//! replaces the retain-everything sum in the `P1401` memory-fit rule.

use predtop_ir::{live, Graph};

use crate::diag::{Diagnostic, Severity, Span};
use crate::pass::GraphPass;

/// Which way values propagate through the flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Values flow along edges (entry nodes are the boundary).
    Forward,
    /// Values flow against edges (exit nodes are the boundary).
    Backward,
}

/// The flow relation a fixpoint runs over: explicit predecessor /
/// successor lists, decoupled from `predtop-ir` so the same engine can
/// analyse a data-dependence DAG or a linear execution schedule.
#[derive(Debug, Clone)]
pub struct FlowGraph {
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
}

impl FlowGraph {
    /// The data-dependence relation of `graph`: one flow node per IR
    /// node, edges exactly the def→use edges.
    pub fn dag(graph: &Graph) -> FlowGraph {
        let n = graph.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (src, dst) in graph.edges() {
            succs[src.index()].push(dst.0);
            preds[dst.index()].push(src.0);
        }
        FlowGraph { preds, succs }
    }

    /// The linear execution schedule `0 → 1 → … → n−1` (id order *is*
    /// schedule order for `predtop-ir` graphs). This is the flow graph
    /// program-point analyses like liveness run over.
    pub fn chain(n: usize) -> FlowGraph {
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for i in 1..n {
            preds[i].push(i as u32 - 1);
            succs[i - 1].push(i as u32);
        }
        FlowGraph { preds, succs }
    }

    /// Number of flow nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Is the flow graph empty?
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Flow predecessors of `i` under `dir` (the nodes whose outflow
    /// joins into `i`'s inflow).
    fn flow_preds(&self, i: usize, dir: Direction) -> &[u32] {
        match dir {
            Direction::Forward => &self.preds[i],
            Direction::Backward => &self.succs[i],
        }
    }

    /// Flow successors of `i` under `dir`.
    fn flow_succs(&self, i: usize, dir: Direction) -> &[u32] {
        match dir {
            Direction::Forward => &self.succs[i],
            Direction::Backward => &self.preds[i],
        }
    }
}

/// One dataflow analysis: a join-semilattice of values plus a monotone
/// transfer function.
///
/// Laws the engine relies on (asserted by the determinism and
/// convergence tests, spelled out in DESIGN.md §12):
///
/// * `join` is associative, commutative, and idempotent, and returns
///   `true` iff it changed the accumulator;
/// * `transfer` is monotone w.r.t. the join order;
/// * `bottom` is the join identity.
///
/// Under these laws the worklist terminates at the unique least
/// fixpoint regardless of iteration order — fixing the order anyway is
/// what makes the *trace* (and any tie-broken byproducts) reproducible.
pub trait Lattice {
    /// The lattice element attached to every program point.
    type Value: Clone + PartialEq;

    /// Which way values propagate.
    fn direction(&self) -> Direction;

    /// The join identity (initial inflow of non-boundary nodes).
    fn bottom(&self) -> Self::Value;

    /// Initial inflow of boundary nodes (entry nodes forward, exit
    /// nodes backward).
    fn boundary(&self, node: usize) -> Self::Value;

    /// The effect of executing `node` on a value flowing through it.
    fn transfer(&self, node: usize, inflow: &Self::Value) -> Self::Value;

    /// Fold `other` into `acc`; report whether `acc` changed.
    fn join(&self, acc: &mut Self::Value, other: &Self::Value) -> bool;
}

/// The least fixpoint of a [`Lattice`] over a [`FlowGraph`].
#[derive(Debug, Clone)]
pub struct Fixpoint<V> {
    /// Per-node inflow: the join of all flow-predecessor outflows (the
    /// boundary value for boundary nodes).
    pub inflow: Vec<V>,
    /// Per-node outflow: `transfer(node, inflow[node])`.
    pub outflow: Vec<V>,
    /// Transfer applications until the fixpoint was reached. On a DAG
    /// seeded in topological order this is exactly one per node.
    pub steps: usize,
}

/// Run the worklist algorithm to the least fixpoint.
///
/// Deterministic and sequential: seeded in topological order for the
/// lattice's direction, FIFO processing, fixed-order successor pushes.
pub fn solve<L: Lattice>(fg: &FlowGraph, lat: &L) -> Fixpoint<L::Value> {
    let n = fg.len();
    let dir = lat.direction();
    let mut inflow: Vec<L::Value> = (0..n)
        .map(|i| {
            if fg.flow_preds(i, dir).is_empty() {
                lat.boundary(i)
            } else {
                lat.bottom()
            }
        })
        .collect();
    let mut outflow: Vec<Option<L::Value>> = vec![None; n];

    let mut queue: std::collections::VecDeque<usize> = match dir {
        Direction::Forward => (0..n).collect(),
        Direction::Backward => (0..n).rev().collect(),
    };
    let mut on_list = vec![true; n];
    let mut steps = 0usize;

    while let Some(i) = queue.pop_front() {
        on_list[i] = false;
        let out = lat.transfer(i, &inflow[i]);
        steps += 1;
        if outflow[i].as_ref() == Some(&out) {
            continue;
        }
        for &s in fg.flow_succs(i, dir) {
            let s = s as usize;
            if lat.join(&mut inflow[s], &out) && !on_list[s] {
                on_list[s] = true;
                queue.push_back(s);
            }
        }
        outflow[i] = Some(out);
    }

    Fixpoint {
        inflow,
        outflow: outflow
            .into_iter()
            .map(|v| v.expect("every node visited"))
            .collect(),
        steps,
    }
}

// ---------------------------------------------------------------------
// Bit sets: the workhorse lattice value.
// ---------------------------------------------------------------------

/// A fixed-capacity bit set over `0..n`, the value type of set-based
/// lattices (liveness, reachability). Join = union.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set with capacity for members `0..n`.
    pub fn empty(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert `i`; returns `true` if it was absent.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let absent = self.words[w] & b == 0;
        self.words[w] |= b;
        absent
    }

    /// Remove `i`; returns `true` if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        present
    }

    /// Is `i` a member?
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Union `other` in; returns `true` if any bit was added.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1u64 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

// ---------------------------------------------------------------------
// Backward buffer liveness over the execution schedule.
// ---------------------------------------------------------------------

/// Backward liveness of activation buffers over a stage's execution
/// schedule (the [`FlowGraph::chain`] of its nodes in id order).
///
/// Value at program point *i* (`outflow[i]` of the solve) = the buffers
/// live *before* node `i` executes: `gen(i) ∪ (live_after(i) ∖ {i})`,
/// where `gen(i)` is the buffers node `i` reads (its data
/// predecessors) and the exit boundary is the retained set — every
/// buffer the backward pass will need ([`predtop_ir::live`]). Transient
/// buffers (prunable-op outputs) therefore drop out of the live set
/// past their last use, which is exactly the slack the peak bound
/// recovers.
pub struct LiveBuffers<'g> {
    graph: &'g Graph,
    retained: BitSet,
}

impl<'g> LiveBuffers<'g> {
    /// The liveness lattice for `graph`'s schedule.
    pub fn new(graph: &'g Graph) -> LiveBuffers<'g> {
        let mut retained = BitSet::empty(graph.len());
        for id in live::retained_set(graph) {
            retained.insert(id.index());
        }
        LiveBuffers { graph, retained }
    }
}

impl Lattice for LiveBuffers<'_> {
    type Value = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BitSet {
        BitSet::empty(self.graph.len())
    }

    fn boundary(&self, _node: usize) -> BitSet {
        // live at exit: everything the backward pass reads
        self.retained.clone()
    }

    fn transfer(&self, node: usize, live_after: &BitSet) -> BitSet {
        let mut v = live_after.clone();
        v.remove(node); // the def kills its own buffer going backward
        for p in self.graph.preds(predtop_ir::NodeId(node as u32)) {
            v.insert(p.index());
        }
        v
    }

    fn join(&self, acc: &mut BitSet, other: &BitSet) -> bool {
        acc.union_with(other)
    }
}

/// Per-program-point resident sets of `graph`: entry `i` is the set of
/// buffers occupying memory *while node `i` executes* (the buffers live
/// before `i`, plus `i`'s own output being written).
pub fn resident_sets(graph: &Graph) -> Vec<BitSet> {
    let fg = FlowGraph::chain(graph.len());
    let lat = LiveBuffers::new(graph);
    let fix = solve(&fg, &lat);
    fix.outflow
        .into_iter()
        .enumerate()
        .map(|(i, mut live_in)| {
            live_in.insert(i);
            live_in
        })
        .collect()
}

/// The peak-over-live-sets memory bound: the maximum, over all program
/// points, of the summed `weights` of the resident buffer set. Returns
/// `(peak_bytes, argmax_point)`; `(0, 0)` for an empty graph.
///
/// With `weights = sim::memory::activation_profile(graph, plan)` this
/// is a liveness-tight replacement for the retain-everything
/// `activations` sum: every resident set is a subset of all nodes, so
/// the peak is provably ≤ the sum, and it is still sound because the
/// retained boundary keeps every backward-pass input in scope.
pub fn peak_resident_bytes(graph: &Graph, weights: &[u64]) -> (u64, usize) {
    assert_eq!(weights.len(), graph.len(), "one weight per node");
    let mut best = (0u64, 0usize);
    for (i, set) in resident_sets(graph).iter().enumerate() {
        let bytes: u64 = set.iter().map(|j| weights[j]).sum();
        if bytes > best.0 {
            best = (bytes, i);
        }
    }
    best
}

// ---------------------------------------------------------------------
// The liveness graph pass (P05xx block).
// ---------------------------------------------------------------------

/// `liveness` — reports the peak-resident activation footprint of the
/// graph's schedule versus the retain-everything sum (`P0501`, info).
///
/// The serial, unsharded footprint is a property of the graph alone, so
/// this runs as a graph pass; the plan-aware variant of the same bound
/// feeds the `P1401` memory-fit rule via `stage_memory_liveness_bound`.
pub struct LivenessPass;

impl GraphPass for LivenessPass {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn description(&self) -> &'static str {
        "peak resident activation bytes over the execution schedule"
    }

    fn run(&self, graph: &Graph) -> Vec<Diagnostic> {
        let weights = serial_activation_weights(graph);
        let sum: u64 = weights.iter().sum();
        if sum == 0 {
            return Vec::new();
        }
        let (peak, at) = peak_resident_bytes(graph, &weights);
        let pct = 100.0 * peak as f64 / sum as f64;
        vec![Diagnostic::new(
            501,
            Severity::Info,
            Span::Graph,
            format!(
                "liveness: peak resident activations {peak} bytes at point {at} \
                 of {} ({pct:.1}% of the {sum}-byte retain-everything sum)",
                graph.len()
            ),
        )]
    }
}

/// Serial (unsharded) activation weights: what each node's buffer
/// occupies with `dp = mp = 1`. Mirrors `sim::memory`'s accounting —
/// operator outputs and the stage's incoming activation count, weights
/// and bookkeeping nodes do not — without needing an `IntraPlan`.
pub fn serial_activation_weights(graph: &Graph) -> Vec<u64> {
    use predtop_ir::NodeKind;
    graph
        .nodes()
        .iter()
        .map(|node| match node.kind {
            NodeKind::Input
                if node.dtype.is_float() && node.id.index() == 0 && node.shape.rank() == 2 =>
            {
                node.output_bytes()
            }
            NodeKind::Operator(_) => node.output_bytes(),
            _ => 0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use predtop_ir::{DType, GraphBuilder, NodeId, OpKind, Shape};

    fn diamond() -> Graph {
        // 0: input → 1: reshape (transient) → {2: exp, 3: neg} → 4: add
        // → 5: output
        let mut b = GraphBuilder::new();
        let x = b.input(Shape::from([4, 8]), DType::F32);
        let r = b.op(OpKind::Reshape, &[x], Shape::from([8, 4]), DType::F32);
        let e = b.unary(OpKind::Exp, r);
        let n = b.unary(OpKind::Neg, r);
        let a = b.binary(OpKind::Add, e, n);
        b.finish(&[a]).unwrap()
    }

    #[test]
    fn chain_liveness_matches_hand_computation() {
        let g = diamond();
        let sets = resident_sets(&g);
        let as_vecs: Vec<Vec<usize>> = sets.iter().map(|s| s.iter().collect()).collect();
        // retained = {0,2,3,4,5}; transient reshape 1 dies after node 3
        assert_eq!(as_vecs[0], vec![0]);
        assert_eq!(as_vecs[1], vec![0, 1]);
        assert_eq!(as_vecs[2], vec![0, 1, 2]);
        assert_eq!(as_vecs[3], vec![0, 1, 2, 3]);
        assert_eq!(as_vecs[4], vec![0, 2, 3, 4], "reshape buffer freed");
        assert_eq!(as_vecs[5], vec![0, 2, 3, 4, 5]);
    }

    #[test]
    fn peak_is_below_sum_when_transients_die() {
        let g = diamond();
        let weights = serial_activation_weights(&g);
        let sum: u64 = weights.iter().sum();
        let (peak, _) = peak_resident_bytes(&g, &weights);
        assert!(peak > 0);
        assert!(
            peak < sum,
            "transient reshape must create slack: {peak} vs {sum}"
        );
    }

    #[test]
    fn dag_solve_converges_in_one_sweep() {
        // forward reaching-roots analysis over the data-dependence DAG
        struct Roots<'g> {
            graph: &'g Graph,
        }
        impl Lattice for Roots<'_> {
            type Value = BitSet;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn bottom(&self) -> BitSet {
                BitSet::empty(self.graph.len())
            }
            fn boundary(&self, _n: usize) -> BitSet {
                BitSet::empty(self.graph.len())
            }
            fn transfer(&self, node: usize, inflow: &BitSet) -> BitSet {
                let mut v = inflow.clone();
                if self.graph.preds(NodeId(node as u32)).is_empty() {
                    v.insert(node);
                }
                v
            }
            fn join(&self, acc: &mut BitSet, other: &BitSet) -> bool {
                acc.union_with(other)
            }
        }

        let g = diamond();
        let fg = FlowGraph::dag(&g);
        let fix = solve(&fg, &Roots { graph: &g });
        // topological seeding: exactly one transfer per node
        assert_eq!(fix.steps, g.len());
        // every node is reached by root 0
        for i in 0..g.len() {
            assert!(fix.outflow[i].contains(0), "node {i} misses root 0");
        }
    }

    #[test]
    fn solve_is_reproducible() {
        let g = diamond();
        let fg = FlowGraph::chain(g.len());
        let lat = LiveBuffers::new(&g);
        let a = solve(&fg, &lat);
        let b = solve(&fg, &lat);
        assert_eq!(a.outflow, b.outflow);
        assert_eq!(a.inflow, b.inflow);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::empty(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        let mut t = BitSet::empty(130);
        t.insert(64);
        assert!(s.union_with(&t));
        assert!(!s.union_with(&t));
        assert!(s.remove(64));
        assert!(!s.remove(64));
    }

    #[test]
    fn liveness_pass_reports_peak_info() {
        let g = diamond();
        let diags = LivenessPass.run(&g);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.0, 501);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("peak resident"));
    }
}
