//! Stack-ordering lints (`P2xxx`): check a service middleware
//! composition against DESIGN.md §10's ordering rules.
//!
//! `predtop-service`'s layers are value-transparent but *not*
//! order-insensitive: a [`Retry`](predtop_service::Retry) installed
//! inside [`FaultInject`](predtop_service::FaultInject) never sees the
//! injected faults it exists to absorb, and a
//! [`Memoize`](predtop_service::Memoize) inside
//! [`Retry`](predtop_service::Retry) caches each query before the retry
//! loop can scrub transient failures out of it. The canonical resilient
//! order, innermost first, is
//!
//! ```text
//! FaultInject → Deadline → [CircuitBreaker] → Retry → [Persist] → Memoize → Batched → Instrumented
//! ```
//!
//! [`analyze_stack`] checks a [`StackSpec`] — either one built live by
//! `ServiceBuilder` (each combinator records its tag) or one written
//! down with [`StackSpec::from_layers`] — and reports violations as
//! ordinary [`Diagnostic`]s with [`Span::Layer`] locations:
//!
//! | code    | severity | rule |
//! |---------|----------|------|
//! | `P2001` | error    | duplicate layer family |
//! | `P2101` | error    | `Retry` inside `FaultInject` |
//! | `P2102` | error    | `CircuitBreaker` outside `Retry` |
//! | `P2103` | error    | `Memoize` inside `Retry` |
//! | `P2104` | error    | `Deadline` outside `Batched` |
//! | `P2105` | error    | `Memoize` outside `Batched` |
//! | `P2106` | error    | `Persist` outside `Memoize` |
//! | `P2107` | error    | `Persist` outside `Batched` |
//! | `P2201` | warning  | `Instrumented` not outermost |
//! | `P2202` | warning  | `Retry` without a `Deadline` budget |
//! | `P2203` | warning  | `Persist` without a `Memoize` above it |
//!
//! `predtop-lint --stack` runs these over the stacks the CLI search
//! actually builds, and the CLI asserts a clean report on its own stack
//! before searching.

use predtop_service::{LayerTag, StackSpec};

use crate::diag::{sort_diagnostics, Diagnostic, Severity, Span};

/// Innermost position of a layer in `tags` matching `tag`'s family
/// (so either memoize mode satisfies a `Memoize` probe).
fn position(tags: &[LayerTag], tag: LayerTag) -> Option<usize> {
    tags.iter().position(|t| t.same_family(tag))
}

/// Emit an ordering error: the layer at `outer` must sit *inside* the
/// layer at `inner` for the stack to behave, but was installed outside.
fn misordered(
    code: u16,
    tags: &[LayerTag],
    outer: usize,
    inner: usize,
    consequence: &str,
) -> Diagnostic {
    Diagnostic::new(
        code,
        Severity::Error,
        Span::Layer(outer),
        format!(
            "{} (layer {}) is installed outside {} (layer {}): {}",
            tags[outer].label(),
            outer,
            tags[inner].label(),
            inner,
            consequence
        ),
    )
    .with_suggestion(format!(
        "wrap {} before {} when building the stack",
        tags[outer].label(),
        tags[inner].label()
    ))
}

/// Check `spec` against the DESIGN.md §10 ordering rules. Layer indices
/// in the returned [`Span::Layer`] spans count from the innermost layer
/// (position 0 sits directly over the base source). An empty report
/// means the composition is canonical-compatible.
pub fn analyze_stack(spec: &StackSpec) -> Vec<Diagnostic> {
    let tags = spec.layers();
    let mut out = Vec::new();

    // P2001: one layer family installed twice. The outer copy either
    // shadows the inner (double caching) or double-applies a policy.
    for (j, tag) in tags.iter().enumerate() {
        if let Some(i) = tags[..j].iter().position(|t| t.same_family(*tag)) {
            out.push(
                Diagnostic::new(
                    2001,
                    Severity::Error,
                    Span::Layer(j),
                    format!(
                        "duplicate {} layer: already installed at layer {} ({})",
                        tag.label(),
                        i,
                        tags[i].label()
                    ),
                )
                .with_suggestion("install each layer family at most once"),
            );
        }
    }

    let fault = position(tags, LayerTag::FaultInject);
    let deadline = position(tags, LayerTag::Deadline);
    let breaker = position(tags, LayerTag::CircuitBreaker);
    let retry = position(tags, LayerTag::Retry);
    let persist = position(tags, LayerTag::Persist);
    let memoize = position(tags, LayerTag::Memoize);
    let batched = position(tags, LayerTag::Batched);
    let instrumented = position(tags, LayerTag::Instrumented);

    // P2101: Retry must wrap FaultInject — a retry loop below the fault
    // layer re-attempts nothing, because faults are injected above it.
    if let (Some(r), Some(f)) = (retry, fault) {
        if r < f {
            out.push(misordered(
                2101,
                tags,
                f,
                r,
                "injected faults bypass the retry loop entirely",
            ));
        }
    }

    // P2102: CircuitBreaker sits inside Retry, shielding the source —
    // outside Retry it trips on the pre-retry failure stream and sheds
    // queries the retry loop would have recovered.
    if let (Some(b), Some(r)) = (breaker, retry) {
        if b > r {
            out.push(misordered(
                2102,
                tags,
                b,
                r,
                "the breaker counts pre-retry failures and sheds recoverable load",
            ));
        }
    }

    // P2103: Memoize goes outside Retry so only scrubbed successes are
    // cached; inside, the cache takes a miss per transient failure.
    if let (Some(m), Some(r)) = (memoize, retry) {
        if m < r {
            out.push(misordered(
                2103,
                tags,
                r,
                m,
                "transient failures reach the cache before the retry loop scrubs them",
            ));
        }
    }

    // P2104: Deadline goes inside Batched so per-query budgets apply to
    // each worker's slice; outside, one budget spans the whole batch.
    if let (Some(d), Some(b)) = (deadline, batched) {
        if d > b {
            out.push(misordered(
                2104,
                tags,
                d,
                b,
                "one wall-clock budget spans the whole fanned-out batch",
            ));
        }
    }

    // P2105: Memoize goes inside Batched — outside, workers race to the
    // source for the same key and batch-level hits are never counted.
    if let (Some(m), Some(b)) = (memoize, batched) {
        if m > b {
            out.push(misordered(
                2105,
                tags,
                m,
                b,
                "batch fan-out bypasses the cache, so repeat queries recompute",
            ));
        }
    }

    // P2106: Persist is the *disk* tier and goes inside Memoize —
    // outside, every in-run repeat of a memoized key still pays a disk
    // read before the memory cache can answer it.
    if let (Some(p), Some(m)) = (persist, memoize) {
        if p > m {
            out.push(misordered(
                2106,
                tags,
                p,
                m,
                "in-run repeats pay a disk read the memory cache should absorb",
            ));
        }
    }

    // P2107: Persist goes inside Batched — Persist keeps the default
    // serial `query_batch`, so installed outside it serializes the whole
    // fan-out through one disk-checking loop.
    if let (Some(p), Some(b)) = (persist, batched) {
        if p > b {
            out.push(misordered(
                2107,
                tags,
                p,
                b,
                "Persist's serial query_batch serializes the parallel fan-out",
            ));
        }
    }

    // P2201: Instrumented should be outermost — anywhere lower it
    // under-counts what the caller actually observes.
    if let Some(i) = instrumented {
        if i + 1 != tags.len() {
            out.push(
                Diagnostic::new(
                    2201,
                    Severity::Warn,
                    Span::Layer(i),
                    format!(
                        "Instrumented (layer {}) is not the outermost layer: its counters miss \
                         the {} layer(s) above it",
                        i,
                        tags.len() - 1 - i
                    ),
                )
                .with_suggestion("call .instrumented() last, just before .finish()"),
            );
        }
    }

    // P2202: Retry without a Deadline has no wall-clock bound on its
    // backoff loop — a persistently failing source stalls the search.
    if let (Some(r), None) = (retry, deadline) {
        out.push(
            Diagnostic::new(
                2202,
                Severity::Warn,
                Span::Layer(r),
                "Retry is installed without a Deadline: the backoff loop has no wall-clock bound",
            )
            .with_suggestion("add .deadline(DeadlinePolicy::..) beneath the retry layer"),
        );
    }

    // P2203: Persist without a Memoize above it — correct but slow:
    // with no memory tier, every repeat of a key hits the disk tier.
    if let (Some(p), None) = (persist, memoize) {
        out.push(
            Diagnostic::new(
                2203,
                Severity::Warn,
                Span::Layer(p),
                "Persist is installed without a Memoize above it: every in-run repeat pays a \
                 disk read",
            )
            .with_suggestion("add .memoize() or .memoize_structural() above the persist layer"),
        );
    }

    sort_diagnostics(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;

    fn codes(diags: &[Diagnostic]) -> Vec<u16> {
        diags.iter().map(|d| d.code.0).collect()
    }

    #[test]
    fn canonical_chaos_stack_lints_clean() {
        let spec = StackSpec::from_layers([
            LayerTag::FaultInject,
            LayerTag::Deadline,
            LayerTag::CircuitBreaker,
            LayerTag::Retry,
            LayerTag::Persist,
            LayerTag::Memoize,
            LayerTag::Batched,
            LayerTag::Instrumented,
        ]);
        assert_eq!(analyze_stack(&spec), vec![]);
    }

    #[test]
    fn persisted_search_stack_lints_clean() {
        let spec = StackSpec::from_layers([
            LayerTag::Persist,
            LayerTag::MemoizeStructural,
            LayerTag::Batched,
            LayerTag::Instrumented,
        ]);
        assert_eq!(analyze_stack(&spec), vec![]);
    }

    #[test]
    fn persist_outside_memoize_and_batched_is_rejected() {
        let spec = StackSpec::from_layers([
            LayerTag::MemoizeStructural,
            LayerTag::Batched,
            LayerTag::Persist,
            LayerTag::Instrumented,
        ]);
        let diags = analyze_stack(&spec);
        assert!(has_errors(&diags));
        assert_eq!(codes(&diags), vec![2106, 2107]);
        assert_eq!(diags[0].span, Span::Layer(2));
        assert_eq!(diags[1].span, Span::Layer(2));
    }

    #[test]
    fn persist_without_memoize_warns() {
        let spec =
            StackSpec::from_layers([LayerTag::Persist, LayerTag::Batched, LayerTag::Instrumented]);
        let diags = analyze_stack(&spec);
        assert!(!has_errors(&diags));
        assert_eq!(codes(&diags), vec![2203]);
        assert_eq!(diags[0].span, Span::Layer(0));
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn default_search_stack_lints_clean() {
        let spec = StackSpec::from_layers([
            LayerTag::MemoizeStructural,
            LayerTag::Batched,
            LayerTag::Instrumented,
        ]);
        assert_eq!(analyze_stack(&spec), vec![]);
    }

    #[test]
    fn misordered_chaos_stack_is_rejected() {
        // Retry under FaultInject, Deadline over Batched
        let spec = StackSpec::from_layers([
            LayerTag::Retry,
            LayerTag::FaultInject,
            LayerTag::Batched,
            LayerTag::Deadline,
            LayerTag::Instrumented,
        ]);
        let diags = analyze_stack(&spec);
        assert!(has_errors(&diags));
        assert_eq!(codes(&diags), vec![2101, 2104]);
        assert_eq!(diags[0].span, Span::Layer(1));
        assert_eq!(diags[1].span, Span::Layer(3));
    }

    #[test]
    fn duplicate_memoize_modes_are_one_family() {
        let spec = StackSpec::from_layers([
            LayerTag::MemoizeStructural,
            LayerTag::Memoize,
            LayerTag::Batched,
        ]);
        let diags = analyze_stack(&spec);
        assert_eq!(codes(&diags), vec![2001]);
        assert_eq!(diags[0].span, Span::Layer(1));
    }

    #[test]
    fn breaker_and_cache_misplacement_are_errors() {
        // breaker outside retry; memoize inside retry
        let spec = StackSpec::from_layers([
            LayerTag::Memoize,
            LayerTag::Deadline,
            LayerTag::Retry,
            LayerTag::CircuitBreaker,
            LayerTag::Batched,
        ]);
        let diags = analyze_stack(&spec);
        assert_eq!(codes(&diags), vec![2103, 2102]);
        assert_eq!(diags[0].span, Span::Layer(2));
        assert_eq!(diags[1].span, Span::Layer(3));
    }

    #[test]
    fn memoize_outside_batched_is_an_error() {
        let spec = StackSpec::from_layers([LayerTag::Batched, LayerTag::Memoize]);
        assert_eq!(codes(&analyze_stack(&spec)), vec![2105]);
    }

    #[test]
    fn retry_without_deadline_warns() {
        let spec = StackSpec::from_layers([
            LayerTag::FaultInject,
            LayerTag::Retry,
            LayerTag::Memoize,
            LayerTag::Batched,
        ]);
        let diags = analyze_stack(&spec);
        assert_eq!(codes(&diags), vec![2202]);
        assert_eq!(diags[0].severity, Severity::Warn);
    }

    #[test]
    fn empty_spec_is_trivially_clean() {
        assert_eq!(analyze_stack(&StackSpec::new()), vec![]);
    }
}
