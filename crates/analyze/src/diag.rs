//! Structured diagnostics: codes, severities, spans, and deterministic
//! ordering.
//!
//! Every finding any pass produces is a [`Diagnostic`] — a stable
//! machine-readable code (`P0107`), a [`Severity`], a [`Span`] locating
//! the finding in a graph or plan, a human-readable message, and an
//! optional suggestion. The code numbering scheme (documented in
//! DESIGN.md §7) reserves the `P01xx` block for graph semantics, `P02xx`
//! for graph flow, `P03xx` for dtype propagation, `P11xx` for plan
//! structure, `P12xx` for device accounting, `P13xx` for sharding
//! divisibility, and `P14xx` for memory fit.

use predtop_ir::NodeId;

/// A stable diagnostic code, rendered as `P` + four digits (`P0107`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{:04}", self.0)
    }
}

/// How serious a finding is. `Error` findings gate CI and the checked
/// plan search; `Warn` marks probable-but-not-certain defects; `Info`
/// marks opportunities (e.g. constant-foldable subgraphs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational finding; never gates anything.
    Info,
    /// Probable defect or inefficiency; does not gate CI.
    Warn,
    /// Definite rule violation; non-zero lint exit, rejected candidates.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers (`error`, `warning`,
    /// `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// The whole graph (no finer location applies).
    Graph,
    /// One node of a graph.
    Node(NodeId),
    /// One stage of a pipeline plan (by stage index).
    Stage(usize),
    /// The whole pipeline plan.
    Plan,
    /// One layer of a service stack (by position, innermost first).
    Layer(usize),
}

impl Span {
    /// Total-order key: graph-level first, then nodes by id, then stages
    /// by index, then plan-level. Part of the deterministic-ordering
    /// contract of [`sort_diagnostics`].
    fn order_key(self) -> (u8, u64) {
        match self {
            Span::Graph => (0, 0),
            Span::Node(id) => (1, id.0 as u64),
            Span::Stage(i) => (2, i as u64),
            Span::Plan => (3, 0),
            Span::Layer(i) => (4, i as u64),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Span::Graph => f.write_str("graph"),
            Span::Node(id) => write!(f, "node {}", id.0),
            Span::Stage(i) => write!(f, "stage {i}"),
            Span::Plan => f.write_str("plan"),
            Span::Layer(i) => write!(f, "layer {i}"),
        }
    }
}

/// A machine-applicable structured edit to a `PipelinePlan`, in the
/// spirit of rustc's `MachineApplicable` suggestions: precise enough
/// that `predtop-lint --fix` can apply it without human judgement.
/// Every variant sets fields to explicit values (rather than deltas),
/// so re-applying an edit is a no-op — the root of the fix loop's
/// idempotence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixEdit {
    /// Set the plan's micro-batch count.
    SetMicrobatches {
        /// The new count.
        value: usize,
    },
    /// Set one stage's `(dp, mp)` parallel configuration.
    SetStageConfig {
        /// Stage index.
        stage: usize,
        /// New data-parallel degree.
        dp: usize,
        /// New model-parallel degree.
        mp: usize,
    },
    /// Set one stage's sub-mesh shape and matching configuration.
    SetStageMesh {
        /// Stage index.
        stage: usize,
        /// New node count.
        nodes: usize,
        /// New GPUs per node.
        gpus_per_node: usize,
        /// New data-parallel degree (must fill the mesh with `mp`).
        dp: usize,
        /// New model-parallel degree.
        mp: usize,
    },
}

/// A machine-applicable fix attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// What applying the edit does, in imperative mood.
    pub description: String,
    /// The structured edit itself.
    pub edit: FixEdit,
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: Code,
    /// Severity class.
    pub severity: Severity,
    /// Location of the finding.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
    /// Optional remediation hint, rendered as a `help:` line.
    pub suggestion: Option<String>,
    /// Optional machine-applicable fix, applied by `predtop-lint --fix`.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Construct a diagnostic without a suggestion.
    pub fn new(
        code: u16,
        severity: Severity,
        span: Span,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: Code(code),
            severity,
            span,
            message: message.into(),
            suggestion: None,
            fix: None,
        }
    }

    /// Attach a remediation hint.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// Attach a machine-applicable fix.
    pub fn with_fix(mut self, description: impl Into<String>, edit: FixEdit) -> Diagnostic {
        self.fix = Some(Fix {
            description: description.into(),
            edit,
        });
        self
    }
}

/// Sort diagnostics into the canonical order: span (graph, nodes by id,
/// stages by index, plan), then code, then message. Passes fan out
/// across worker threads, so the registry always applies this sort —
/// the rendered output is bit-identical at any thread count.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        a.span
            .order_key()
            .cmp(&b.span.order_key())
            .then(a.code.cmp(&b.code))
            .then(a.message.cmp(&b.message))
    });
}

/// The highest severity present, or `None` for a clean report.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Does the report contain any `Error`-severity finding?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_renders_with_leading_zeros() {
        assert_eq!(Code(107).to_string(), "P0107");
        assert_eq!(Code(1401).to_string(), "P1401");
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Warn.label(), "warning");
    }

    #[test]
    fn sort_is_span_then_code_then_message() {
        let mut diags = vec![
            Diagnostic::new(1301, Severity::Error, Span::Plan, "z"),
            Diagnostic::new(201, Severity::Warn, Span::Node(NodeId(7)), "dead"),
            Diagnostic::new(107, Severity::Error, Span::Node(NodeId(3)), "b"),
            Diagnostic::new(107, Severity::Error, Span::Node(NodeId(3)), "a"),
            Diagnostic::new(1101, Severity::Error, Span::Stage(0), "s"),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<Span> = diags.iter().map(|d| d.span).collect();
        assert_eq!(
            order,
            vec![
                Span::Node(NodeId(3)),
                Span::Node(NodeId(3)),
                Span::Node(NodeId(7)),
                Span::Stage(0),
                Span::Plan,
            ]
        );
        assert_eq!(diags[0].message, "a");
        assert!(has_errors(&diags));
        assert_eq!(max_severity(&diags), Some(Severity::Error));
        assert_eq!(max_severity(&[]), None);
    }
}
