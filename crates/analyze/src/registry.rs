//! The pass registry: default pass sets and the parallel driver.
//!
//! Passes are independent, so the driver fans them out across
//! `predtop-runtime`'s worker pool (`par_map_with`) and re-sorts the
//! merged findings into the canonical span/code/message order — the
//! report is bit-identical at any thread count.

use predtop_ir::Graph;
use predtop_models::ModelSpec;
use predtop_parallel::PipelinePlan;
use predtop_runtime::{configured_threads, par_map_with};

use crate::diag::{sort_diagnostics, Diagnostic};
use crate::graph_passes::{ConstFoldPass, DTypePass, DeadCodePass, SemanticsPass};
use crate::pass::{GraphPass, PlanCheckOptions, PlanContext, PlanPass};
use crate::plan_passes::{DeviceBudgetPass, DivisibilityPass, MemoryFitPass, PlanStructurePass};

/// Every graph pass, in registry order: `semantics`, `dead-code`,
/// `dtype`, `const-fold`.
pub fn default_graph_passes() -> Vec<Box<dyn GraphPass>> {
    vec![
        Box::new(SemanticsPass),
        Box::new(DeadCodePass),
        Box::new(DTypePass),
        Box::new(ConstFoldPass),
    ]
}

/// Every plan pass, in registry order: `plan-structure`,
/// `device-budget`, `divisibility`, `memory-fit`.
pub fn default_plan_passes() -> Vec<Box<dyn PlanPass>> {
    vec![
        Box::new(PlanStructurePass),
        Box::new(DeviceBudgetPass),
        Box::new(DivisibilityPass),
        Box::new(MemoryFitPass),
    ]
}

/// Run every default graph pass over `graph` on `threads` workers and
/// return the merged findings in canonical order.
pub fn analyze_graph_with_threads(graph: &Graph, threads: usize) -> Vec<Diagnostic> {
    let passes = default_graph_passes();
    let mut diags: Vec<Diagnostic> = par_map_with(passes, threads, |p| p.run(graph))
        .into_iter()
        .flatten()
        .collect();
    sort_diagnostics(&mut diags);
    diags
}

/// [`analyze_graph_with_threads`] on the pool size `predtop-runtime`
/// derives from `PREDTOP_THREADS`.
pub fn analyze_graph(graph: &Graph) -> Vec<Diagnostic> {
    analyze_graph_with_threads(graph, configured_threads())
}

/// Run every default plan pass over `plan` on `threads` workers and
/// return the merged findings in canonical order.
pub fn analyze_plan_with_threads(
    plan: &PipelinePlan,
    model: &ModelSpec,
    options: &PlanCheckOptions,
    threads: usize,
) -> Vec<Diagnostic> {
    let passes = default_plan_passes();
    let ctx = PlanContext {
        plan,
        model,
        options,
    };
    let mut diags: Vec<Diagnostic> = par_map_with(passes, threads, |p| p.run(&ctx))
        .into_iter()
        .flatten()
        .collect();
    sort_diagnostics(&mut diags);
    diags
}

/// [`analyze_plan_with_threads`] on the pool size `predtop-runtime`
/// derives from `PREDTOP_THREADS`.
pub fn analyze_plan(
    plan: &PipelinePlan,
    model: &ModelSpec,
    options: &PlanCheckOptions,
) -> Vec<Diagnostic> {
    analyze_plan_with_threads(plan, model, options, configured_threads())
}
