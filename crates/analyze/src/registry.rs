//! The pass registry: default pass sets and the parallel driver.
//!
//! Passes are independent, so the driver fans them out across
//! `predtop-runtime`'s worker pool (`par_map_with`) and re-sorts the
//! merged findings into the canonical span/code/message order — the
//! report is bit-identical at any thread count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use predtop_ir::Graph;
use predtop_models::ModelSpec;
use predtop_parallel::PipelinePlan;
use predtop_runtime::{configured_threads, par_map_with};

use crate::dataflow::LivenessPass;
use crate::diag::{sort_diagnostics, Diagnostic};
use crate::graph_passes::{ConstFoldPass, DTypePass, DeadCodePass, SemanticsPass};
use crate::pass::{GraphPass, PlanCheckOptions, PlanContext, PlanPass};
use crate::plan_passes::{DeviceBudgetPass, DivisibilityPass, MemoryFitPass, PlanStructurePass};

/// Every graph pass, in registry order: `semantics`, `dead-code`,
/// `dtype`, `const-fold`, `liveness`.
pub fn default_graph_passes() -> Vec<Box<dyn GraphPass>> {
    vec![
        Box::new(SemanticsPass),
        Box::new(DeadCodePass),
        Box::new(DTypePass),
        Box::new(ConstFoldPass),
        Box::new(LivenessPass),
    ]
}

/// Every plan pass, in registry order: `plan-structure`,
/// `device-budget`, `divisibility`, `memory-fit`.
pub fn default_plan_passes() -> Vec<Box<dyn PlanPass>> {
    vec![
        Box::new(PlanStructurePass),
        Box::new(DeviceBudgetPass),
        Box::new(DivisibilityPass),
        Box::new(MemoryFitPass),
    ]
}

/// Run every default graph pass over `graph` on `threads` workers and
/// return the merged findings in canonical order.
pub fn analyze_graph_with_threads(graph: &Graph, threads: usize) -> Vec<Diagnostic> {
    let passes = default_graph_passes();
    let mut diags: Vec<Diagnostic> = par_map_with(passes, threads, |p| p.run(graph))
        .into_iter()
        .flatten()
        .collect();
    sort_diagnostics(&mut diags);
    diags
}

/// [`analyze_graph_with_threads`] on the pool size `predtop-runtime`
/// derives from `PREDTOP_THREADS`.
pub fn analyze_graph(graph: &Graph) -> Vec<Diagnostic> {
    analyze_graph_with_threads(graph, configured_threads())
}

/// Run every default plan pass over `plan` on `threads` workers and
/// return the merged findings in canonical order.
pub fn analyze_plan_with_threads(
    plan: &PipelinePlan,
    model: &ModelSpec,
    options: &PlanCheckOptions,
    threads: usize,
) -> Vec<Diagnostic> {
    let passes = default_plan_passes();
    let ctx = PlanContext {
        plan,
        model,
        options,
    };
    let mut diags: Vec<Diagnostic> = par_map_with(passes, threads, |p| p.run(&ctx))
        .into_iter()
        .flatten()
        .collect();
    sort_diagnostics(&mut diags);
    diags
}

/// [`analyze_plan_with_threads`] on the pool size `predtop-runtime`
/// derives from `PREDTOP_THREADS`.
pub fn analyze_plan(
    plan: &PipelinePlan,
    model: &ModelSpec,
    options: &PlanCheckOptions,
) -> Vec<Diagnostic> {
    analyze_plan_with_threads(plan, model, options, configured_threads())
}

/// Hit/miss counts of a [`GraphLintCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintCacheStats {
    /// Reports served from the cache.
    pub hits: u64,
    /// Reports computed by running the graph passes.
    pub misses: u64,
}

/// A graph-pass result cache keyed on [`Graph::structural_hash`].
///
/// `predtop-lint` analyzes every stage graph of every benchmark model,
/// and a model's interior layer windows are structurally identical —
/// the same diagnostics fall out of each. Keying the memo on the
/// structural hash (node kinds, shapes, dtypes, and edges, but *not*
/// node identities) lets isomorphic stages share one analysis, the same
/// trick the plan search's structural memoization plays on latencies.
/// All diagnostics the graph passes emit are functions of structure
/// alone, so sharing is sound.
pub struct GraphLintCache {
    map: Mutex<HashMap<u64, Arc<Vec<Diagnostic>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for GraphLintCache {
    fn default() -> GraphLintCache {
        GraphLintCache::new()
    }
}

impl GraphLintCache {
    /// An empty cache.
    pub fn new() -> GraphLintCache {
        GraphLintCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// [`analyze_graph`] through the cache: the first structurally
    /// distinct graph pays for the passes, every isomorphic repeat hits.
    pub fn analyze(&self, graph: &Graph) -> Arc<Vec<Diagnostic>> {
        let key = graph.structural_hash();
        if let Some(cached) = self.map.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(cached);
        }
        let report = Arc::new(analyze_graph(graph));
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::clone(&report));
        report
    }

    /// Hit/miss accounting so far.
    pub fn stats(&self) -> LintCacheStats {
        LintCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predtop_models::StageSpec;

    #[test]
    fn lint_cache_hits_on_isomorphic_stage_graphs() {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 6;
        let cache = GraphLintCache::new();
        // four interior 1-layer windows are isomorphic; embedding and
        // head windows are each their own class
        let reports: Vec<_> = (0..6)
            .map(|i| cache.analyze(&StageSpec::new(m, i, i + 1).build_graph()))
            .collect();
        assert_eq!(
            cache.stats(),
            LintCacheStats { hits: 3, misses: 3 },
            "six windows collapse to three structural classes"
        );
        // cached replay equals a fresh analysis
        for (i, r) in reports.iter().enumerate() {
            let fresh = analyze_graph(&StageSpec::new(m, i, i + 1).build_graph());
            assert_eq!(**r, fresh);
        }
    }
}
