//! `predtop-lint` — run every static-analysis pass over the benchmark
//! model graphs, persisted artifacts, and the search service stack.
//!
//! ```text
//! predtop-lint [--format text|json] [--models both|gpt3|moe|none]
//!              [--plan FILE]... [--fix] [--stack]
//!              [--inject-fault] [--inject-plan-fault]
//!              [--inject-stack-fault] [FILE...]
//! ```
//!
//! With no `FILE` arguments the built-in benchmark models (GPT-3 1.3B
//! and MoE 2.6B at batch 8) are linted, including the plan passes over
//! each model's trivial single-device plan; `FILE` arguments are parsed
//! as persisted `Graph` JSON and graph-passes linted. `--plan FILE`
//! arguments are parsed as persisted `PipelinePlan` JSON (e.g. written
//! by `predtop search --plan-out`) and plan-passes linted against the
//! model embedded in the plan's stages.
//!
//! `--fix` applies every machine-applicable fix attached to plan
//! findings, re-analyzing to a fixpoint: plan files are rewritten in
//! place and the report shows what remains. Fixes are absolute edits,
//! so a second `--fix` run applies nothing — the binary verifies this
//! after every fix and CI diffs the twice-fixed file to pin it.
//!
//! `--stack` lints the layer ordering of the canonical search service
//! stacks (the same `P2xxx` rules `predtop search` asserts on the
//! stack it actually builds; see DESIGN.md §10 and §12).
//!
//! The three `--inject-*` flags append deliberately broken subjects so
//! CI can verify each error path without fixture files: a graph with a
//! shape error (`--inject-fault`), a plan with divisibility errors
//! that `--fix` can repair (`--inject-plan-fault`), and a misordered
//! service stack (`--inject-stack-fault`).
//!
//! Graph-pass results are memoized on `Graph::structural_hash()`; the
//! cache's hit/miss accounting is printed to stderr after the reports.
//!
//! Exit status: 0 clean (no `Error` findings), 1 at least one `Error`
//! finding, 2 usage / IO / parse failure.

use std::process::ExitCode;

use predtop_analyze::{
    analyze_plan, analyze_stack, fix_plan, has_errors, render_json, render_text, Diagnostic,
    GraphLintCache, PlanCheckOptions, Severity, Span,
};
use predtop_ir::{DType, Graph, GraphBuilder, OpKind, Shape};
use predtop_models::{ModelSpec, StageSpec};
use predtop_parallel::{MeshShape, ParallelConfig, PipelinePlan, PlannedStage};
use predtop_service::{LayerTag, StackSpec};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum Models {
    Both,
    Gpt3,
    Moe,
    None,
}

struct Args {
    format: Format,
    models: Option<Models>,
    fix: bool,
    stack: bool,
    inject_fault: bool,
    inject_plan_fault: bool,
    inject_stack_fault: bool,
    files: Vec<String>,
    plans: Vec<String>,
}

const USAGE: &str = "usage: predtop-lint [--format text|json] \
                     [--models both|gpt3|moe|none] [--plan FILE]... \
                     [--fix] [--stack] [--inject-fault] \
                     [--inject-plan-fault] [--inject-stack-fault] \
                     [FILE...]";

/// The structured usage diagnostic for a bad `--models` value: the
/// same renderer and code-table discipline as every analysis finding
/// (`P0901`, DESIGN.md §12), so scripts can grep one format.
fn bad_models_value(got: Option<&str>) -> String {
    let got = got.map_or("nothing".to_string(), |g| format!("`{g}`"));
    let d = Diagnostic::new(
        901,
        Severity::Error,
        Span::Graph,
        format!("--models expects both|gpt3|moe|none, got {got}"),
    )
    .with_suggestion("pass --models both to lint every benchmark model");
    format!("{}{USAGE}", render_text(&[d]))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        format: Format::Text,
        models: None,
        fix: false,
        stack: false,
        inject_fault: false,
        inject_plan_fault: false,
        inject_stack_fault: false,
        files: Vec::new(),
        plans: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => match it.next() {
                Some(f) => args.plans.push(f.clone()),
                None => return Err("--plan expects a file path".to_string()),
            },
            "--format" => {
                args.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                }
            }
            "--models" => {
                args.models = Some(match it.next().map(String::as_str) {
                    Some("both") => Models::Both,
                    Some("gpt3") => Models::Gpt3,
                    Some("moe") => Models::Moe,
                    Some("none") => Models::None,
                    other => return Err(bad_models_value(other)),
                })
            }
            "--fix" => args.fix = true,
            "--stack" => args.stack = true,
            "--inject-fault" => args.inject_fault = true,
            "--inject-plan-fault" => args.inject_plan_fault = true,
            "--inject-stack-fault" => args.inject_stack_fault = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            f if f.starts_with('-') => return Err(format!("unknown flag {f}\n{USAGE}")),
            f => args.files.push(f.to_string()),
        }
    }
    Ok(args)
}

/// The trivial single-stage, single-device plan for `model` — the
/// smallest legal subject the plan passes accept, so linting a model
/// exercises every pass kind.
fn trivial_plan(model: ModelSpec) -> PipelinePlan {
    PipelinePlan {
        stages: vec![PlannedStage {
            stage: StageSpec::new(model, 0, model.num_layers),
            mesh: MeshShape::new(1, 1),
            config: ParallelConfig::SERIAL,
        }],
        microbatches: 1,
    }
}

/// A graph with a deliberate shape error (mismatched `add` operands) so
/// CI can assert the non-zero exit path without a fixture file.
fn faulty_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(Shape::from([4, 8]), DType::F32);
    let y = b.input(Shape::from([4, 9]), DType::F32);
    let bad = b.op(OpKind::Add, &[x, y], Shape::from([4, 8]), DType::F32);
    b.finish(&[bad]).expect("fault graph has an output")
}

/// A plan whose every error carries a machine-applicable fix: the
/// micro-batch count does not divide the batch (`P1301`) and the stage
/// configuration overshards the head count (`P1303`). `--fix` repairs
/// both; without it the subject exits 1 — CI drives both paths.
fn faulty_plan() -> (PipelinePlan, ModelSpec) {
    let mut m = ModelSpec::gpt3_1p3b(8);
    m.num_layers = 4;
    m.num_heads = 2;
    let plan = PipelinePlan {
        stages: vec![PlannedStage {
            stage: StageSpec::new(m, 0, m.num_layers),
            mesh: MeshShape::new(1, 4),
            config: ParallelConfig::new(1, 4),
        }],
        microbatches: 3,
    };
    (plan, m)
}

/// The layer ordering `predtop search` installs (see `cmd_search`):
/// faults innermost, deadline policing each attempt, retry absorbing
/// transient failures, then (with `--store`) the disk tier, then
/// memoization, fan-out, instrumentation. `predtop search` asserts its
/// *actual* built stack through the same `analyze_stack` rules, so this
/// mirror cannot silently drift into legality.
fn search_stack_spec(raw_cache: bool, store: bool) -> StackSpec {
    let mut layers = vec![LayerTag::FaultInject, LayerTag::Deadline, LayerTag::Retry];
    if store {
        layers.push(LayerTag::Persist);
    }
    layers.push(if raw_cache {
        LayerTag::Memoize
    } else {
        LayerTag::MemoizeStructural
    });
    layers.push(LayerTag::Batched);
    layers.push(LayerTag::Instrumented);
    StackSpec::from_layers(layers)
}

/// A deliberately misordered stack — retry trapped inside the fault
/// injector and the deadline outside the batcher — so CI can assert
/// the `P2xxx` error path.
fn misordered_stack_spec() -> StackSpec {
    StackSpec::from_layers([
        LayerTag::Retry,
        LayerTag::FaultInject,
        LayerTag::Batched,
        LayerTag::Deadline,
        LayerTag::Instrumented,
    ])
}

/// One linted subject: its display name and merged, sorted findings.
struct Report {
    subject: String,
    diags: Vec<Diagnostic>,
}

fn lint_model(cache: &GraphLintCache, model: ModelSpec, name: &str) -> Report {
    let graph = StageSpec::new(model, 0, model.num_layers).build_graph();
    let mut diags = cache.analyze(&graph).as_ref().clone();
    diags.extend(analyze_plan(
        &trivial_plan(model),
        &model,
        &PlanCheckOptions::default(),
    ));
    Report {
        subject: name.to_string(),
        diags,
    }
}

/// Whether `path`'s contents are the offline `serde_json` stub's
/// serialization placeholder. The stub writes `"{}"` for every value
/// and cannot deserialize anything back, so a placeholder file is a
/// legitimately persisted artifact that this environment simply cannot
/// reload; the lint degrades to an explicit skip (exit 0 with a note)
/// instead of a spurious parse error — the same leg the workspace
/// tests take via their `json_roundtrip_supported` probes. Any other
/// unparsable body is still a hard error.
fn stub_placeholder(body: &str) -> bool {
    serde_json::from_str::<u32>("1").is_err() && body.trim() == "{}"
}

fn skipped_report(path: &str, what: &str) -> Report {
    eprintln!("note: {path}: offline serde_json stub cannot load a persisted {what}; skipping");
    Report {
        subject: format!("{path} ({what}, skipped: offline serde_json stub)"),
        diags: Vec::new(),
    }
}

fn lint_file(cache: &GraphLintCache, path: &str) -> Result<Report, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    if stub_placeholder(&body) {
        return Ok(skipped_report(path, "graph"));
    }
    let graph: Graph =
        serde_json::from_str(&body).map_err(|e| format!("{path}: not a persisted graph: {e}"))?;
    Ok(Report {
        subject: path.to_string(),
        diags: cache.analyze(&graph).as_ref().clone(),
    })
}

/// Fix `plan` to a fixpoint and verify idempotence: re-fixing the
/// output must apply zero edits (fix edits are absolute, DESIGN.md
/// §12). Returns the fixed plan and the findings that remain.
fn fix_and_verify(
    plan: &PipelinePlan,
    model: &ModelSpec,
    subject: &str,
) -> (PipelinePlan, Vec<Diagnostic>) {
    let out = fix_plan(plan, model, &PlanCheckOptions::default());
    eprintln!(
        "fix: {subject}: {} edit round(s) over {} analyze round(s), {} finding(s) remain",
        out.applied,
        out.rounds,
        out.remaining.len()
    );
    let again = fix_plan(&out.plan, model, &PlanCheckOptions::default());
    if again.applied != 0 || again.plan != out.plan {
        eprintln!("fix: {subject}: NOT idempotent — second pass changed the plan");
    } else {
        eprintln!("fix: {subject}: idempotent (second pass applied 0 edits)");
    }
    (out.plan, out.remaining)
}

fn lint_plan_file(path: &str, fix: bool) -> Result<Report, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    if stub_placeholder(&body) {
        return Ok(skipped_report(path, "plan"));
    }
    let plan: PipelinePlan =
        serde_json::from_str(&body).map_err(|e| format!("{path}: not a persisted plan: {e}"))?;
    // every stage is sliced from the same model; the first one carries it
    let model = plan
        .stages
        .first()
        .ok_or_else(|| format!("{path}: plan has no stages"))?
        .stage
        .model;
    if fix {
        let (fixed, remaining) = fix_and_verify(&plan, &model, path);
        if fixed != plan {
            let body = serde_json::to_string(&fixed)
                .map_err(|e| format!("{path}: cannot serialize fixed plan: {e}"))?;
            std::fs::write(path, body)
                .map_err(|e| format!("{path}: cannot write fixed plan: {e}"))?;
            eprintln!("fix: {path}: rewrote plan file");
        }
        return Ok(Report {
            subject: format!("{path} (plan, fixed)"),
            diags: remaining,
        });
    }
    Ok(Report {
        subject: format!("{path} (plan)"),
        diags: analyze_plan(&plan, &model, &PlanCheckOptions::default()),
    })
}

fn emit_text(reports: &[Report]) {
    for r in reports {
        let (e, w, i) = count(&r.diags);
        println!("==> {} ({e} errors, {w} warnings, {i} infos)", r.subject);
        print!("{}", render_text(&r.diags));
    }
}

fn emit_json(reports: &[Report]) {
    println!("[");
    for (i, r) in reports.iter().enumerate() {
        let body = render_json(&r.diags);
        print!(
            "{{\"subject\":\"{}\",\"diagnostics\":{}}}{}",
            r.subject,
            body.trim_end(),
            if i + 1 < reports.len() { ",\n" } else { "\n" }
        );
    }
    println!("]");
}

fn count(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut e = 0;
    let mut w = 0;
    let mut i = 0;
    for d in diags {
        match d.severity {
            Severity::Error => e += 1,
            Severity::Warn => w += 1,
            Severity::Info => i += 1,
        }
    }
    (e, w, i)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // default: lint the benchmark models, unless files were given or
    // the run only targets the service stacks
    let models = args.models.unwrap_or(
        if args.files.is_empty() && args.plans.is_empty() && !args.stack {
            Models::Both
        } else {
            Models::None
        },
    );

    let cache = GraphLintCache::new();
    let mut reports = Vec::new();
    if matches!(models, Models::Both | Models::Gpt3) {
        reports.push(lint_model(&cache, ModelSpec::gpt3_1p3b(8), "gpt3-1.3b"));
    }
    if matches!(models, Models::Both | Models::Moe) {
        reports.push(lint_model(&cache, ModelSpec::moe_2p6b(8), "moe-2.6b"));
    }
    for f in &args.files {
        match lint_file(&cache, f) {
            Ok(r) => reports.push(r),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    for f in &args.plans {
        match lint_plan_file(f, args.fix) {
            Ok(r) => reports.push(r),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if args.stack {
        for (name, raw_cache, store) in [
            ("stack:default-search", false, false),
            ("stack:raw-cache", true, false),
            ("stack:store-search", false, true),
        ] {
            let spec = search_stack_spec(raw_cache, store);
            eprintln!("stack: {name}: {}", spec.label());
            reports.push(Report {
                subject: name.to_string(),
                diags: analyze_stack(&spec),
            });
        }
    }
    if args.inject_fault {
        reports.push(Report {
            subject: "fault-injection".to_string(),
            diags: analyze_graph_cached(&cache, &faulty_graph()),
        });
    }
    if args.inject_plan_fault {
        let (plan, model) = faulty_plan();
        reports.push(if args.fix {
            let (_, remaining) = fix_and_verify(&plan, &model, "plan-fault-injection");
            Report {
                subject: "plan-fault-injection (fixed)".to_string(),
                diags: remaining,
            }
        } else {
            Report {
                subject: "plan-fault-injection".to_string(),
                diags: analyze_plan(&plan, &model, &PlanCheckOptions::default()),
            }
        });
    }
    if args.inject_stack_fault {
        let spec = misordered_stack_spec();
        eprintln!("stack: stack-fault-injection: {}", spec.label());
        reports.push(Report {
            subject: "stack-fault-injection".to_string(),
            diags: analyze_stack(&spec),
        });
    }
    if reports.is_empty() {
        eprintln!("nothing to lint\n{USAGE}");
        return ExitCode::from(2);
    }

    match args.format {
        Format::Text => emit_text(&reports),
        Format::Json => emit_json(&reports),
    }
    let stats = cache.stats();
    if stats.hits + stats.misses > 0 {
        eprintln!("lint cache: {} hits, {} misses", stats.hits, stats.misses);
    }

    if reports.iter().any(|r| has_errors(&r.diags)) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn analyze_graph_cached(cache: &GraphLintCache, graph: &Graph) -> Vec<Diagnostic> {
    cache.analyze(graph).as_ref().clone()
}
