//! `predtop-lint` — run every static-analysis pass over the benchmark
//! model graphs and/or persisted graph files.
//!
//! ```text
//! predtop-lint [--format text|json] [--models both|gpt3|moe|none]
//!              [--plan FILE]... [--inject-fault] [FILE...]
//! ```
//!
//! With no `FILE` arguments the built-in benchmark models (GPT-3 1.3B
//! and MoE 2.6B at batch 8) are linted, including the plan passes over
//! each model's trivial single-device plan; `FILE` arguments are parsed
//! as persisted `Graph` JSON and graph-passes linted. `--plan FILE`
//! arguments are parsed as persisted `PipelinePlan` JSON (e.g. written
//! by `predtop search --plan-out`) and plan-passes linted against the
//! model embedded in the plan's stages. `--inject-fault` appends a
//! deliberately broken graph so CI can verify the error path.
//!
//! Exit status: 0 clean (no `Error` findings), 1 at least one `Error`
//! finding, 2 usage / IO / parse failure.

use std::process::ExitCode;

use predtop_analyze::{
    analyze_graph, analyze_plan, has_errors, render_json, render_text, Diagnostic,
    PlanCheckOptions, Severity,
};
use predtop_ir::{DType, Graph, GraphBuilder, OpKind, Shape};
use predtop_models::{ModelSpec, StageSpec};
use predtop_parallel::{MeshShape, ParallelConfig, PipelinePlan, PlannedStage};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq)]
enum Models {
    Both,
    Gpt3,
    Moe,
    None,
}

struct Args {
    format: Format,
    models: Option<Models>,
    inject_fault: bool,
    files: Vec<String>,
    plans: Vec<String>,
}

const USAGE: &str = "usage: predtop-lint [--format text|json] \
                     [--models both|gpt3|moe|none] [--plan FILE]... \
                     [--inject-fault] [FILE...]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        format: Format::Text,
        models: None,
        inject_fault: false,
        files: Vec::new(),
        plans: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plan" => match it.next() {
                Some(f) => args.plans.push(f.clone()),
                None => return Err("--plan expects a file path".to_string()),
            },
            "--format" => {
                args.format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                }
            }
            "--models" => {
                args.models = Some(match it.next().map(String::as_str) {
                    Some("both") => Models::Both,
                    Some("gpt3") => Models::Gpt3,
                    Some("moe") => Models::Moe,
                    Some("none") => Models::None,
                    other => {
                        return Err(format!(
                            "--models expects both|gpt3|moe|none, got {other:?}"
                        ))
                    }
                })
            }
            "--inject-fault" => args.inject_fault = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            f if f.starts_with('-') => return Err(format!("unknown flag {f}\n{USAGE}")),
            f => args.files.push(f.to_string()),
        }
    }
    Ok(args)
}

/// The trivial single-stage, single-device plan for `model` — the
/// smallest legal subject the plan passes accept, so linting a model
/// exercises every pass kind.
fn trivial_plan(model: ModelSpec) -> PipelinePlan {
    PipelinePlan {
        stages: vec![PlannedStage {
            stage: StageSpec::new(model, 0, model.num_layers),
            mesh: MeshShape::new(1, 1),
            config: ParallelConfig::SERIAL,
        }],
        microbatches: 1,
    }
}

/// A graph with a deliberate shape error (mismatched `add` operands) so
/// CI can assert the non-zero exit path without a fixture file.
fn faulty_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(Shape::from([4, 8]), DType::F32);
    let y = b.input(Shape::from([4, 9]), DType::F32);
    let bad = b.op(OpKind::Add, &[x, y], Shape::from([4, 8]), DType::F32);
    b.finish(&[bad]).expect("fault graph has an output")
}

/// One linted subject: its display name and merged, sorted findings.
struct Report {
    subject: String,
    diags: Vec<Diagnostic>,
}

fn lint_model(model: ModelSpec, name: &str) -> Report {
    let graph = StageSpec::new(model, 0, model.num_layers).build_graph();
    let mut diags = analyze_graph(&graph);
    diags.extend(analyze_plan(
        &trivial_plan(model),
        &model,
        &PlanCheckOptions::default(),
    ));
    Report {
        subject: name.to_string(),
        diags,
    }
}

/// Whether `path`'s contents are the offline `serde_json` stub's
/// serialization placeholder. The stub writes `"{}"` for every value
/// and cannot deserialize anything back, so a placeholder file is a
/// legitimately persisted artifact that this environment simply cannot
/// reload; the lint degrades to an explicit skip (exit 0 with a note)
/// instead of a spurious parse error — the same leg the workspace
/// tests take via their `json_roundtrip_supported` probes. Any other
/// unparsable body is still a hard error.
fn stub_placeholder(body: &str) -> bool {
    serde_json::from_str::<u32>("1").is_err() && body.trim() == "{}"
}

fn skipped_report(path: &str, what: &str) -> Report {
    eprintln!("note: {path}: offline serde_json stub cannot load a persisted {what}; skipping");
    Report {
        subject: format!("{path} ({what}, skipped: offline serde_json stub)"),
        diags: Vec::new(),
    }
}

fn lint_file(path: &str) -> Result<Report, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    if stub_placeholder(&body) {
        return Ok(skipped_report(path, "graph"));
    }
    let graph: Graph =
        serde_json::from_str(&body).map_err(|e| format!("{path}: not a persisted graph: {e}"))?;
    Ok(Report {
        subject: path.to_string(),
        diags: analyze_graph(&graph),
    })
}

fn lint_plan_file(path: &str) -> Result<Report, String> {
    let body =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read file: {e}"))?;
    if stub_placeholder(&body) {
        return Ok(skipped_report(path, "plan"));
    }
    let plan: PipelinePlan =
        serde_json::from_str(&body).map_err(|e| format!("{path}: not a persisted plan: {e}"))?;
    // every stage is sliced from the same model; the first one carries it
    let model = plan
        .stages
        .first()
        .ok_or_else(|| format!("{path}: plan has no stages"))?
        .stage
        .model;
    Ok(Report {
        subject: format!("{path} (plan)"),
        diags: analyze_plan(&plan, &model, &PlanCheckOptions::default()),
    })
}

fn emit_text(reports: &[Report]) {
    for r in reports {
        let (e, w, i) = count(&r.diags);
        println!("==> {} ({e} errors, {w} warnings, {i} infos)", r.subject);
        print!("{}", render_text(&r.diags));
    }
}

fn emit_json(reports: &[Report]) {
    println!("[");
    for (i, r) in reports.iter().enumerate() {
        let body = render_json(&r.diags);
        print!(
            "{{\"subject\":\"{}\",\"diagnostics\":{}}}{}",
            r.subject,
            body.trim_end(),
            if i + 1 < reports.len() { ",\n" } else { "\n" }
        );
    }
    println!("]");
}

fn count(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut e = 0;
    let mut w = 0;
    let mut i = 0;
    for d in diags {
        match d.severity {
            Severity::Error => e += 1,
            Severity::Warn => w += 1,
            Severity::Info => i += 1,
        }
    }
    (e, w, i)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // default: lint the benchmark models, unless files were given
    let models = args
        .models
        .unwrap_or(if args.files.is_empty() && args.plans.is_empty() {
            Models::Both
        } else {
            Models::None
        });

    let mut reports = Vec::new();
    if matches!(models, Models::Both | Models::Gpt3) {
        reports.push(lint_model(ModelSpec::gpt3_1p3b(8), "gpt3-1.3b"));
    }
    if matches!(models, Models::Both | Models::Moe) {
        reports.push(lint_model(ModelSpec::moe_2p6b(8), "moe-2.6b"));
    }
    for f in &args.files {
        match lint_file(f) {
            Ok(r) => reports.push(r),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    for f in &args.plans {
        match lint_plan_file(f) {
            Ok(r) => reports.push(r),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if args.inject_fault {
        reports.push(Report {
            subject: "fault-injection".to_string(),
            diags: analyze_graph(&faulty_graph()),
        });
    }
    if reports.is_empty() {
        eprintln!("nothing to lint\n{USAGE}");
        return ExitCode::from(2);
    }

    match args.format {
        Format::Text => emit_text(&reports),
        Format::Json => emit_json(&reports),
    }

    if reports.iter().any(|r| has_errors(&r.diags)) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
