//! Graph-level passes: semantic shape rules, flow analysis (dead nodes),
//! dtype propagation, and constant-foldable subgraph detection.

use predtop_ir::op::ComputeClass;
use predtop_ir::reach::Reachability;
use predtop_ir::verify::{verify, SemanticRule};
use predtop_ir::{DType, Graph, NodeKind, OpKind};

use crate::diag::{Diagnostic, Severity, Span};
use crate::pass::GraphPass;

/// `semantics` — the `ir::verify` shape rules, one diagnostic per
/// violation, codes `P0101`–`P0113`.
pub struct SemanticsPass;

/// Stable code for one [`SemanticRule`] (the `P01xx` block).
pub fn semantic_rule_code(rule: SemanticRule) -> u16 {
    match rule {
        SemanticRule::SourceNoOperands => 101,
        SemanticRule::OutputArity => 102,
        SemanticRule::OutputTypeMirror => 103,
        SemanticRule::MissingOperands => 104,
        SemanticRule::DotContraction => 105,
        SemanticRule::DotArity => 106,
        SemanticRule::ElementwiseOperandShape => 107,
        SemanticRule::MovementElementCount => 108,
        SemanticRule::TransposePermutation => 109,
        SemanticRule::BroadcastEmbedding => 110,
        SemanticRule::ReductionGrowth => 111,
        SemanticRule::SliceGrowth => 112,
        SemanticRule::CumSumShape => 113,
    }
}

fn semantic_rule_suggestion(rule: SemanticRule) -> Option<&'static str> {
    match rule {
        SemanticRule::ElementwiseOperandShape => {
            Some("insert a broadcast_in_dim or fix the emitter's shape arithmetic")
        }
        SemanticRule::DotContraction => Some("set attrs.contracted to the contracted extent"),
        SemanticRule::BroadcastEmbedding => {
            Some("broadcast dims must embed in order into the output dims")
        }
        _ => None,
    }
}

impl GraphPass for SemanticsPass {
    fn name(&self) -> &'static str {
        "semantics"
    }

    fn description(&self) -> &'static str {
        "per-dimension shape rules for every operator (ir::verify)"
    }

    fn run(&self, graph: &Graph) -> Vec<Diagnostic> {
        verify(graph)
            .into_iter()
            .map(|v| {
                let d = Diagnostic::new(
                    semantic_rule_code(v.rule),
                    Severity::Error,
                    Span::Node(v.node),
                    v.message,
                );
                match semantic_rule_suggestion(v.rule) {
                    Some(s) => d.with_suggestion(s),
                    None => d,
                }
            })
            .collect()
    }
}

/// `dead-code` — nodes with no path to any graph output, found through
/// `ir::reach`'s ancestor closure. A dead operator (`P0201`, warning)
/// wastes simulated compute and poisons feature statistics; a dead input
/// or literal (`P0202`, info) is usually emitter leftovers.
pub struct DeadCodePass;

impl GraphPass for DeadCodePass {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn description(&self) -> &'static str {
        "nodes unreachable from every graph output (ir::reach)"
    }

    fn run(&self, graph: &Graph) -> Vec<Diagnostic> {
        if graph.is_empty() {
            return Vec::new();
        }
        let outputs: Vec<_> = graph.outputs().collect();
        if outputs.is_empty() {
            // a graph without outputs is entirely dead; one graph-level
            // finding beats one per node
            return vec![Diagnostic::new(
                201,
                Severity::Warn,
                Span::Graph,
                "graph has no output nodes; every node is dead".to_string(),
            )];
        }
        let reach = Reachability::compute(graph);
        let mut out = Vec::new();
        for node in graph.nodes() {
            if node.kind == NodeKind::Output {
                continue;
            }
            let live = outputs.iter().any(|&o| reach.ancestor(node.id, o));
            if live {
                continue;
            }
            match node.kind {
                NodeKind::Operator(op) => out.push(
                    Diagnostic::new(
                        201,
                        Severity::Warn,
                        Span::Node(node.id),
                        format!("{op} result never reaches an output"),
                    )
                    .with_suggestion("prune the node or wire its value to an output"),
                ),
                NodeKind::Input | NodeKind::Literal => out.push(Diagnostic::new(
                    202,
                    Severity::Info,
                    Span::Node(node.id),
                    "unused source node".to_string(),
                )),
                NodeKind::Output => unreachable!("outputs skipped above"),
            }
        }
        out
    }
}

/// `dtype` — dtype-propagation consistency, codes `P0301`–`P0307`.
///
/// Arithmetic elementwise operators must agree with their operands;
/// `compare` produces `bool`; `select`'s predicate is `bool`; pure data
/// movement preserves dtype; `arg_max` produces an integer. Irregular
/// operators (`gather`, `scatter`, `top_k`, ...) are data-dependent and
/// exempt. A `convert_element_type` that does not change the dtype is
/// reported as an info-level no-op.
pub struct DTypePass;

impl GraphPass for DTypePass {
    fn name(&self) -> &'static str {
        "dtype"
    }

    fn description(&self) -> &'static str {
        "dtype propagation rules per operator class"
    }

    fn run(&self, graph: &Graph) -> Vec<Diagnostic> {
        use OpKind::*;
        let mut out = Vec::new();
        for node in graph.nodes() {
            let NodeKind::Operator(op) = node.kind else {
                continue;
            };
            if node.inputs.is_empty() {
                continue; // arity is the semantics pass's problem
            }
            let in_dtype = |i: usize| graph.node(node.inputs[i]).dtype;
            match op {
                Add | Sub | Mul | Div | Max | Min | Pow | Neg | Exp | Log | Tanh | Erf
                | Logistic | Sqrt | Rsqrt => {
                    for (i, &p) in node.inputs.iter().enumerate() {
                        let pd = graph.node(p).dtype;
                        if pd != node.dtype {
                            out.push(Diagnostic::new(
                                301,
                                Severity::Error,
                                Span::Node(node.id),
                                format!("{op} operand {i} is {pd}, output is {}", node.dtype),
                            ));
                        }
                    }
                }
                Compare => {
                    if node.dtype != DType::Bool {
                        out.push(Diagnostic::new(
                            302,
                            Severity::Error,
                            Span::Node(node.id),
                            format!("compare must produce bool, found {}", node.dtype),
                        ));
                    }
                    for (i, &p) in node.inputs.iter().enumerate().skip(1) {
                        let pd = graph.node(p).dtype;
                        if pd != in_dtype(0) {
                            out.push(Diagnostic::new(
                                302,
                                Severity::Error,
                                Span::Node(node.id),
                                format!(
                                    "compare operand {i} is {pd}, operand 0 is {}",
                                    in_dtype(0)
                                ),
                            ));
                        }
                    }
                }
                Select => {
                    if in_dtype(0) != DType::Bool {
                        out.push(Diagnostic::new(
                            303,
                            Severity::Error,
                            Span::Node(node.id),
                            format!("select predicate is {}, must be bool", in_dtype(0)),
                        ));
                    }
                    for (i, &p) in node.inputs.iter().enumerate().skip(1) {
                        let pd = graph.node(p).dtype;
                        if pd != node.dtype {
                            out.push(Diagnostic::new(
                                301,
                                Severity::Error,
                                Span::Node(node.id),
                                format!("select operand {i} is {pd}, output is {}", node.dtype),
                            ));
                        }
                    }
                }
                Reshape | Transpose | Copy | StopGradient | BroadcastInDim | Slice
                | DynamicSlice | CumSum | ReduceSum | ReduceMax
                    if in_dtype(0) != node.dtype =>
                {
                    out.push(Diagnostic::new(
                        304,
                        Severity::Error,
                        Span::Node(node.id),
                        format!(
                            "{op} changes dtype {} -> {} (use convert_element_type)",
                            in_dtype(0),
                            node.dtype
                        ),
                    ));
                }
                ArgMax if node.dtype.is_float() => {
                    out.push(Diagnostic::new(
                        305,
                        Severity::Error,
                        Span::Node(node.id),
                        format!(
                            "arg_max must produce an integer index, found {}",
                            node.dtype
                        ),
                    ));
                }
                ConvertElementType if in_dtype(0) == node.dtype => {
                    out.push(Diagnostic::new(
                        306,
                        Severity::Info,
                        Span::Node(node.id),
                        format!("convert_element_type to the same dtype {}", node.dtype),
                    ));
                }
                DotGeneral => {
                    for (i, &p) in node.inputs.iter().enumerate() {
                        let pd = graph.node(p).dtype;
                        if pd != node.dtype {
                            out.push(Diagnostic::new(
                                307,
                                Severity::Warn,
                                Span::Node(node.id),
                                format!(
                                    "dot_general operand {i} is {pd}, output is {} \
                                     (mixed-precision accumulate?)",
                                    node.dtype
                                ),
                            ));
                        }
                    }
                }
                // gather/scatter/top_k/one_hot/concat/pad/...: dtype
                // depends on attributes we do not model
                _ => {}
            }
        }
        out
    }
}

/// `const-fold` — maximal literal-only subgraphs that could be folded at
/// build time (`P0203`, info). Only subgraphs that contain at least one
/// *compute* operator (contraction, elementwise, reduction) are
/// reported: a literal feeding a lone broadcast is the emitters' scalar
/// idiom, not a missed optimization.
pub struct ConstFoldPass;

impl GraphPass for ConstFoldPass {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn description(&self) -> &'static str {
        "literal-only subgraphs evaluable at build time"
    }

    fn run(&self, graph: &Graph) -> Vec<Diagnostic> {
        let n = graph.len();
        let mut foldable = vec![false; n];
        let mut has_compute = vec![false; n];
        for node in graph.nodes() {
            let i = node.id.index();
            match node.kind {
                NodeKind::Literal => foldable[i] = true,
                NodeKind::Operator(op) => {
                    if matches!(op, OpKind::RngUniform | OpKind::RngBitGenerator) {
                        continue; // random data is not a constant
                    }
                    if node.inputs.is_empty() {
                        // iota: deterministic source, foldable on its own
                        foldable[i] = op == OpKind::Iota;
                        continue;
                    }
                    foldable[i] = node.inputs.iter().all(|p| foldable[p.index()]);
                    if foldable[i] {
                        let own_compute = matches!(
                            op.compute_class(),
                            ComputeClass::Contraction
                                | ComputeClass::Elementwise
                                | ComputeClass::Reduction
                        );
                        has_compute[i] =
                            own_compute || node.inputs.iter().any(|p| has_compute[p.index()]);
                    }
                }
                NodeKind::Input | NodeKind::Output => {}
            }
        }
        let mut out = Vec::new();
        for node in graph.nodes() {
            let i = node.id.index();
            if !foldable[i] || !has_compute[i] {
                continue;
            }
            // report maximal foldable nodes only: every successor either
            // leaves the foldable region or is an output
            let maximal = graph
                .succs(node.id)
                .iter()
                .all(|s| !foldable[s.index()] || graph.node(*s).kind == NodeKind::Output);
            if maximal {
                let op = match node.kind {
                    NodeKind::Operator(op) => op,
                    _ => continue,
                };
                out.push(
                    Diagnostic::new(
                        203,
                        Severity::Info,
                        Span::Node(node.id),
                        format!(
                            "{op} depends only on literals; its value is a compile-time constant"
                        ),
                    )
                    .with_suggestion("fold the subgraph into a single literal"),
                );
            }
        }
        out
    }
}
