//! Diagnostic renderers: rustc-style text and a stable JSON schema.
//!
//! The JSON renderer is hand-rolled rather than derived so the schema is
//! an explicit, stable contract (golden-file tested) and the output is
//! byte-identical regardless of the serialization backend.

use crate::diag::{Diagnostic, FixEdit, Span};

/// Render diagnostics in rustc style, one finding per line plus
/// optional `= help:` / `= fix:` continuations:
///
/// ```text
/// error[P0107]: node 12: add operand 1 has shape [8, 4] ...
///   = help: insert a broadcast_in_dim or fix the emitter's shape arithmetic
/// ```
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}[{}]: {}: {}\n",
            d.severity.label(),
            d.code,
            d.span,
            d.message
        ));
        if let Some(s) = &d.suggestion {
            out.push_str(&format!("  = help: {s}\n"));
        }
        if let Some(f) = &d.fix {
            out.push_str(&format!("  = fix: {}\n", f.description));
        }
    }
    out
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_span(span: Span) -> String {
    match span {
        Span::Graph => r#"{"kind":"graph"}"#.to_string(),
        Span::Node(id) => format!(r#"{{"kind":"node","id":{}}}"#, id.0),
        Span::Stage(i) => format!(r#"{{"kind":"stage","index":{i}}}"#),
        Span::Plan => r#"{"kind":"plan"}"#.to_string(),
        Span::Layer(i) => format!(r#"{{"kind":"layer","index":{i}}}"#),
    }
}

fn json_edit(edit: FixEdit) -> String {
    match edit {
        FixEdit::SetMicrobatches { value } => {
            format!(r#"{{"kind":"set_microbatches","value":{value}}}"#)
        }
        FixEdit::SetStageConfig { stage, dp, mp } => {
            format!(r#"{{"kind":"set_stage_config","stage":{stage},"dp":{dp},"mp":{mp}}}"#)
        }
        FixEdit::SetStageMesh {
            stage,
            nodes,
            gpus_per_node,
            dp,
            mp,
        } => format!(
            r#"{{"kind":"set_stage_mesh","stage":{stage},"nodes":{nodes},"gpus_per_node":{gpus_per_node},"dp":{dp},"mp":{mp}}}"#
        ),
    }
}

/// Render diagnostics as a JSON array, one object per finding:
///
/// ```json
/// [
///   {"code":"P0107","severity":"error","span":{"kind":"node","id":12},
///    "message":"...","suggestion":null,"fix":null}
/// ]
/// ```
///
/// A machine-applicable fix renders as
/// `{"description":"...","edit":{"kind":"set_stage_config",...}}`.
/// The array is pretty-printed one finding per line; an empty report is
/// `[]`. Field order and formatting are stable (golden-file tested).
pub fn render_json(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let suggestion = match &d.suggestion {
            Some(s) => format!("\"{}\"", json_escape(s)),
            None => "null".to_string(),
        };
        let fix = match &d.fix {
            Some(f) => format!(
                "{{\"description\":\"{}\",\"edit\":{}}}",
                json_escape(&f.description),
                json_edit(f.edit)
            ),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"code\":\"{}\",\"severity\":\"{}\",\"span\":{},\"message\":\"{}\",\"suggestion\":{},\"fix\":{}}}{}\n",
            d.code,
            d.severity.label(),
            json_span(d.span),
            json_escape(&d.message),
            suggestion,
            fix,
            if i + 1 < diags.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use predtop_ir::NodeId;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(107, Severity::Error, Span::Node(NodeId(3)), "bad \"shape\"")
                .with_suggestion("fix it"),
            Diagnostic::new(1301, Severity::Error, Span::Plan, "batch\tissue").with_fix(
                "set microbatches to 4",
                FixEdit::SetMicrobatches { value: 4 },
            ),
            Diagnostic::new(203, Severity::Info, Span::Graph, "fold me"),
            Diagnostic::new(2101, Severity::Error, Span::Layer(2), "misplaced retry"),
        ]
    }

    #[test]
    fn text_renders_severity_code_span_and_help() {
        let t = render_text(&sample());
        assert!(t.contains("error[P0107]: node 3: bad \"shape\""));
        assert!(t.contains("  = help: fix it"));
        assert!(t.contains("info[P0203]: graph: fold me"));
        assert!(t.contains("  = fix: set microbatches to 4"));
        assert!(t.contains("error[P2101]: layer 2: misplaced retry"));
    }

    #[test]
    fn json_escapes_and_terminates() {
        let j = render_json(&sample());
        assert!(j.starts_with("[\n"));
        assert!(j.ends_with("]\n"));
        assert!(j.contains(r#""message":"bad \"shape\"""#));
        assert!(j.contains(r#""message":"batch\tissue""#));
        assert!(j.contains(r#""span":{"kind":"node","id":3}"#));
        assert!(j.contains(r#""suggestion":null"#));
        assert!(j.contains(r#""fix":null"#));
        assert!(j.contains(
            r#""fix":{"description":"set microbatches to 4","edit":{"kind":"set_microbatches","value":4}}"#
        ));
        assert!(j.contains(r#""span":{"kind":"layer","index":2}"#));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
