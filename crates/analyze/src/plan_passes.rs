//! Plan-level passes: structural legality, device accounting, sharding
//! divisibility, and memory fit.

use predtop_cluster::GpuSpec;
use predtop_ir::Graph;
use predtop_models::ModelSpec;
use predtop_parallel::intra::IntraPlan;
use predtop_parallel::sharding::Sharding;
use predtop_parallel::{table3_configs, MeshShape, ParallelConfig, PlanRule};
use predtop_sim::memory::{activation_profile, estimate_stage_memory, fits_on, MemoryEstimate};

use crate::dataflow::peak_resident_bytes;
use crate::diag::{Diagnostic, FixEdit, Severity, Span};
use crate::pass::{PlanContext, PlanPass};

/// Stable code for one [`PlanRule`] (the `P11xx` block).
pub fn plan_rule_code(rule: PlanRule) -> u16 {
    match rule {
        PlanRule::NonEmpty => 1101,
        PlanRule::ModelMatch => 1102,
        PlanRule::Contiguous => 1103,
        PlanRule::ConfigFillsMesh => 1104,
        PlanRule::FullCoverage => 1105,
    }
}

/// `plan-structure` — `PipelinePlan::check`'s contiguity/coverage rules
/// lifted onto diagnostics, codes `P1101`–`P1105`.
pub struct PlanStructurePass;

impl PlanPass for PlanStructurePass {
    fn name(&self) -> &'static str {
        "plan-structure"
    }

    fn description(&self) -> &'static str {
        "stages tile the model contiguously and fill their meshes"
    }

    fn run(&self, ctx: &PlanContext<'_>) -> Vec<Diagnostic> {
        ctx.plan
            .check(ctx.model)
            .into_iter()
            .map(|v| {
                let span = match v.stage {
                    Some(i) => Span::Stage(i),
                    None => Span::Plan,
                };
                Diagnostic::new(plan_rule_code(v.rule), Severity::Error, span, v.message)
            })
            .collect()
    }
}

/// `device-budget` — the plan's stages must fit inside the cluster
/// (`P1201` total budget, `P1202` per-stage sub-mesh shape). Skipped
/// when [`crate::PlanCheckOptions::cluster`] is `None`.
pub struct DeviceBudgetPass;

impl PlanPass for DeviceBudgetPass {
    fn name(&self) -> &'static str {
        "device-budget"
    }

    fn description(&self) -> &'static str {
        "device accounting against the cluster's shape and budget"
    }

    fn run(&self, ctx: &PlanContext<'_>) -> Vec<Diagnostic> {
        let Some(cluster) = ctx.options.cluster else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let used = ctx.plan.devices_used();
        if used > cluster.num_devices() {
            out.push(
                Diagnostic::new(
                    1201,
                    Severity::Error,
                    Span::Plan,
                    format!(
                        "plan occupies {used} devices, cluster {} has {}",
                        cluster.label(),
                        cluster.num_devices()
                    ),
                )
                .with_suggestion("merge stages or shrink per-stage meshes"),
            );
        }
        for (i, ps) in ctx.plan.stages.iter().enumerate() {
            if ps.mesh.nodes > cluster.nodes || ps.mesh.gpus_per_node > cluster.gpus_per_node {
                let mut d = Diagnostic::new(
                    1202,
                    Severity::Error,
                    Span::Stage(i),
                    format!(
                        "stage sub-mesh {} does not fit cluster {}",
                        ps.mesh.label(),
                        cluster.label()
                    ),
                );
                // machine-applicable: clamp the sub-mesh to the cluster
                // and re-fill it with the nearest legal configuration
                let clamped = MeshShape::new(
                    ps.mesh.nodes.min(cluster.nodes),
                    ps.mesh.gpus_per_node.min(cluster.gpus_per_node),
                );
                if let Some(c) =
                    nearest_legal_config(ctx.model, ctx.plan.microbatches, clamped, ps.config)
                {
                    d = d.with_fix(
                        format!(
                            "clamp stage {i} to sub-mesh {} with dp={}, mp={}",
                            clamped.label(),
                            c.dp,
                            c.mp
                        ),
                        FixEdit::SetStageMesh {
                            stage: i,
                            nodes: clamped.nodes,
                            gpus_per_node: clamped.gpus_per_node,
                            dp: c.dp,
                            mp: c.mp,
                        },
                    );
                }
                out.push(d);
            }
        }
        out
    }
}

/// The mesh-filling configuration closest to `current` that passes
/// every divisibility rule, or `None` when no Table III configuration
/// of `mesh` is legal (or the micro-batch split itself is broken).
/// Distance is `|dp−dp'| + |mp−mp'|` with a deterministic `(mp, dp)`
/// tie-break, so fix-its are reproducible.
pub fn nearest_legal_config(
    model: &ModelSpec,
    microbatches: usize,
    mesh: MeshShape,
    current: ParallelConfig,
) -> Option<ParallelConfig> {
    if microbatches == 0 || !model.batch.is_multiple_of(microbatches) {
        return None;
    }
    let per_mb = model.batch / microbatches;
    table3_configs(mesh)
        .into_iter()
        .filter(|c| {
            (c.dp <= 1 || per_mb.is_multiple_of(c.dp))
                && (c.mp <= 1
                    || (model.hidden.is_multiple_of(c.mp) && model.num_heads.is_multiple_of(c.mp)))
        })
        .min_by_key(|c| {
            (
                c.dp.abs_diff(current.dp) + c.mp.abs_diff(current.mp),
                c.mp,
                c.dp,
            )
        })
}

/// The sharding/microbatch divisibility rules for one candidate
/// configuration, codes `P1301`–`P1304`. Shared by the
/// [`DivisibilityPass`] (per planned stage) and the checked search's
/// [`crate::StaticLegality`] filter (per enumerated candidate).
///
/// When `mesh` is known and the span names a stage, each degree
/// violation carries a machine-applicable fix: replace the stage's
/// configuration with the [`nearest_legal_config`] of its mesh (the
/// "round down to the nearest legal divisor" edit, kept mesh-filling so
/// the fix never trades a `P13xx` for a `P1104`).
pub fn divisibility_diags(
    model: &ModelSpec,
    microbatches: usize,
    config: ParallelConfig,
    span: Span,
    mesh: Option<MeshShape>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if microbatches == 0 || !model.batch.is_multiple_of(microbatches) {
        // machine-applicable: the largest dividing count not above the
        // requested one (explicit value => idempotent)
        let value = (1..=microbatches.max(1))
            .rev()
            .find(|v| *v <= model.batch && model.batch.is_multiple_of(*v))
            .unwrap_or(1);
        out.push(
            Diagnostic::new(
                1301,
                Severity::Error,
                span,
                format!(
                    "batch {} does not divide into {microbatches} micro-batches",
                    model.batch
                ),
            )
            .with_suggestion("pick a micro-batch count dividing the global batch")
            .with_fix(
                format!("set micro-batch count to {value}"),
                FixEdit::SetMicrobatches { value },
            ),
        );
        return out; // per-microbatch rules are meaningless without a split
    }
    let config_fix = match (mesh, span) {
        (Some(mesh), Span::Stage(i)) => nearest_legal_config(model, microbatches, mesh, config)
            .map(|c| {
                (
                    format!("set stage {i} config to dp={}, mp={}", c.dp, c.mp),
                    FixEdit::SetStageConfig {
                        stage: i,
                        dp: c.dp,
                        mp: c.mp,
                    },
                )
            }),
        _ => None,
    };
    let with_config_fix = |d: Diagnostic| match &config_fix {
        Some((desc, edit)) => d.with_fix(desc.clone(), *edit),
        None => d,
    };
    let per_mb = model.batch / microbatches;
    if config.dp > 1 && !per_mb.is_multiple_of(config.dp) {
        out.push(with_config_fix(
            Diagnostic::new(
                1302,
                Severity::Error,
                span,
                format!(
                    "micro-batch of {per_mb} does not shard {}-way data parallel",
                    config.dp
                ),
            )
            .with_suggestion("lower dp or the micro-batch count"),
        ));
    }
    if config.mp > 1 {
        if !model.hidden.is_multiple_of(config.mp) {
            out.push(with_config_fix(Diagnostic::new(
                1303,
                Severity::Error,
                span,
                format!(
                    "hidden size {} does not shard {}-way model parallel",
                    model.hidden, config.mp
                ),
            )));
        }
        if !model.num_heads.is_multiple_of(config.mp) {
            out.push(with_config_fix(Diagnostic::new(
                1304,
                Severity::Error,
                span,
                format!(
                    "{} attention heads do not shard {}-way model parallel",
                    model.num_heads, config.mp
                ),
            )));
        }
    }
    out
}

/// `divisibility` — every planned stage's configuration must divide the
/// batch, hidden size, and head count it shards.
pub struct DivisibilityPass;

impl PlanPass for DivisibilityPass {
    fn name(&self) -> &'static str {
        "divisibility"
    }

    fn description(&self) -> &'static str {
        "sharded dims and micro-batches divide by the mesh axes"
    }

    fn run(&self, ctx: &PlanContext<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        // the plan-wide micro-batch rule once, on the plan span
        if ctx.plan.microbatches == 0 || !ctx.model.batch.is_multiple_of(ctx.plan.microbatches) {
            out.extend(divisibility_diags(
                ctx.model,
                ctx.plan.microbatches,
                ParallelConfig::SERIAL,
                Span::Plan,
                None,
            ));
            return out;
        }
        for (i, ps) in ctx.plan.stages.iter().enumerate() {
            out.extend(divisibility_diags(
                ctx.model,
                ctx.plan.microbatches,
                ps.config,
                Span::Stage(i),
                Some(ps.mesh),
            ));
        }
        out
    }
}

/// The least per-device memory any intra-stage sharding assignment can
/// reach for `graph` under `config`: every operator column-sharded
/// (activations stored `1/(mp·dp)`) and every contraction's weights
/// sharded `1/mp`. An assignment chosen by the real optimizer can only
/// use **more** memory, so rejecting on this bound never rejects a
/// feasible candidate.
pub fn stage_memory_lower_bound(graph: &Graph, config: ParallelConfig) -> MemoryEstimate {
    estimate_stage_memory(graph, &all_sharded_plan(graph, config))
}

fn all_sharded_plan(graph: &Graph, config: ParallelConfig) -> IntraPlan {
    IntraPlan {
        config,
        sharding: vec![Sharding::ColSharded; graph.len()],
        compute_time: 0.0,
        comm_time: 0.0,
        grad_sync_time: 0.0,
        total: 0.0,
    }
}

/// The liveness-tight refinement of [`stage_memory_lower_bound`]: same
/// parameter/gradient/optimizer terms, but activations are the **peak
/// resident set** over the execution schedule
/// ([`crate::dataflow::peak_resident_bytes`] with
/// `sim::memory::activation_profile` weights) instead of the
/// retain-everything sum. Transient buffers (prunable-op outputs) only
/// count while live, so this bound is provably ≤ the legacy bound —
/// every resident set is a subset of all buffers and the weights are
/// the same addends — while retained buffers keep it sound w.r.t.
/// `sim::memory`'s backward-pass model.
pub fn stage_memory_liveness_bound(graph: &Graph, config: ParallelConfig) -> MemoryEstimate {
    let plan = all_sharded_plan(graph, config);
    let legacy = estimate_stage_memory(graph, &plan);
    let weights = activation_profile(graph, &plan);
    let (peak, _) = peak_resident_bytes(graph, &weights);
    MemoryEstimate {
        activations: peak.min(legacy.activations),
        ..legacy
    }
}

/// One memory-fit diagnostic (`P1401`) if even the liveness-tight
/// lower-bound estimate overflows `gpu`, else `None`. Shared by the
/// [`MemoryFitPass`] and the checked search's [`crate::StaticLegality`]
/// filter.
pub fn memory_fit_diag(
    graph: &Graph,
    config: ParallelConfig,
    gpu: &GpuSpec,
    headroom_frac: f64,
    span: Span,
) -> Option<Diagnostic> {
    let est = stage_memory_liveness_bound(graph, config);
    if fits_on(gpu, &est, headroom_frac) {
        return None;
    }
    Some(
        Diagnostic::new(
            1401,
            Severity::Error,
            span,
            format!(
                "stage needs at least {:.1} GiB per device (liveness peak), \
                 {} has {:.1} GiB ({:.0}% headroom)",
                est.total() as f64 / (1u64 << 30) as f64,
                gpu.name,
                gpu.memory_gib,
                headroom_frac * 100.0
            ),
        )
        .with_suggestion("shard wider (more mp/dp), split the stage, or use larger devices"),
    )
}

/// `memory-fit` — each stage's liveness-tight memory lower bound must
/// fit the target device. Skipped when [`crate::PlanCheckOptions::gpu`]
/// is `None`.
pub struct MemoryFitPass;

impl PlanPass for MemoryFitPass {
    fn name(&self) -> &'static str {
        "memory-fit"
    }

    fn description(&self) -> &'static str {
        "per-stage memory lower bound vs device capacity (sim::memory)"
    }

    fn run(&self, ctx: &PlanContext<'_>) -> Vec<Diagnostic> {
        let Some(gpu) = &ctx.options.gpu else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (i, ps) in ctx.plan.stages.iter().enumerate() {
            let graph = ps.stage.build_graph();
            if let Some(d) = memory_fit_diag(
                &graph,
                ps.config,
                gpu,
                ctx.options.headroom_frac,
                Span::Stage(i),
            ) {
                out.push(d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predtop_models::{ModelSpec, StageSpec};

    /// The liveness bound never exceeds the legacy retain-everything
    /// bound, and on real transformer stages (which contain transient
    /// reshape/convert buffers) it is strictly tighter — the property
    /// the checked search's extra pruning rides on.
    #[test]
    fn liveness_bound_is_tighter_on_benchmark_stages() {
        for (model, name) in [
            (ModelSpec::gpt3_1p3b(8), "gpt3"),
            (ModelSpec::moe_2p6b(8), "moe"),
        ] {
            let g = StageSpec::new(model, 0, 2.min(model.num_layers)).build_graph();
            for config in [ParallelConfig::SERIAL, ParallelConfig::new(2, 1)] {
                let legacy = stage_memory_lower_bound(&g, config);
                let live = stage_memory_liveness_bound(&g, config);
                assert_eq!(live.params, legacy.params, "{name}");
                assert_eq!(live.grads, legacy.grads, "{name}");
                assert_eq!(live.optimizer, legacy.optimizer, "{name}");
                assert!(
                    live.activations < legacy.activations,
                    "{name}: expected strict tightening, got {} vs {}",
                    live.activations,
                    legacy.activations
                );
            }
        }
    }
}
