//! Applying machine-applicable fixes: the engine behind
//! `predtop-lint --fix`.
//!
//! A [`crate::diag::FixEdit`] is a structured, absolute edit to a
//! `PipelinePlan` — it *sets* fields rather than adjusting them, so
//! applying the same edit twice is a no-op. [`fix_plan`] drives the
//! analyze → apply loop to a fixpoint: each round re-runs the full plan
//! analysis, applies every attached edit, and stops as soon as a round
//! changes nothing. Because edits are absolute and every pass is a pure
//! function of the plan, a second [`fix_plan`] invocation on the output
//! is guaranteed to apply zero edits — idempotence by construction,
//! which CI asserts by fixing twice and diffing.

use predtop_models::ModelSpec;
use predtop_parallel::{MeshShape, ParallelConfig, PipelinePlan};

use crate::diag::{Diagnostic, FixEdit};
use crate::pass::PlanCheckOptions;
use crate::registry::analyze_plan;

/// Apply one edit; `true` iff the plan changed.
pub fn apply_edit(plan: &mut PipelinePlan, edit: FixEdit) -> bool {
    match edit {
        FixEdit::SetMicrobatches { value } => {
            let changed = plan.microbatches != value;
            plan.microbatches = value;
            changed
        }
        FixEdit::SetStageConfig { stage, dp, mp } => match plan.stages.get_mut(stage) {
            Some(ps) => {
                let next = ParallelConfig::new(dp, mp);
                let changed = ps.config != next;
                ps.config = next;
                changed
            }
            None => false,
        },
        FixEdit::SetStageMesh {
            stage,
            nodes,
            gpus_per_node,
            dp,
            mp,
        } => match plan.stages.get_mut(stage) {
            Some(ps) => {
                let mesh = MeshShape::new(nodes, gpus_per_node);
                let config = ParallelConfig::new(dp, mp);
                let changed = ps.mesh != mesh || ps.config != config;
                ps.mesh = mesh;
                ps.config = config;
                changed
            }
            None => false,
        },
    }
}

/// The unique edits attached to `diags`, first-seen order preserved.
/// Several diagnostics on one stage typically carry the same edit (the
/// `P1302`/`P1303`/`P1304` family all point at one replacement config);
/// deduplicating keeps the applied-edit count meaningful.
pub fn collect_edits(diags: &[Diagnostic]) -> Vec<FixEdit> {
    let mut out: Vec<FixEdit> = Vec::new();
    for d in diags {
        if let Some(f) = &d.fix {
            if !out.contains(&f.edit) {
                out.push(f.edit);
            }
        }
    }
    out
}

/// What one [`fix_plan`] run did.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The fixed plan.
    pub plan: PipelinePlan,
    /// Analyze → apply rounds executed (1 = already clean of fixable
    /// findings).
    pub rounds: usize,
    /// Edits that actually changed the plan, summed over rounds.
    pub applied: usize,
    /// Findings of the final analysis (whatever has no machine fix).
    pub remaining: Vec<Diagnostic>,
}

/// Bound on analyze → apply rounds. Each round either changes the plan
/// or terminates the loop, and every edit family strictly reduces its
/// own violation class, so real plans settle in one or two rounds —
/// the cap is a backstop against a (hypothetically) cyclic fix set.
pub const MAX_FIX_ROUNDS: usize = 8;

/// Run the analyzer and apply every machine-applicable fix, repeating
/// until a round changes nothing (or [`MAX_FIX_ROUNDS`] is hit).
pub fn fix_plan(plan: &PipelinePlan, model: &ModelSpec, options: &PlanCheckOptions) -> FixOutcome {
    let mut plan = plan.clone();
    let mut applied = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let diags = analyze_plan(&plan, model, options);
        let mut changed = false;
        for edit in collect_edits(&diags) {
            changed |= apply_edit(&mut plan, edit);
        }
        if changed {
            applied += 1;
        }
        if !changed || rounds >= MAX_FIX_ROUNDS {
            let remaining = if changed {
                analyze_plan(&plan, model, options)
            } else {
                diags
            };
            return FixOutcome {
                plan,
                rounds,
                applied,
                remaining,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use predtop_models::StageSpec;
    use predtop_parallel::PlannedStage;

    fn small_model() -> ModelSpec {
        let mut m = ModelSpec::gpt3_1p3b(8);
        m.num_layers = 4;
        m
    }

    fn options(cluster: MeshShape) -> PlanCheckOptions {
        PlanCheckOptions {
            cluster: Some(cluster),
            gpu: None,
            headroom_frac: 0.1,
        }
    }

    /// A plan whose stage config oversharded the head count: dp=1, mp=4
    /// on a 4-device mesh with only 2 heads.
    fn broken_config_plan(m: ModelSpec) -> PipelinePlan {
        PipelinePlan {
            stages: vec![PlannedStage {
                stage: StageSpec::new(m, 0, m.num_layers),
                mesh: MeshShape::new(1, 4),
                config: ParallelConfig::new(1, 4),
            }],
            microbatches: 4,
        }
    }

    #[test]
    fn fix_repairs_an_oversharded_config() {
        let mut m = small_model();
        m.num_heads = 2;
        let plan = broken_config_plan(m);
        let opts = options(MeshShape::new(1, 4));
        assert!(has_errors(&analyze_plan(&plan, &m, &opts)));

        let out = fix_plan(&plan, &m, &opts);
        assert!(out.applied >= 1);
        assert!(
            !has_errors(&out.remaining),
            "fixed plan still errors: {:?}",
            out.remaining
        );
        // the mesh still holds 4 devices and the config fills it
        assert_eq!(out.plan.stages[0].config.num_devices(), 4);
    }

    #[test]
    fn fix_repairs_a_bad_microbatch_count() {
        let m = small_model(); // batch 8
        let mut plan = broken_config_plan(m);
        plan.stages[0].config = ParallelConfig::new(4, 1);
        plan.microbatches = 3; // 8 % 3 != 0
        let opts = options(MeshShape::new(1, 4));

        let out = fix_plan(&plan, &m, &opts);
        assert_eq!(out.plan.microbatches, 2, "largest dividing count ≤ 3");
        assert!(!has_errors(&out.remaining), "{:?}", out.remaining);
    }

    #[test]
    fn fix_clamps_an_oversized_submesh() {
        let m = small_model();
        let mut plan = broken_config_plan(m);
        plan.stages[0].mesh = MeshShape::new(2, 4); // cluster is 1×4
        plan.stages[0].config = ParallelConfig::new(2, 4);
        let opts = options(MeshShape::new(1, 4));

        let out = fix_plan(&plan, &m, &opts);
        assert_eq!(out.plan.stages[0].mesh, MeshShape::new(1, 4));
        assert!(!has_errors(&out.remaining), "{:?}", out.remaining);
    }

    #[test]
    fn fix_is_idempotent() {
        for (heads, mb) in [(2, 4), (8, 3), (2, 3)] {
            let mut m = small_model();
            m.num_heads = heads;
            let mut plan = broken_config_plan(m);
            plan.microbatches = mb;
            let opts = options(MeshShape::new(1, 4));

            let once = fix_plan(&plan, &m, &opts);
            let twice = fix_plan(&once.plan, &m, &opts);
            assert_eq!(twice.plan, once.plan, "second fix changed the plan");
            assert_eq!(twice.applied, 0, "second fix applied edits");
            assert_eq!(twice.rounds, 1);
        }
    }

    #[test]
    fn clean_plans_pass_through_untouched() {
        let m = small_model();
        let plan = PipelinePlan {
            stages: vec![PlannedStage {
                stage: StageSpec::new(m, 0, m.num_layers),
                mesh: MeshShape::new(1, 1),
                config: ParallelConfig::SERIAL,
            }],
            microbatches: 1,
        };
        let opts = options(MeshShape::new(1, 4));
        let out = fix_plan(&plan, &m, &opts);
        assert_eq!(out.plan, plan);
        assert_eq!(out.applied, 0);
        assert_eq!(out.rounds, 1);
    }
}
