//! The pass abstraction: uniform interfaces for graph-level and
//! plan-level analyses.
//!
//! A pass is a pure function from an analysis subject to a list of
//! [`Diagnostic`]s. Passes must be `Send + Sync` so the registry can fan
//! independent passes out across `predtop-runtime`'s worker pool; the
//! registry re-sorts the merged findings into the canonical order, so a
//! pass never needs to care about scheduling.

use predtop_cluster::GpuSpec;
use predtop_ir::Graph;
use predtop_models::ModelSpec;
use predtop_parallel::{MeshShape, PipelinePlan};

use crate::diag::Diagnostic;

/// A static analysis over one operator graph.
pub trait GraphPass: Send + Sync {
    /// Short kebab-case identifier (`semantics`, `dead-code`, ...).
    fn name(&self) -> &'static str;

    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;

    /// Run the pass; findings may be returned in any order.
    fn run(&self, graph: &Graph) -> Vec<Diagnostic>;
}

/// Options shared by the plan-level passes.
#[derive(Debug, Clone)]
pub struct PlanCheckOptions {
    /// Cluster the plan must fit into; `None` disables the device-budget
    /// pass.
    pub cluster: Option<MeshShape>,
    /// Device the memory-fit pass sizes stages against; `None` disables
    /// it.
    pub gpu: Option<GpuSpec>,
    /// Fraction of device memory the memory-fit pass keeps free for
    /// workspace and fragmentation (0.1 = reject above 90% capacity).
    pub headroom_frac: f64,
}

impl Default for PlanCheckOptions {
    fn default() -> PlanCheckOptions {
        PlanCheckOptions {
            cluster: None,
            gpu: None,
            headroom_frac: 0.1,
        }
    }
}

/// Everything a plan-level pass can see.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// The plan under analysis.
    pub plan: &'a PipelinePlan,
    /// The model the plan claims to parallelize.
    pub model: &'a ModelSpec,
    /// Shared pass options.
    pub options: &'a PlanCheckOptions,
}

/// A static analysis over one pipeline plan.
pub trait PlanPass: Send + Sync {
    /// Short kebab-case identifier (`plan-structure`, `memory-fit`, ...).
    fn name(&self) -> &'static str;

    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;

    /// Run the pass; findings may be returned in any order.
    fn run(&self, ctx: &PlanContext<'_>) -> Vec<Diagnostic>;
}
