//! Integration tests: builder-valid graphs lint clean (property), the
//! JSON renderer's schema is frozen (golden file), the benchmark models
//! are clean at every thread count, and the `predtop-lint` CLI's exit
//! codes hold.

use proptest::prelude::*;

use predtop_analyze::plan_passes::{stage_memory_liveness_bound, stage_memory_lower_bound};
use predtop_analyze::{
    analyze_graph, analyze_graph_with_threads, analyze_plan_with_threads, has_errors, render_json,
    sort_diagnostics, BitSet, Lattice, LiveBuffers, PlanCheckOptions, Severity,
};
use predtop_cluster::GpuSpec;
use predtop_ir::{DType, Graph, GraphBuilder, OpKind, Shape};
use predtop_models::{ModelSpec, StageSpec};
use predtop_parallel::{MeshShape, ParallelConfig, PipelinePlan, PlannedStage};
use predtop_sim::memory::fits_on;

// ---- property: valid builder graphs have zero Error findings --------

/// Random graphs assembled only from rule-respecting pieces: same-shape
/// elementwise chains, `dot`s with a declared contracted size, and
/// shape-shrinking reductions, all in one dtype. Dead nodes happen
/// naturally (only the last value is an output) — they must surface as
/// warnings, never errors.
fn arb_clean_graph() -> impl Strategy<Value = Graph> {
    (2usize..30, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let first = b.input(Shape::from([4, 4]), DType::F32);
        // ids of nodes carrying the canonical [4, 4] shape
        let mut ids = vec![first];
        for _ in 1..n {
            let a = ids[rng.gen_range(0..ids.len())];
            let c = ids[rng.gen_range(0..ids.len())];
            let id = match rng.gen_range(0..5) {
                0 => b.input(Shape::from([4, 4]), DType::F32),
                1 => b.binary(OpKind::Add, a, c),
                2 => b.binary(OpKind::Mul, a, c),
                3 => b.unary(OpKind::Tanh, a),
                _ => b.dot(a, c, Shape::from([4, 4]), DType::F32, 4),
            };
            ids.push(id);
        }
        let last = *ids.last().unwrap();
        b.finish(&[last]).unwrap()
    })
}

proptest! {
    #[test]
    fn prop_builder_valid_graphs_have_no_errors(g in arb_clean_graph()) {
        let diags = analyze_graph(&g);
        for d in &diags {
            prop_assert!(
                d.severity != Severity::Error,
                "false positive {} on a rule-respecting graph: {}",
                d.code,
                d.message
            );
        }
    }

    #[test]
    fn prop_report_is_thread_count_invariant(g in arb_clean_graph()) {
        let one = analyze_graph_with_threads(&g, 1);
        let four = analyze_graph_with_threads(&g, 4);
        let eight = analyze_graph_with_threads(&g, 8);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&four, &eight);
    }
}

// ---- property: the dataflow lattice laws ----------------------------

/// A random subset of `[0, n)` decoded from a seed bitmask.
fn subset(n: usize, seed: u64) -> BitSet {
    let mut s = BitSet::empty(n);
    for i in 0..n.min(64) {
        if seed & (1 << i) != 0 {
            s.insert(i);
        }
    }
    s
}

proptest! {
    /// The `LiveBuffers` lattice satisfies the laws the fixpoint
    /// solver's termination and confluence arguments rest on
    /// (DESIGN.md §12): join is idempotent, commutative, and
    /// associative; `bottom` is its identity; the transfer function is
    /// monotone w.r.t. the join order.
    #[test]
    fn prop_live_buffers_satisfies_the_lattice_laws(
        g in arb_clean_graph(),
        sa in any::<u64>(),
        sb in any::<u64>(),
        sc in any::<u64>(),
    ) {
        let lat = LiveBuffers::new(&g);
        let n = g.len();
        let (a, b, c) = (subset(n, sa), subset(n, sb), subset(n, sc));
        let join = |x: &BitSet, y: &BitSet| {
            let mut out = x.clone();
            lat.join(&mut out, y);
            out
        };
        // idempotent, commutative, associative, bottom is the identity
        prop_assert_eq!(join(&a, &a), a.clone());
        prop_assert_eq!(join(&a, &b), join(&b, &a));
        prop_assert_eq!(join(&join(&a, &b), &c), join(&a, &join(&b, &c)));
        prop_assert_eq!(join(&a, &lat.bottom()), a.clone());
        // transfer is monotone: a ⊑ a⊔b ⇒ transfer(a) ⊑ transfer(a⊔b)
        let ab = join(&a, &b);
        for node in 0..n {
            let ta = lat.transfer(node, &a);
            let tab = lat.transfer(node, &ab);
            prop_assert_eq!(
                join(&ta, &tab), tab.clone(),
                "transfer not monotone at node {}", node
            );
        }
    }
}

// ---- property: randomized stages + plans ----------------------------

/// Random shrunk transformer stages: small dimensions so graph builds
/// stay fast, but a real mix of layer windows and head counts.
fn arb_stage() -> impl Strategy<Value = StageSpec> {
    (
        1usize..=8,   // batch
        0usize..=1,   // hidden selector
        1usize..=3,   // layers
        any::<u64>(), // window + head seed
    )
        .prop_map(|(batch, h, layers, seed)| {
            let mut m = ModelSpec::gpt3_1p3b(batch);
            m.seq_len = 32;
            m.hidden = [64, 128][h];
            m.num_heads = [2, 4, 8][(seed % 3) as usize];
            m.vocab = 512;
            m.num_layers = layers + (seed % 2) as usize;
            let start = (seed / 2) as usize % m.num_layers;
            StageSpec::new(m, start, (start + layers).min(m.num_layers))
        })
}

fn arb_config() -> impl Strategy<Value = ParallelConfig> {
    (0usize..3, 0usize..3).prop_map(|(d, m)| ParallelConfig::new([1, 2, 4][d], [1, 2, 4][m]))
}

proptest! {
    /// The liveness-tight memory bound is sound: on every random stage
    /// and configuration it never exceeds the legacy retain-everything
    /// bound in any component, so it never rejects a candidate the
    /// legacy all-sharded estimate (`sim::memory::fits_on`) accepts —
    /// on real hardware budgets or on an adversarially tight one.
    #[test]
    fn prop_liveness_bound_never_exceeds_the_legacy_sum(
        stage in arb_stage(),
        config in arb_config(),
        budget_num in 1u64..=100,
    ) {
        let g = stage.build_graph();
        let legacy = stage_memory_lower_bound(&g, config);
        let live = stage_memory_liveness_bound(&g, config);
        prop_assert_eq!(live.params, legacy.params);
        prop_assert_eq!(live.grads, legacy.grads);
        prop_assert_eq!(live.optimizer, legacy.optimizer);
        prop_assert!(live.activations <= legacy.activations);
        prop_assert!(live.total() <= legacy.total());

        // a budget sweeping from far-too-small to comfortable, plus
        // the two real platforms
        let tight = GpuSpec {
            memory_gib: legacy.total() as f64 * budget_num as f64 / 50.0
                / (1u64 << 30) as f64,
            ..GpuSpec::a40()
        };
        for gpu in [tight, GpuSpec::a40(), GpuSpec::a5500()] {
            for headroom in [0.0, 0.1] {
                if fits_on(&gpu, &legacy, headroom) {
                    prop_assert!(
                        fits_on(&gpu, &live, headroom),
                        "liveness bound rejected a candidate the legacy \
                         all-sharded estimate accepts on {}",
                        gpu.name
                    );
                }
            }
        }
    }

    /// Plan analysis is bit-identical at 1, 4, and 8 worker threads,
    /// even over randomized (frequently illegal) plans where several
    /// passes fire at once.
    #[test]
    fn prop_plan_report_is_thread_count_invariant(
        stage in arb_stage(),
        config in arb_config(),
        microbatches in 1usize..=5,
        devices in 0usize..3,
    ) {
        let model = stage.model;
        let plan = PipelinePlan {
            stages: vec![PlannedStage {
                stage,
                mesh: MeshShape::new(1, [1, 2, 4][devices]),
                config,
            }],
            microbatches,
        };
        let opts = PlanCheckOptions {
            cluster: Some(MeshShape::new(1, 4)),
            gpu: Some(GpuSpec::a5500()),
            headroom_frac: 0.1,
        };
        let one = analyze_plan_with_threads(&plan, &model, &opts, 1);
        let four = analyze_plan_with_threads(&plan, &model, &opts, 4);
        let eight = analyze_plan_with_threads(&plan, &model, &opts, 8);
        prop_assert_eq!(&one, &four);
        prop_assert_eq!(&four, &eight);
    }
}

// ---- golden file: the JSON schema is a frozen contract --------------

/// A graph hitting one pass of each family: a mismatched `add`
/// (semantics, error), a dead `exp` (flow, warning), a literal-only
/// `mul` (const-fold, info), and a same-dtype convert (dtype, info).
fn kitchen_sink_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(Shape::from([4, 8]), DType::F32);
    let y = b.input(Shape::from([4, 9]), DType::F32);
    let bad = b.op(OpKind::Add, &[x, y], Shape::from([4, 8]), DType::F32);
    let lit = b.literal(Shape::from([4, 8]), DType::F32);
    let fold = b.binary(OpKind::Mul, lit, lit);
    let merged = b.binary(OpKind::Add, bad, fold);
    let _dead = b.unary(OpKind::Exp, x);
    let same = b.op(
        OpKind::ConvertElementType,
        &[merged],
        Shape::from([4, 8]),
        DType::F32,
    );
    b.finish(&[same]).unwrap()
}

#[test]
fn golden_json_report_is_stable() {
    let diags = analyze_graph(&kitchen_sink_graph());
    assert!(has_errors(&diags));
    let rendered = render_json(&diags);
    // regenerate with: BLESS=1 cargo test -p predtop-analyze golden
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/kitchen_sink.json"
            ),
            &rendered,
        )
        .unwrap();
    }
    assert_eq!(
        rendered,
        include_str!("golden/kitchen_sink.json"),
        "the JSON diagnostic schema changed; bless tests/golden/kitchen_sink.json \
         only if the change is intentional"
    );
}

/// Second golden: the schema extensions of DESIGN.md §12 — `P2xxx`
/// stack-ordering codes with `layer` spans, and a `P13xx` finding
/// carrying a machine-applicable `fix` object.
#[test]
fn golden_json_stack_and_fix_report_is_stable() {
    use predtop_analyze::plan_passes::divisibility_diags;
    use predtop_analyze::{analyze_stack, Span};
    use predtop_service::{LayerTag, StackSpec};

    let misordered = StackSpec::from_layers([
        LayerTag::Retry,
        LayerTag::FaultInject,
        LayerTag::Batched,
        LayerTag::Deadline,
        LayerTag::Instrumented,
    ]);
    let mut diags = analyze_stack(&misordered);
    let mut m = ModelSpec::gpt3_1p3b(8);
    m.num_layers = 2;
    diags.extend(divisibility_diags(
        &m,
        3,
        ParallelConfig::SERIAL,
        Span::Plan,
        None,
    ));
    sort_diagnostics(&mut diags);
    assert!(has_errors(&diags));
    let rendered = render_json(&diags);
    // regenerate with: BLESS=1 cargo test -p predtop-analyze golden
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/stack_fix.json"),
            &rendered,
        )
        .unwrap();
    }
    assert_eq!(
        rendered,
        include_str!("golden/stack_fix.json"),
        "the JSON schema for layer spans or fix objects changed; bless \
         tests/golden/stack_fix.json only if the change is intentional"
    );
}

// ---- benchmark models lint clean ------------------------------------

#[test]
fn benchmark_model_graphs_are_clean() {
    for model in [ModelSpec::gpt3_1p3b(8), ModelSpec::moe_2p6b(8)] {
        let graph = StageSpec::new(model, 0, model.num_layers).build_graph();
        let diags = analyze_graph(&graph);
        // the liveness pass always reports its peak as one `P0501` info;
        // anything else — and any warning or error — is a regression
        let unexpected: Vec<_> = diags.iter().filter(|d| d.code.0 != 501).collect();
        assert!(
            unexpected.is_empty(),
            "{:?} emitted graph has findings: {unexpected:?}",
            model.kind
        );
        assert_eq!(
            diags.iter().filter(|d| d.code.0 == 501).count(),
            1,
            "{:?} expected exactly one liveness info",
            model.kind
        );
        assert!(diags
            .iter()
            .filter(|d| d.code.0 == 501)
            .all(|d| d.severity == Severity::Info));
    }
}

#[test]
fn sorting_is_idempotent_on_reports() {
    let mut diags = analyze_graph(&kitchen_sink_graph());
    let before = diags.clone();
    sort_diagnostics(&mut diags);
    assert_eq!(diags, before, "analyze_graph must return sorted findings");
}

// ---- the predtop-lint CLI -------------------------------------------

fn lint_cmd() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_predtop-lint"))
}

#[test]
fn cli_benchmark_models_exit_zero() {
    let out = lint_cmd().args(["--models", "both"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("gpt3-1.3b"));
    assert!(stdout.contains("moe-2.6b"));
}

#[test]
fn cli_injected_fault_exits_one() {
    let out = lint_cmd()
        .args(["--models", "none", "--inject-fault"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[P0107]"), "stdout: {stdout}");

    let json = lint_cmd()
        .args(["--models", "none", "--inject-fault", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(json.status.code(), Some(1));
    let stdout = String::from_utf8(json.stdout).unwrap();
    assert!(stdout.contains(r#""code":"P0107""#), "stdout: {stdout}");
}

#[test]
fn cli_stack_lints_the_canonical_stacks_clean() {
    let out = lint_cmd().args(["--stack"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("stack:default-search"), "{stdout}");
    assert!(stdout.contains("stack:raw-cache"), "{stdout}");
    assert!(
        stdout.contains("(0 errors, 0 warnings, 0 infos)"),
        "{stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains(
            "FaultInject → Deadline → Retry → MemoizeStructural → Batched → Instrumented"
        ),
        "{stderr}"
    );
}

#[test]
fn cli_injected_stack_fault_exits_one() {
    let out = lint_cmd()
        .args(["--models", "none", "--inject-stack-fault"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[P2101]"), "{stdout}");
    assert!(stdout.contains("error[P2104]"), "{stdout}");
    // the clean canonical stacks don't mask the injected fault
    let both = lint_cmd()
        .args(["--stack", "--inject-stack-fault"])
        .output()
        .unwrap();
    assert_eq!(both.status.code(), Some(1));
}

#[test]
fn cli_injected_plan_fault_exits_one_and_fix_repairs_it() {
    let broken = lint_cmd()
        .args(["--models", "none", "--inject-plan-fault"])
        .output()
        .unwrap();
    assert_eq!(broken.status.code(), Some(1));
    let stdout = String::from_utf8(broken.stdout).unwrap();
    assert!(stdout.contains("error[P1301]"), "{stdout}");
    assert!(stdout.contains("= fix:"), "{stdout}");

    let fixed = lint_cmd()
        .args(["--models", "none", "--inject-plan-fault", "--fix"])
        .output()
        .unwrap();
    assert_eq!(
        fixed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&fixed.stderr)
    );
    let stderr = String::from_utf8(fixed.stderr).unwrap();
    assert!(stderr.contains("edit round(s)"), "{stderr}");
    assert!(
        stderr.contains("idempotent (second pass applied 0 edits)"),
        "{stderr}"
    );
    let stdout = String::from_utf8(fixed.stdout).unwrap();
    assert!(stdout.contains("(0 errors"), "{stdout}");
}

#[test]
fn cli_bad_models_value_is_a_structured_diagnostic() {
    let out = lint_cmd().args(["--models", "gpt5"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[P0901]"), "{stderr}");
    assert!(stderr.contains("both|gpt3|moe|none"), "{stderr}");
    assert!(stderr.contains("usage: predtop-lint"), "{stderr}");
}

#[test]
fn cli_reports_lint_cache_accounting() {
    let out = lint_cmd().args(["--models", "gpt3"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("lint cache: 0 hits, 1 misses"), "{stderr}");
}

#[test]
fn cli_bad_input_exits_two() {
    let out = lint_cmd().args(["--format", "yaml"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let dir = std::env::temp_dir();
    let path = dir.join("predtop-lint-malformed-test.json");
    std::fs::write(&path, "this is not a graph").unwrap();
    let out = lint_cmd().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&path).ok();

    let out = lint_cmd()
        .arg(dir.join("predtop-lint-no-such-file"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
