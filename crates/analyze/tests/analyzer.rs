//! Integration tests: builder-valid graphs lint clean (property), the
//! JSON renderer's schema is frozen (golden file), the benchmark models
//! are clean at every thread count, and the `predtop-lint` CLI's exit
//! codes hold.

use proptest::prelude::*;

use predtop_analyze::{
    analyze_graph, analyze_graph_with_threads, has_errors, render_json, sort_diagnostics, Severity,
};
use predtop_ir::{DType, Graph, GraphBuilder, OpKind, Shape};
use predtop_models::{ModelSpec, StageSpec};

// ---- property: valid builder graphs have zero Error findings --------

/// Random graphs assembled only from rule-respecting pieces: same-shape
/// elementwise chains, `dot`s with a declared contracted size, and
/// shape-shrinking reductions, all in one dtype. Dead nodes happen
/// naturally (only the last value is an output) — they must surface as
/// warnings, never errors.
fn arb_clean_graph() -> impl Strategy<Value = Graph> {
    (2usize..30, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        let first = b.input(Shape::from([4, 4]), DType::F32);
        // ids of nodes carrying the canonical [4, 4] shape
        let mut ids = vec![first];
        for _ in 1..n {
            let a = ids[rng.gen_range(0..ids.len())];
            let c = ids[rng.gen_range(0..ids.len())];
            let id = match rng.gen_range(0..5) {
                0 => b.input(Shape::from([4, 4]), DType::F32),
                1 => b.binary(OpKind::Add, a, c),
                2 => b.binary(OpKind::Mul, a, c),
                3 => b.unary(OpKind::Tanh, a),
                _ => b.dot(a, c, Shape::from([4, 4]), DType::F32, 4),
            };
            ids.push(id);
        }
        let last = *ids.last().unwrap();
        b.finish(&[last]).unwrap()
    })
}

proptest! {
    #[test]
    fn prop_builder_valid_graphs_have_no_errors(g in arb_clean_graph()) {
        let diags = analyze_graph(&g);
        for d in &diags {
            prop_assert!(
                d.severity != Severity::Error,
                "false positive {} on a rule-respecting graph: {}",
                d.code,
                d.message
            );
        }
    }

    #[test]
    fn prop_report_is_thread_count_invariant(g in arb_clean_graph()) {
        let one = analyze_graph_with_threads(&g, 1);
        let four = analyze_graph_with_threads(&g, 4);
        prop_assert_eq!(one, four);
    }
}

// ---- golden file: the JSON schema is a frozen contract --------------

/// A graph hitting one pass of each family: a mismatched `add`
/// (semantics, error), a dead `exp` (flow, warning), a literal-only
/// `mul` (const-fold, info), and a same-dtype convert (dtype, info).
fn kitchen_sink_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let x = b.input(Shape::from([4, 8]), DType::F32);
    let y = b.input(Shape::from([4, 9]), DType::F32);
    let bad = b.op(OpKind::Add, &[x, y], Shape::from([4, 8]), DType::F32);
    let lit = b.literal(Shape::from([4, 8]), DType::F32);
    let fold = b.binary(OpKind::Mul, lit, lit);
    let merged = b.binary(OpKind::Add, bad, fold);
    let _dead = b.unary(OpKind::Exp, x);
    let same = b.op(
        OpKind::ConvertElementType,
        &[merged],
        Shape::from([4, 8]),
        DType::F32,
    );
    b.finish(&[same]).unwrap()
}

#[test]
fn golden_json_report_is_stable() {
    let diags = analyze_graph(&kitchen_sink_graph());
    assert!(has_errors(&diags));
    let rendered = render_json(&diags);
    // regenerate with: BLESS=1 cargo test -p predtop-analyze golden
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/kitchen_sink.json"
            ),
            &rendered,
        )
        .unwrap();
    }
    assert_eq!(
        rendered,
        include_str!("golden/kitchen_sink.json"),
        "the JSON diagnostic schema changed; bless tests/golden/kitchen_sink.json \
         only if the change is intentional"
    );
}

// ---- benchmark models lint clean ------------------------------------

#[test]
fn benchmark_model_graphs_are_clean() {
    for model in [ModelSpec::gpt3_1p3b(8), ModelSpec::moe_2p6b(8)] {
        let graph = StageSpec::new(model, 0, model.num_layers).build_graph();
        let diags = analyze_graph(&graph);
        assert!(
            diags.is_empty(),
            "{:?} emitted graph has findings: {diags:?}",
            model.kind
        );
    }
}

#[test]
fn sorting_is_idempotent_on_reports() {
    let mut diags = analyze_graph(&kitchen_sink_graph());
    let before = diags.clone();
    sort_diagnostics(&mut diags);
    assert_eq!(diags, before, "analyze_graph must return sorted findings");
}

// ---- the predtop-lint CLI -------------------------------------------

fn lint_cmd() -> std::process::Command {
    std::process::Command::new(env!("CARGO_BIN_EXE_predtop-lint"))
}

#[test]
fn cli_benchmark_models_exit_zero() {
    let out = lint_cmd().args(["--models", "both"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("gpt3-1.3b"));
    assert!(stdout.contains("moe-2.6b"));
}

#[test]
fn cli_injected_fault_exits_one() {
    let out = lint_cmd()
        .args(["--models", "none", "--inject-fault"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[P0107]"), "stdout: {stdout}");

    let json = lint_cmd()
        .args(["--models", "none", "--inject-fault", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(json.status.code(), Some(1));
    let stdout = String::from_utf8(json.stdout).unwrap();
    assert!(stdout.contains(r#""code":"P0107""#), "stdout: {stdout}");
}

#[test]
fn cli_bad_input_exits_two() {
    let out = lint_cmd().args(["--format", "yaml"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let dir = std::env::temp_dir();
    let path = dir.join("predtop-lint-malformed-test.json");
    std::fs::write(&path, "this is not a graph").unwrap();
    let out = lint_cmd().arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&path).ok();

    let out = lint_cmd()
        .arg(dir.join("predtop-lint-no-such-file"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
