//! Lockfile with stale-holder recovery.
//!
//! The store's plain object writes need no lock (tempfile + rename is
//! atomic and writers of the same key produce identical bytes), but
//! [`crate::Store::gc`] rewrites the pack set and must be exclusive.
//! The protocol is the classic one:
//!
//! 1. `open(O_CREAT | O_EXCL)` the lock path; success means the lock
//!    is held. The holder's pid is written into the file for
//!    post-mortem debugging.
//! 2. On `AlreadyExists`, inspect the lockfile's mtime. A lock older
//!    than the caller's staleness budget is presumed abandoned by a
//!    crashed process: it is removed and acquisition retried. A young
//!    lock yields [`LockError::Held`].
//! 3. Dropping the guard removes the file.
//!
//! Removal of a stale lock can race between two waiters; the loop
//! re-runs the exclusive create, so exactly one of them wins.

use std::fs;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Failure to acquire a [`Lockfile`].
#[derive(Debug)]
pub enum LockError {
    /// Another process holds the lock and it is not stale yet.
    Held {
        /// The lock path.
        path: PathBuf,
        /// Seconds since the lockfile was last touched.
        age_seconds: u64,
    },
    /// Filesystem error manipulating the lockfile.
    Io(io::Error),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Held { path, age_seconds } => {
                write!(f, "lock {} held for {age_seconds}s", path.display())
            }
            LockError::Io(e) => write!(f, "lockfile io error: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

impl From<io::Error> for LockError {
    fn from(e: io::Error) -> LockError {
        LockError::Io(e)
    }
}

/// An exclusively held lockfile; dropping releases it.
#[derive(Debug)]
pub struct Lockfile {
    path: PathBuf,
}

impl Lockfile {
    /// Acquire `path` exclusively, breaking locks older than
    /// `stale_after`.
    pub fn acquire(path: impl AsRef<Path>, stale_after: Duration) -> Result<Lockfile, LockError> {
        let path = path.as_ref().to_path_buf();
        // One retry per stale break plus one for the create/remove race.
        for _ in 0..4 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(Lockfile { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let age = lock_age(&path)?;
                    match age {
                        // Holder vanished between our create and stat:
                        // just retry the create.
                        None => continue,
                        Some(age) if age > stale_after => {
                            // Presumed crashed holder; break the lock.
                            match fs::remove_file(&path) {
                                Ok(()) => continue,
                                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                                Err(e) => return Err(LockError::Io(e)),
                            }
                        }
                        Some(age) => {
                            return Err(LockError::Held {
                                path,
                                age_seconds: age.as_secs(),
                            })
                        }
                    }
                }
                Err(e) => return Err(LockError::Io(e)),
            }
        }
        Err(LockError::Held {
            path,
            age_seconds: 0,
        })
    }

    /// The lockfile path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for Lockfile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Age of the lockfile, or `None` if it no longer exists.
fn lock_age(path: &Path) -> Result<Option<Duration>, LockError> {
    match fs::metadata(path) {
        Ok(meta) => {
            let mtime = meta.modified()?;
            Ok(Some(
                SystemTime::now()
                    .duration_since(mtime)
                    .unwrap_or(Duration::ZERO),
            ))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(LockError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "predtop-lock-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_release_reacquire() {
        let dir = tmp_dir("basic");
        let path = dir.join("gc.lock");
        let guard = Lockfile::acquire(&path, Duration::from_secs(60)).unwrap();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists());
        let _guard = Lockfile::acquire(&path, Duration::from_secs(60)).unwrap();
    }

    #[test]
    fn fresh_lock_blocks_second_acquirer() {
        let dir = tmp_dir("held");
        let path = dir.join("gc.lock");
        let _guard = Lockfile::acquire(&path, Duration::from_secs(60)).unwrap();
        match Lockfile::acquire(&path, Duration::from_secs(60)) {
            Err(LockError::Held { .. }) => {}
            other => panic!("expected Held, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_is_broken_and_reacquired() {
        let dir = tmp_dir("stale");
        let path = dir.join("gc.lock");
        // Simulate a crashed holder: a lockfile nobody will release.
        fs::write(&path, "999999\n").unwrap();
        // Any positive age exceeds a zero staleness budget.
        std::thread::sleep(Duration::from_millis(20));
        let guard = Lockfile::acquire(&path, Duration::from_millis(1)).unwrap();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists());
    }
}
