//! The object database: loose objects, packs, gc.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::hash::{digest_bytes, Digest, Fnv1a128};
use crate::lock::{LockError, Lockfile};

/// Loose object file magic.
const LOOSE_MAGIC: &[u8; 4] = b"PTOB";
/// Pack file magic.
const PACK_MAGIC: &[u8; 4] = b"PTPK";
/// On-disk format version for both loose objects and packs.
const FORMAT_VERSION: u16 = 1;
/// Loose header: magic(4) version(2) kind(1) reserved(1) key_digest(16)
/// payload_len(8) payload_digest(16).
const LOOSE_HEADER_LEN: usize = 48;
/// Pack header: magic(4) version(2) reserved(2) generation(4) count(8).
const PACK_HEADER_LEN: usize = 20;
/// Pack index entry: digest(16) kind(1) offset(8) len(8) payload_digest(16).
const PACK_ENTRY_LEN: usize = 49;
/// A gc lock untouched for this long is presumed abandoned.
const GC_LOCK_STALE: Duration = Duration::from_secs(300);

/// The kinds of object the workspace persists. The tag byte is mixed
/// into the key digest, so two kinds can never collide even with equal
/// key bytes, and it is stored in the object header so a read with the
/// wrong kind fails structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// One latency reply, keyed by structural-descriptor bytes.
    Latency,
    /// A `PipelinePlan` snapshot.
    Plan,
    /// A `SearchOutcome` snapshot (plan + accounting).
    Outcome,
    /// A trained model snapshot (`ParamStore` weights + fingerprints).
    Model,
}

impl ObjectKind {
    /// All kinds, for iteration in stats/verify output.
    pub const ALL: [ObjectKind; 4] = [
        ObjectKind::Latency,
        ObjectKind::Plan,
        ObjectKind::Outcome,
        ObjectKind::Model,
    ];

    /// The stable tag byte.
    pub fn as_u8(self) -> u8 {
        match self {
            ObjectKind::Latency => 1,
            ObjectKind::Plan => 2,
            ObjectKind::Outcome => 3,
            ObjectKind::Model => 4,
        }
    }

    /// Inverse of [`ObjectKind::as_u8`].
    pub fn from_u8(tag: u8) -> Option<ObjectKind> {
        match tag {
            1 => Some(ObjectKind::Latency),
            2 => Some(ObjectKind::Plan),
            3 => Some(ObjectKind::Outcome),
            4 => Some(ObjectKind::Model),
            _ => None,
        }
    }

    /// Human-readable kind name (stats output).
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::Latency => "latency",
            ObjectKind::Plan => "plan",
            ObjectKind::Outcome => "outcome",
            ObjectKind::Model => "model",
        }
    }
}

/// Structured store failure. Corruption (mismatched digests, truncated
/// files, mangled headers) is distinguished from plain I/O so callers
/// can fall back to recompute-and-rewrite.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error outside any object's content.
    Io {
        /// What the store was doing.
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// An object's payload bytes no longer match their stored digest.
    HashMismatch {
        /// The object's address.
        digest: Digest,
    },
    /// An object file is shorter than its header claims.
    ShortRead {
        /// The object's address.
        digest: Digest,
        /// Bytes the header promised.
        wanted: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// Magic, version, or key-digest field of an object is mangled.
    BadHeader {
        /// The object's address.
        digest: Digest,
        /// What was wrong.
        reason: &'static str,
    },
    /// The object exists but was written under a different kind tag.
    KindMismatch {
        /// The object's address.
        digest: Digest,
        /// The kind the caller asked for.
        expected: u8,
        /// The kind on disk.
        found: u8,
    },
    /// The gc lock is held by a live process.
    Locked(LockError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} {}: {source}", path.display())
            }
            StoreError::HashMismatch { digest } => {
                write!(f, "object {digest}: payload digest mismatch")
            }
            StoreError::ShortRead {
                digest,
                wanted,
                have,
            } => write!(f, "object {digest}: short read ({have} of {wanted} bytes)"),
            StoreError::BadHeader { digest, reason } => {
                write!(f, "object {digest}: bad header ({reason})")
            }
            StoreError::KindMismatch {
                digest,
                expected,
                found,
            } => write!(f, "object {digest}: kind {found}, expected {expected}"),
            StoreError::Locked(e) => write!(f, "store locked: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Locked(e) => Some(e),
            _ => None,
        }
    }
}

impl StoreError {
    /// True for errors that mean "this object is damaged" (as opposed
    /// to the store being unreachable or locked) — the cases a caller
    /// should treat as a miss and repair by rewriting.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::HashMismatch { .. }
                | StoreError::ShortRead { .. }
                | StoreError::BadHeader { .. }
                | StoreError::KindMismatch { .. }
        )
    }

    fn io(op: &'static str, path: &Path, source: io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }
}

/// One pack index entry held in memory.
#[derive(Debug, Clone, Copy)]
struct PackEntry {
    digest: u128,
    kind: u8,
    offset: u64,
    len: u64,
    payload_digest: u128,
}

/// One immutable pack file with its index loaded.
#[derive(Debug)]
struct Pack {
    path: PathBuf,
    generation: u32,
    /// Sorted by digest for binary search.
    entries: Vec<PackEntry>,
}

impl Pack {
    fn lookup(&self, digest: u128) -> Option<&PackEntry> {
        self.entries
            .binary_search_by_key(&digest, |e| e.digest)
            .ok()
            .map(|i| &self.entries[i])
    }
}

/// Aggregate store accounting for `predtop store stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loose objects on disk.
    pub loose_objects: u64,
    /// Objects reachable through pack indexes.
    pub packed_objects: u64,
    /// Bytes under `objects/`.
    pub loose_bytes: u64,
    /// Bytes under `packs/`.
    pub pack_bytes: u64,
    /// Number of pack files.
    pub pack_files: u64,
    /// Highest gc generation present (0 before the first gc).
    pub generation: u32,
}

/// Outcome of a full [`Store::verify`] sweep.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Objects whose digests were re-checked.
    pub checked: u64,
    /// Of those, loose objects.
    pub loose: u64,
    /// Of those, packed objects.
    pub packed: u64,
    /// Damaged objects: address plus a human-readable reason.
    pub corrupt: Vec<(Digest, String)>,
}

impl VerifyReport {
    /// True when no object failed verification.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Outcome of one [`Store::gc`] compaction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Distinct objects in the new pack.
    pub packed: u64,
    /// Objects whose identical payload bytes were folded onto one blob.
    pub duplicates_folded: u64,
    /// Loose files removed after packing.
    pub loose_removed: u64,
    /// Prior pack files superseded and removed.
    pub packs_removed: u64,
    /// Damaged objects dropped (they can be recomputed on demand).
    pub corrupt_dropped: u64,
    /// Generation number of the pack this gc wrote (unchanged if the
    /// store was empty).
    pub generation: u32,
    /// Store bytes before compaction.
    pub bytes_before: u64,
    /// Store bytes after compaction.
    pub bytes_after: u64,
}

/// A content-addressed object store rooted at one directory.
///
/// Cheap to open; safe to share across threads (`&Store` is `Sync`) and
/// to open concurrently from several processes pointed at the same
/// directory.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    packs: Mutex<Vec<Pack>>,
    tmp_counter: AtomicU64,
}

impl Store {
    /// Open (creating if necessary) the store at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Store, StoreError> {
        let root = root.as_ref().to_path_buf();
        for sub in ["objects", "packs", "tmp"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|e| StoreError::io("create dir", &dir, e))?;
        }
        let packs = load_packs(&root.join("packs"))?;
        Ok(Store {
            root,
            packs: Mutex::new(packs),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The address of (`kind`, `key`): FNV-1a/128 over the kind tag
    /// byte followed by the caller's canonical key bytes.
    pub fn key_digest(kind: ObjectKind, key: &[u8]) -> Digest {
        let mut h = Fnv1a128::new();
        h.write_bytes(&[kind.as_u8()]);
        h.write_bytes(key);
        h.finish()
    }

    fn loose_path(&self, digest: Digest) -> PathBuf {
        let hex = digest.to_hex();
        self.root.join("objects").join(&hex[..2]).join(&hex[2..])
    }

    /// Write (or overwrite) the object at (`kind`, `key`). Atomic:
    /// the object is staged in `tmp/` and renamed into place, so a
    /// concurrent reader sees either the old object or the new one,
    /// never a torn write.
    pub fn put(&self, kind: ObjectKind, key: &[u8], payload: &[u8]) -> Result<Digest, StoreError> {
        let digest = Store::key_digest(kind, key);
        let mut file = Vec::with_capacity(LOOSE_HEADER_LEN + payload.len());
        file.extend_from_slice(LOOSE_MAGIC);
        file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        file.push(kind.as_u8());
        file.push(0);
        file.extend_from_slice(&digest.0.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&digest_bytes(payload).0.to_le_bytes());
        file.extend_from_slice(payload);

        let final_path = self.loose_path(digest);
        let fan_dir = final_path.parent().expect("loose path has a fanout dir");
        fs::create_dir_all(fan_dir).map_err(|e| StoreError::io("create fanout", fan_dir, e))?;
        let tmp = self.root.join("tmp").join(format!(
            "{}-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
            &digest.to_hex()[..12],
        ));
        fs::write(&tmp, &file).map_err(|e| StoreError::io("stage object", &tmp, e))?;
        fs::rename(&tmp, &final_path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            StoreError::io("commit object", &final_path, e)
        })?;
        Ok(digest)
    }

    /// Read the object at (`kind`, `key`). `Ok(None)` means absent;
    /// a damaged object is an `Err` whose [`StoreError::is_corruption`]
    /// is true (callers recompute and [`Store::put`] over it).
    pub fn get(&self, kind: ObjectKind, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let digest = Store::key_digest(kind, key);
        // Loose first: anything written after the last gc shadows packs.
        let path = self.loose_path(digest);
        match fs::read(&path) {
            Ok(bytes) => {
                let (found_kind, payload) = parse_loose(&bytes, digest)?;
                if found_kind != kind.as_u8() {
                    return Err(StoreError::KindMismatch {
                        digest,
                        expected: kind.as_u8(),
                        found: found_kind,
                    });
                }
                return Ok(Some(payload));
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(StoreError::io("read object", &path, e)),
        }
        if let Some(hit) = self.pack_get(kind, digest)? {
            return Ok(Some(hit));
        }
        // A gc in another process may have packed the object since this
        // handle loaded its pack indexes: rescan once on a miss.
        if self.refresh_packs()? {
            return self.pack_get(kind, digest);
        }
        Ok(None)
    }

    /// True if the object exists and is readable without corruption.
    pub fn contains(&self, kind: ObjectKind, key: &[u8]) -> bool {
        matches!(self.get(kind, key), Ok(Some(_)))
    }

    fn pack_get(&self, kind: ObjectKind, digest: Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let packs = self.packs.lock().expect("pack index lock");
        // Newest generation wins if a digest appears in several packs.
        for pack in packs.iter().rev() {
            if let Some(entry) = pack.lookup(digest.0) {
                if entry.kind != kind.as_u8() {
                    return Err(StoreError::KindMismatch {
                        digest,
                        expected: kind.as_u8(),
                        found: entry.kind,
                    });
                }
                let payload = read_pack_payload(&pack.path, entry)?;
                return Ok(Some(payload));
            }
        }
        Ok(None)
    }

    /// Reload pack indexes if the set of pack files on disk changed.
    /// Returns true when a reload happened.
    fn refresh_packs(&self) -> Result<bool, StoreError> {
        let dir = self.root.join("packs");
        let on_disk = list_pack_paths(&dir)?;
        let mut packs = self.packs.lock().expect("pack index lock");
        let loaded: Vec<&PathBuf> = packs.iter().map(|p| &p.path).collect();
        if on_disk.iter().collect::<Vec<_>>() == loaded {
            return Ok(false);
        }
        *packs = load_packs(&dir)?;
        Ok(true)
    }

    /// Walk every loose and packed object counting sizes.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let mut stats = StoreStats::default();
        for path in list_loose_paths(&self.root.join("objects"))? {
            stats.loose_objects += 1;
            stats.loose_bytes += fs::metadata(&path)
                .map_err(|e| StoreError::io("stat object", &path, e))?
                .len();
        }
        self.refresh_packs()?;
        let packs = self.packs.lock().expect("pack index lock");
        for pack in packs.iter() {
            stats.pack_files += 1;
            stats.packed_objects += pack.entries.len() as u64;
            stats.pack_bytes += fs::metadata(&pack.path)
                .map_err(|e| StoreError::io("stat pack", &pack.path, e))?
                .len();
            stats.generation = stats.generation.max(pack.generation);
        }
        Ok(stats)
    }

    /// Re-hash every object (loose and packed) against its stored
    /// digest. Never fails on corruption — damage is collected in the
    /// report.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        for path in list_loose_paths(&self.root.join("objects"))? {
            report.checked += 1;
            report.loose += 1;
            let digest = digest_from_loose_path(&path);
            match fs::read(&path) {
                Ok(bytes) => {
                    if let Err(e) = parse_loose(&bytes, digest) {
                        report.corrupt.push((digest, e.to_string()));
                    }
                }
                Err(e) => report.corrupt.push((digest, format!("unreadable: {e}"))),
            }
        }
        self.refresh_packs()?;
        let packs = self.packs.lock().expect("pack index lock");
        for pack in packs.iter() {
            for entry in &pack.entries {
                report.checked += 1;
                report.packed += 1;
                match read_pack_payload(&pack.path, entry) {
                    Ok(_) => {}
                    Err(e) => report.corrupt.push((Digest(entry.digest), e.to_string())),
                }
            }
        }
        Ok(report)
    }

    /// Compact: fold every readable loose object and prior pack entry
    /// into one new pack generation (deduplicating identical payload
    /// bytes), then remove the folded loose files and superseded packs.
    /// Damaged objects are dropped — they are recomputed on the next
    /// miss. Exclusive via the store lockfile; a lock untouched for
    /// 5 minutes is presumed abandoned and broken.
    pub fn gc(&self) -> Result<GcReport, StoreError> {
        let _lock = Lockfile::acquire(self.root.join("gc.lock"), GC_LOCK_STALE)
            .map_err(StoreError::Locked)?;
        let before = self.stats()?;
        let mut report = GcReport {
            bytes_before: before.loose_bytes + before.pack_bytes,
            generation: before.generation,
            ..GcReport::default()
        };

        // Collect live objects. Later inserts win, so feed packs oldest
        // first, then loose objects (which shadow packs).
        let mut live: HashMap<u128, (u8, Vec<u8>)> = HashMap::new();
        self.refresh_packs()?;
        let old_pack_paths: Vec<PathBuf> = {
            let packs = self.packs.lock().expect("pack index lock");
            for pack in packs.iter() {
                for entry in &pack.entries {
                    match read_pack_payload(&pack.path, entry) {
                        Ok(payload) => {
                            live.insert(entry.digest, (entry.kind, payload));
                        }
                        Err(_) => report.corrupt_dropped += 1,
                    }
                }
            }
            packs.iter().map(|p| p.path.clone()).collect()
        };
        let loose_paths = list_loose_paths(&self.root.join("objects"))?;
        for path in &loose_paths {
            let digest = digest_from_loose_path(path);
            match fs::read(path).map_err(|e| StoreError::io("read object", path, e)) {
                Ok(bytes) => match parse_loose(&bytes, digest) {
                    Ok((kind, payload)) => {
                        live.insert(digest.0, (kind, payload));
                    }
                    Err(_) => report.corrupt_dropped += 1,
                },
                Err(_) => report.corrupt_dropped += 1,
            }
        }

        if !live.is_empty() {
            let generation = before.generation + 1;
            write_pack(&self.root, generation, &live, &mut report)?;
            report.generation = generation;
        }
        report.packed = live.len() as u64;

        // Remove exactly what was folded in; concurrently written new
        // loose objects survive.
        for path in &loose_paths {
            if fs::remove_file(path).is_ok() {
                report.loose_removed += 1;
            }
        }
        for path in &old_pack_paths {
            if fs::remove_file(path).is_ok() {
                report.packs_removed += 1;
            }
        }
        self.refresh_packs()?;
        let after = self.stats()?;
        report.bytes_after = after.loose_bytes + after.pack_bytes;
        Ok(report)
    }
}

/// Parse and fully verify a loose object file.
fn parse_loose(bytes: &[u8], digest: Digest) -> Result<(u8, Vec<u8>), StoreError> {
    if bytes.len() < LOOSE_HEADER_LEN {
        return Err(StoreError::ShortRead {
            digest,
            wanted: LOOSE_HEADER_LEN as u64,
            have: bytes.len() as u64,
        });
    }
    if &bytes[0..4] != LOOSE_MAGIC {
        return Err(StoreError::BadHeader {
            digest,
            reason: "bad magic",
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::BadHeader {
            digest,
            reason: "unsupported version",
        });
    }
    let kind = bytes[6];
    let key_digest = u128::from_le_bytes(bytes[8..24].try_into().unwrap());
    if key_digest != digest.0 {
        return Err(StoreError::BadHeader {
            digest,
            reason: "key digest mismatch",
        });
    }
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let payload_digest = u128::from_le_bytes(bytes[32..48].try_into().unwrap());
    let have = (bytes.len() - LOOSE_HEADER_LEN) as u64;
    if have != payload_len {
        return Err(StoreError::ShortRead {
            digest,
            wanted: payload_len,
            have,
        });
    }
    let payload = &bytes[LOOSE_HEADER_LEN..];
    if digest_bytes(payload).0 != payload_digest {
        return Err(StoreError::HashMismatch { digest });
    }
    Ok((kind, payload.to_vec()))
}

/// Reconstruct an object's address from its fanout path.
fn digest_from_loose_path(path: &Path) -> Digest {
    let tail = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
    let fan = path
        .parent()
        .and_then(|p| p.file_name())
        .and_then(|s| s.to_str())
        .unwrap_or("");
    Digest::from_hex(&format!("{fan}{tail}")).unwrap_or(Digest(0))
}

/// Every loose object path under `objects/`, sorted for determinism.
fn list_loose_paths(objects: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut out = Vec::new();
    let fans = match fs::read_dir(objects) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io("list objects", objects, e)),
    };
    for fan in fans {
        let fan = fan.map_err(|e| StoreError::io("list objects", objects, e))?;
        if !fan.path().is_dir() {
            continue;
        }
        let entries =
            fs::read_dir(fan.path()).map_err(|e| StoreError::io("list fanout", &fan.path(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("list fanout", &fan.path(), e))?;
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Pack file paths in generation order.
fn list_pack_paths(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io("list packs", dir, e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list packs", dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("pack-") && name.ends_with(".pack") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Load every pack index under `dir`. A mangled pack is skipped (its
/// objects read as misses and get recomputed) rather than wedging the
/// whole store.
fn load_packs(dir: &Path) -> Result<Vec<Pack>, StoreError> {
    let mut packs = Vec::new();
    for path in list_pack_paths(dir)? {
        if let Ok(Some(pack)) = load_pack(&path) {
            packs.push(pack);
        }
    }
    packs.sort_by_key(|p| p.generation);
    Ok(packs)
}

fn load_pack(path: &Path) -> Result<Option<Pack>, StoreError> {
    let bytes = fs::read(path).map_err(|e| StoreError::io("read pack", path, e))?;
    if bytes.len() < PACK_HEADER_LEN || &bytes[0..4] != PACK_MAGIC {
        return Ok(None);
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Ok(None);
    }
    let generation = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let count = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let index_end = PACK_HEADER_LEN + count * PACK_ENTRY_LEN;
    if bytes.len() < index_end {
        return Ok(None);
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        let at = PACK_HEADER_LEN + i * PACK_ENTRY_LEN;
        let e = &bytes[at..at + PACK_ENTRY_LEN];
        entries.push(PackEntry {
            digest: u128::from_le_bytes(e[0..16].try_into().unwrap()),
            kind: e[16],
            offset: u64::from_le_bytes(e[17..25].try_into().unwrap()),
            len: u64::from_le_bytes(e[25..33].try_into().unwrap()),
            payload_digest: u128::from_le_bytes(e[33..49].try_into().unwrap()),
        });
    }
    // write_pack emits sorted entries; enforce for binary search.
    if !entries.windows(2).all(|w| w[0].digest < w[1].digest) {
        return Ok(None);
    }
    Ok(Some(Pack {
        path: path.to_path_buf(),
        generation,
        entries,
    }))
}

/// Read and verify one payload out of a pack file.
fn read_pack_payload(path: &Path, entry: &PackEntry) -> Result<Vec<u8>, StoreError> {
    let digest = Digest(entry.digest);
    let mut f = fs::File::open(path).map_err(|e| StoreError::io("open pack", path, e))?;
    f.seek(SeekFrom::Start(entry.offset))
        .map_err(|e| StoreError::io("seek pack", path, e))?;
    let mut payload = vec![0u8; entry.len as usize];
    let mut read = 0usize;
    while read < payload.len() {
        let n = f
            .read(&mut payload[read..])
            .map_err(|e| StoreError::io("read pack", path, e))?;
        if n == 0 {
            return Err(StoreError::ShortRead {
                digest,
                wanted: entry.len,
                have: read as u64,
            });
        }
        read += n;
    }
    if digest_bytes(&payload).0 != entry.payload_digest {
        return Err(StoreError::HashMismatch { digest });
    }
    Ok(payload)
}

/// Write one pack generation atomically (tmp + rename), deduplicating
/// identical payload bytes onto one blob.
fn write_pack(
    root: &Path,
    generation: u32,
    live: &HashMap<u128, (u8, Vec<u8>)>,
    report: &mut GcReport,
) -> Result<(), StoreError> {
    let mut digests: Vec<u128> = live.keys().copied().collect();
    digests.sort_unstable();

    // Lay out blobs: identical payload bytes share one offset.
    let blobs_start = (PACK_HEADER_LEN + digests.len() * PACK_ENTRY_LEN) as u64;
    let mut blob_at: HashMap<u128, (u64, u64)> = HashMap::new();
    let mut blob_order: Vec<(u128, &Vec<u8>)> = Vec::new();
    let mut cursor = blobs_start;
    let mut entries = Vec::with_capacity(digests.len());
    for &d in &digests {
        let (kind, payload) = &live[&d];
        let pd = digest_bytes(payload).0;
        let (offset, len) = *blob_at.entry(pd).or_insert_with(|| {
            let at = (cursor, payload.len() as u64);
            cursor += payload.len() as u64;
            blob_order.push((pd, payload));
            at
        });
        entries.push((d, *kind, offset, len, pd));
    }
    report.duplicates_folded = (digests.len() - blob_at.len()) as u64;

    let mut file = Vec::with_capacity(cursor as usize);
    file.extend_from_slice(PACK_MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&0u16.to_le_bytes());
    file.extend_from_slice(&generation.to_le_bytes());
    file.extend_from_slice(&(digests.len() as u64).to_le_bytes());
    for (d, kind, offset, len, pd) in &entries {
        file.extend_from_slice(&d.to_le_bytes());
        file.push(*kind);
        file.extend_from_slice(&offset.to_le_bytes());
        file.extend_from_slice(&len.to_le_bytes());
        file.extend_from_slice(&pd.to_le_bytes());
    }
    for (_, payload) in &blob_order {
        file.extend_from_slice(payload);
    }
    debug_assert_eq!(file.len() as u64, cursor);

    let final_path = root
        .join("packs")
        .join(format!("pack-{generation:08}.pack"));
    let tmp = root
        .join("tmp")
        .join(format!("pack-{generation:08}-{}.tmp", std::process::id()));
    let mut f = fs::File::create(&tmp).map_err(|e| StoreError::io("stage pack", &tmp, e))?;
    f.write_all(&file)
        .map_err(|e| StoreError::io("stage pack", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, &final_path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        StoreError::io("commit pack", &final_path, e)
    })?;
    Ok(())
}
