//! Canonical little-endian byte encodings.
//!
//! The vendored `serde_json` stand-in cannot round-trip data offline,
//! and JSON would not give byte-stable payloads anyway (float
//! formatting, key order). Store keys and payloads therefore use a
//! tiny hand-rolled binary format: fixed-width little-endian integers,
//! IEEE-754 bit patterns for floats, `u64` length prefixes for
//! variable-size data, and one-byte tags for options/enums. Writers
//! and readers in the owning crates compose these primitives; the
//! reader is bounds-checked and returns structured [`DecodeError`]s so
//! a truncated or bit-flipped object never panics.

/// Structured decode failure for canonical byte payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before a fixed-width field or counted run.
    UnexpectedEof {
        /// What the reader was trying to decode.
        what: &'static str,
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes left in the buffer.
        have: usize,
    },
    /// Bytes remained after the top-level value was fully decoded.
    TrailingBytes(usize),
    /// A tag byte (enum discriminant, option marker) had no meaning.
    BadTag {
        /// What the tag was selecting.
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A format-version byte this decoder does not understand.
    UnsupportedVersion {
        /// What kind of payload carried the version.
        what: &'static str,
        /// The offending version.
        version: u64,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { what, wanted, have } => {
                write!(
                    f,
                    "short read decoding {what}: wanted {wanted} bytes, have {have}"
                )
            }
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            DecodeError::UnsupportedVersion { what, version } => {
                write!(f, "unsupported {what} version {version}")
            }
            DecodeError::BadUtf8 => write!(f, "length-prefixed string is not UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only canonical byte writer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` widened to a little-endian `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// `f32` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// `bool` as a 0/1 byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Raw bytes, no length prefix (caller fixes the length by format).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// `u64` length prefix followed by the bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.raw(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// `Option<u64>` as a 0/1 tag byte plus the value when present.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// `Option<f64>` as a 0/1 tag byte plus the bit pattern when present.
    pub fn opt_f64_bits(&mut self, v: Option<f64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.f64_bits(x);
            }
        }
    }
}

/// Bounds-checked reader over a canonical byte buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                what,
                wanted: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One raw byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(what, 1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(what, 4)?;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let s = self.take(what, 8)?;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Little-endian `u128`.
    pub fn u128(&mut self, what: &'static str) -> Result<u128, DecodeError> {
        let s = self.take(what, 16)?;
        Ok(u128::from_le_bytes(s.try_into().unwrap()))
    }

    /// A `u64` narrowed back to `usize`.
    pub fn usize(&mut self, what: &'static str) -> Result<usize, DecodeError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| DecodeError::BadTag { what, tag: v })
    }

    /// `f64` from its stored bit pattern.
    pub fn f64_bits(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// `f32` from its stored bit pattern.
    pub fn f32_bits(&mut self, what: &'static str) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    /// A 0/1 byte as `bool`; anything else is a [`DecodeError::BadTag`].
    pub fn bool(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                what,
                tag: tag as u64,
            }),
        }
    }

    /// A length-prefixed byte run.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.usize(what)?;
        self.take(what, n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes(what)?).map_err(|_| DecodeError::BadUtf8)
    }

    /// `Option<u64>` written by [`ByteWriter::opt_u64`].
    pub fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, DecodeError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            tag => Err(DecodeError::BadTag {
                what,
                tag: tag as u64,
            }),
        }
    }

    /// `Option<f64>` written by [`ByteWriter::opt_f64_bits`].
    pub fn opt_f64_bits(&mut self, what: &'static str) -> Result<Option<f64>, DecodeError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.f64_bits(what)?)),
            tag => Err(DecodeError::BadTag {
                what,
                tag: tag as u64,
            }),
        }
    }

    /// Assert the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.u128(1 << 100);
        w.f64_bits(-0.0);
        w.f32_bits(f32::NAN);
        w.bool(true);
        w.str("predtop");
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.opt_f64_bits(Some(1.5));
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.u128("d").unwrap(), 1 << 100);
        assert_eq!(r.f64_bits("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f32_bits("f").unwrap().is_nan());
        assert!(r.bool("g").unwrap());
        assert_eq!(r.str("h").unwrap(), "predtop");
        assert_eq!(r.opt_u64("i").unwrap(), None);
        assert_eq!(r.opt_u64("j").unwrap(), Some(42));
        assert_eq!(r.opt_f64_bits("k").unwrap(), Some(1.5));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_a_structured_error() {
        let mut w = ByteWriter::new();
        w.str("hello world");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 3]);
        match r.str("s") {
            Err(DecodeError::UnexpectedEof { what: "s", .. }) => {}
            other => panic!("expected short read, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8("x").unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_tag_is_rejected() {
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.bool("flag"), Err(DecodeError::BadTag { .. })));
    }
}
