//! # predtop-store
//!
//! Content-addressed on-disk artifact store for PredTOP — a small,
//! dependency-free object database in the style of git's ODB.
//!
//! Every run of the search/profiling pipeline pays for thousands of
//! simulator (or predictor) queries whose answers are pure functions of
//! a *structural descriptor* (stage shape × mesh × parallel config,
//! see `predtop-parallel`). This crate persists those answers — plus
//! whole plan/search snapshots and trained model weights — so a second
//! run can be served from disk instead of recomputed (the
//! profile-once-reuse-forever economics Alpa and Proteus rely on).
//!
//! Layout of a store directory:
//!
//! ```text
//! <root>/objects/ab/cdef…   loose objects, two-level hex fanout
//! <root>/packs/pack-0000000N.pack   immutable gc generations
//! <root>/tmp/               staging area for atomic writes
//! <root>/gc.lock            lockfile held during compaction
//! ```
//!
//! Design rules:
//!
//! * **Key-addressed, content-verified.** An object's address is the
//!   128-bit FNV-1a digest of its *key bytes* (kind tag + caller key),
//!   not of its payload; the payload digest is stored alongside and
//!   re-checked on every read, so corruption surfaces as a structured
//!   [`StoreError`] instead of a wrong answer.
//! * **Atomic writes, no write locks.** Writers stage into `tmp/` and
//!   `rename(2)` into place; concurrent writers of the same key race
//!   benignly because canonical encodings make their payloads
//!   byte-identical. Only [`Store::gc`] takes the lockfile.
//! * **Generation-based gc.** Compaction folds loose objects (and prior
//!   packs) into one sorted, deduplicated pack file per generation;
//!   loose objects written after a gc shadow packed ones on read.
//! * **Zero dependencies.** `predtop-ir` and `predtop-tensor` sit at the
//!   bottom of the workspace graph and re-export [`hash`] from here, so
//!   this crate uses nothing above libstd. Typed encodings for the
//!   object kinds live in the crates that own the types; this crate
//!   moves verified bytes.

#![warn(missing_docs)]

pub mod encode;
pub mod hash;
pub mod lock;
mod odb;

pub use encode::{ByteReader, ByteWriter, DecodeError};
pub use hash::{Digest, Fnv1a128, Fnv1a64, SplitMix64};
pub use lock::{LockError, Lockfile};
pub use odb::{GcReport, ObjectKind, Store, StoreError, StoreStats, VerifyReport};
