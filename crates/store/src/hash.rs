//! The workspace's hand-rolled hashers, deduplicated into one place.
//!
//! Three hashers grew up independently in the workspace and are now
//! load-bearing for persisted keys, so their exact bit behaviour is
//! pinned here (and by cross-crate tests in their original homes):
//!
//! * [`Fnv1a64`] — FNV-1a with the standard 64-bit prime; used by
//!   `ParamStore::fingerprint` in `predtop-tensor` to checksum trained
//!   weights.
//! * [`Fnv1a64::with_prime`] with [`FNV64_PRIME_SHORT`] — the
//!   *truncated* prime `Graph::structural_hash` in `predtop-ir` has
//!   always used. It is not the published FNV prime, but every
//!   structural digest in caches, benches, and now the on-disk store
//!   depends on it, so it is kept verbatim and documented rather than
//!   silently "fixed".
//! * [`SplitMix64`] — the SplitMix64-style stateful mixer the
//!   `FaultInject` service layer uses to derive deterministic fault
//!   rolls from (seed, query, attempt, stream).
//!
//! New code addressing the on-disk store uses the 128-bit [`Fnv1a128`]
//! ([`Digest`]), which is the standard FNV-1a/128 function.

/// Standard FNV-1a 64-bit offset basis (also the hash of empty input).
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Standard FNV-1a 64-bit prime, `2^40 + 2^8 + 0xb3`.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The truncated prime `Graph::structural_hash` has always multiplied
/// by (`0x1000_0000_01b3`, missing one hex digit of [`FNV64_PRIME`]).
/// Kept bit-for-bit because structural digests derived from it key
/// caches and on-disk objects.
pub const FNV64_PRIME_SHORT: u64 = 0x1000_0000_01b3;

/// Standard FNV-1a 128-bit offset basis.
pub const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// Standard FNV-1a 128-bit prime, `2^88 + 2^8 + 0x3b`.
pub const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental FNV-1a hasher over 64 bits with a configurable prime.
///
/// `Fnv1a64::new()` is the textbook function; callers that historically
/// used a variant prime construct via [`Fnv1a64::with_prime`] so their
/// digests stay stable.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    state: u64,
    prime: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

impl Fnv1a64 {
    /// Hasher with the standard offset basis and prime.
    pub fn new() -> Fnv1a64 {
        Fnv1a64::with_prime(FNV64_PRIME)
    }

    /// Hasher with the standard offset basis and a caller-chosen prime
    /// (see [`FNV64_PRIME_SHORT`]).
    pub fn with_prime(prime: u64) -> Fnv1a64 {
        Fnv1a64 {
            state: FNV64_OFFSET,
            prime,
        }
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_byte(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(self.prime);
    }

    /// Absorb a byte slice.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Absorb a 64-bit word as its 8 little-endian bytes — the exact
    /// walk `ParamStore::fingerprint` and `Graph::structural_hash` use.
    #[inline]
    pub fn write_word(&mut self, word: u64) {
        for b in word.to_le_bytes() {
            self.write_byte(b);
        }
    }

    /// The digest of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A 128-bit content digest (standard FNV-1a/128 of the input bytes).
///
/// This is the address type of the on-disk store: object paths and pack
/// index entries are derived from its canonical lowercase-hex form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub u128);

impl Digest {
    /// 32-char lowercase hex, most significant nibble first.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the canonical 32-char lowercase hex form.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental standard FNV-1a hasher over 128 bits.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a128 {
    state: u128,
}

impl Default for Fnv1a128 {
    fn default() -> Self {
        Fnv1a128::new()
    }
}

impl Fnv1a128 {
    /// Hasher at the offset basis.
    pub fn new() -> Fnv1a128 {
        Fnv1a128 {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb a byte slice.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The digest of everything absorbed so far.
    #[inline]
    pub fn finish(&self) -> Digest {
        Digest(self.state)
    }
}

/// One-shot [`Fnv1a128`] of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> Digest {
    let mut h = Fnv1a128::new();
    h.write_bytes(bytes);
    h.finish()
}

/// SplitMix64-style stateful mixer, extracted verbatim from the
/// `FaultInject` layer's `roll` so fault schedules stay bit-identical.
///
/// The state starts at `seed ^ GOLDEN`; each [`SplitMix64::mix`] folds
/// one word in with the golden-ratio increment, the SplitMix
/// multiplier, and a 27-bit xor-shift. [`SplitMix64::unit_f64`] maps
/// the top 53 bits of the state onto `[0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    h: u64,
}

impl SplitMix64 {
    /// The 64-bit golden-ratio constant used as both seed whitener and
    /// per-word increment.
    pub const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Mixer seeded with `seed ^ GOLDEN`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            h: seed ^ Self::GOLDEN,
        }
    }

    /// Fold one word into the state.
    #[inline]
    pub fn mix(&mut self, v: u64) {
        self.h ^= v
            .wrapping_add(Self::GOLDEN)
            .wrapping_add(self.h << 6)
            .wrapping_add(self.h >> 2);
        self.h = self.h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        self.h ^= self.h >> 27;
    }

    /// The raw 64-bit state.
    #[inline]
    pub fn state(&self) -> u64 {
        self.h
    }

    /// The state's top 53 bits as a float in `[0, 1)` — the fault-roll
    /// projection.
    #[inline]
    pub fn unit_f64(&self) -> f64 {
        (self.h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_empty_input_is_the_offset_basis() {
        assert_eq!(Fnv1a64::new().finish(), FNV64_OFFSET);
        assert_eq!(
            Fnv1a64::with_prime(FNV64_PRIME_SHORT).finish(),
            FNV64_OFFSET
        );
    }

    #[test]
    fn fnv64_known_answer_vectors() {
        // Published FNV-1a/64 test vectors.
        let mut h = Fnv1a64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a64::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv64_word_walk_matches_byte_walk() {
        let mut words = Fnv1a64::new();
        words.write_word(0x0102_0304_0506_0708);
        let mut bytes = Fnv1a64::new();
        bytes.write_bytes(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(words.finish(), bytes.finish());
    }

    #[test]
    fn fnv128_empty_input_is_the_offset_basis() {
        assert_eq!(Fnv1a128::new().finish(), Digest(FNV128_OFFSET));
    }

    #[test]
    fn digest_hex_round_trip() {
        let d = digest_bytes(b"predtop-store");
        let hex = d.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest::from_hex(&hex), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&hex[..31]), None);
    }

    #[test]
    fn splitmix_sequence_is_pinned() {
        // Captured before the mixer was deduplicated out of the
        // FaultInject layer; fault schedules depend on these exact bits.
        let mut h = SplitMix64::new(42);
        h.mix(1);
        h.mix(2);
        h.mix(3);
        assert_eq!(h.state(), 0x4b6e_e0e4_4cc0_17ea);
        let expected_unit = (0x4b6e_e0e4_4cc0_17ea_u64 >> 11) as f64 / (1u64 << 53) as f64;
        assert_eq!(h.unit_f64().to_bits(), expected_unit.to_bits());
    }

    #[test]
    fn splitmix_distinct_streams_decorrelate() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        a.mix(1);
        a.mix(0);
        b.mix(1);
        b.mix(1);
        assert_ne!(a.state(), b.state());
        let u = a.unit_f64();
        assert!((0.0..1.0).contains(&u));
    }
}
