//! Property tests for the canonical encodings and the object store:
//! encode→hash→decode is the identity, digests are pure functions of
//! the bytes, and put→get round-trips arbitrary payloads.

use predtop_store::hash::digest_bytes;
use predtop_store::{ByteReader, ByteWriter, ObjectKind, Store};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every primitive the typed encoders compose round-trips exactly,
    /// and the encoded bytes (hence the digest) are a pure function of
    /// the values.
    #[test]
    fn primitives_round_trip_and_hash_stably(
        a in any::<u64>(),
        b in any::<u32>(),
        f_bits in any::<u64>(),
        g_bits in any::<u32>(),
        flag in any::<bool>(),
        s in vec(any::<u8>(), 0..64),
        opt in any::<u64>(),
        tag in any::<bool>(),
    ) {
        let build = || {
            let mut w = ByteWriter::new();
            w.u64(a);
            w.u32(b);
            w.f64_bits(f64::from_bits(f_bits));
            w.f32_bits(f32::from_bits(g_bits));
            w.bool(flag);
            w.bytes(&s);
            w.opt_u64(if tag { Some(opt) } else { None });
            w.into_bytes()
        };
        let bytes = build();
        // Deterministic encode: same values, same bytes, same digest.
        prop_assert_eq!(&bytes, &build());
        prop_assert_eq!(digest_bytes(&bytes), digest_bytes(&build()));

        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(r.u64("a").unwrap(), a);
        prop_assert_eq!(r.u32("b").unwrap(), b);
        prop_assert_eq!(r.f64_bits("f").unwrap().to_bits(), f_bits);
        prop_assert_eq!(r.f32_bits("g").unwrap().to_bits(), g_bits);
        prop_assert_eq!(r.bool("flag").unwrap(), flag);
        prop_assert_eq!(r.bytes("s").unwrap(), &s[..]);
        prop_assert_eq!(r.opt_u64("opt").unwrap(), if tag { Some(opt) } else { None });
        r.finish().unwrap();
    }

    /// Truncating an encoded buffer anywhere never panics the reader:
    /// it either still decodes a prefix or reports a structured error.
    #[test]
    fn truncation_never_panics(
        payload in vec(any::<u8>(), 0..48),
        cut in any::<u64>(),
    ) {
        let mut w = ByteWriter::new();
        w.u64(payload.len() as u64);
        w.bytes(&payload);
        let bytes = w.into_bytes();
        let cut = (cut as usize) % (bytes.len() + 1);
        let mut r = ByteReader::new(&bytes[..cut]);
        let _ = r.u64("len").and_then(|_| r.bytes("payload").map(|_| ()));
    }

    /// put → get returns the exact payload for arbitrary keys and
    /// payloads, before and after gc.
    #[test]
    fn store_round_trips_arbitrary_objects(
        key in vec(any::<u8>(), 0..32),
        payload in vec(any::<u8>(), 0..256),
        kind_i in 0usize..4,
    ) {
        let kind = ObjectKind::ALL[kind_i];
        let dir = std::env::temp_dir().join(format!(
            "predtop-store-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        store.put(kind, &key, &payload).unwrap();
        let loose = store.get(kind, &key).unwrap();
        prop_assert_eq!(loose.as_deref(), Some(&payload[..]));
        store.gc().unwrap();
        let packed = store.get(kind, &key).unwrap();
        prop_assert_eq!(packed.as_deref(), Some(&payload[..]));
        prop_assert!(store.verify().unwrap().is_clean());
    }
}
