//! Integration tests for the object database: round trips, corruption
//! surfacing, gc generations, and concurrent writers.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use predtop_store::{ObjectKind, Store, StoreError};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "predtop-store-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The single loose object file under `objects/` (panics unless exactly
/// one exists).
fn sole_loose_object(store: &Store) -> PathBuf {
    let mut found = Vec::new();
    for fan in fs::read_dir(store.root().join("objects")).unwrap() {
        let fan = fan.unwrap().path();
        if fan.is_dir() {
            for f in fs::read_dir(&fan).unwrap() {
                found.push(f.unwrap().path());
            }
        }
    }
    assert_eq!(found.len(), 1, "expected exactly one loose object");
    found.pop().unwrap()
}

#[test]
fn put_get_round_trip_and_overwrite() {
    let store = Store::open(fresh_dir("roundtrip")).unwrap();
    assert_eq!(store.get(ObjectKind::Latency, b"k").unwrap(), None);
    store.put(ObjectKind::Latency, b"k", b"v1").unwrap();
    assert_eq!(
        store.get(ObjectKind::Latency, b"k").unwrap().as_deref(),
        Some(&b"v1"[..])
    );
    // Same key, different kind: distinct object.
    assert_eq!(store.get(ObjectKind::Plan, b"k").unwrap(), None);
    store.put(ObjectKind::Plan, b"k", b"plan").unwrap();
    assert_eq!(
        store.get(ObjectKind::Plan, b"k").unwrap().as_deref(),
        Some(&b"plan"[..])
    );
    // Overwrite is atomic and last-write-wins.
    store.put(ObjectKind::Latency, b"k", b"v2").unwrap();
    assert_eq!(
        store.get(ObjectKind::Latency, b"k").unwrap().as_deref(),
        Some(&b"v2"[..])
    );
    let stats = store.stats().unwrap();
    assert_eq!(stats.loose_objects, 2);
    assert_eq!(stats.packed_objects, 0);
    assert!(store.verify().unwrap().is_clean());
}

#[test]
fn truncated_object_is_a_short_read() {
    let store = Store::open(fresh_dir("truncate")).unwrap();
    store
        .put(ObjectKind::Outcome, b"key", &vec![7u8; 256])
        .unwrap();
    let path = sole_loose_object(&store);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    match store.get(ObjectKind::Outcome, b"key") {
        Err(e @ StoreError::ShortRead { .. }) => assert!(e.is_corruption()),
        other => panic!("expected ShortRead, got {other:?}"),
    }
    // verify reports it instead of failing.
    let report = store.verify().unwrap();
    assert_eq!(report.corrupt.len(), 1);
    // Recompute-and-rewrite repairs it.
    store
        .put(ObjectKind::Outcome, b"key", &vec![7u8; 256])
        .unwrap();
    assert!(store.verify().unwrap().is_clean());
}

#[test]
fn bit_flip_is_a_hash_mismatch() {
    let store = Store::open(fresh_dir("bitflip")).unwrap();
    store
        .put(ObjectKind::Model, b"weights", b"abcdefgh")
        .unwrap();
    let path = sole_loose_object(&store);
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40; // flip a payload bit
    fs::write(&path, &bytes).unwrap();
    match store.get(ObjectKind::Model, b"weights") {
        Err(e @ StoreError::HashMismatch { .. }) => assert!(e.is_corruption()),
        other => panic!("expected HashMismatch, got {other:?}"),
    }
}

#[test]
fn wrong_kind_is_a_kind_mismatch() {
    let store = Store::open(fresh_dir("kind")).unwrap();
    store.put(ObjectKind::Plan, b"x", b"p").unwrap();
    // Reading the same *address* under another kind is a miss (the kind
    // tag is part of the digest)…
    assert_eq!(store.get(ObjectKind::Outcome, b"x").unwrap(), None);
    // …but a header whose kind byte disagrees with the request is
    // structural corruption.
    let path = sole_loose_object(&store);
    let mut bytes = fs::read(&path).unwrap();
    bytes[6] = ObjectKind::Outcome.as_u8();
    fs::write(&path, &bytes).unwrap();
    match store.get(ObjectKind::Plan, b"x") {
        Err(e @ StoreError::KindMismatch { .. }) => assert!(e.is_corruption()),
        other => panic!("expected KindMismatch, got {other:?}"),
    }
}

#[test]
fn gc_packs_objects_and_reads_survive() {
    let store = Store::open(fresh_dir("gc")).unwrap();
    for i in 0..50u64 {
        let key = i.to_le_bytes();
        // Half the payloads are identical to exercise blob dedup.
        let payload = if i % 2 == 0 {
            b"shared-payload".to_vec()
        } else {
            format!("unique-{i}").into_bytes()
        };
        store.put(ObjectKind::Latency, &key, &payload).unwrap();
    }
    let report = store.gc().unwrap();
    assert_eq!(report.packed, 50);
    assert_eq!(report.loose_removed, 50);
    assert_eq!(report.generation, 1);
    assert_eq!(
        report.duplicates_folded, 24,
        "25 identical payloads share one blob"
    );
    assert!(report.bytes_after < report.bytes_before);

    let stats = store.stats().unwrap();
    assert_eq!(stats.loose_objects, 0);
    assert_eq!(stats.packed_objects, 50);
    assert_eq!(stats.generation, 1);
    for i in 0..50u64 {
        let got = store.get(ObjectKind::Latency, &i.to_le_bytes()).unwrap();
        assert!(got.is_some(), "object {i} lost by gc");
    }
    assert!(store.verify().unwrap().is_clean());

    // New writes after gc are loose and shadow the pack; a second gc
    // folds them into generation 2.
    store
        .put(ObjectKind::Latency, &3u64.to_le_bytes(), b"updated")
        .unwrap();
    assert_eq!(
        store
            .get(ObjectKind::Latency, &3u64.to_le_bytes())
            .unwrap()
            .as_deref(),
        Some(&b"updated"[..])
    );
    let report2 = store.gc().unwrap();
    assert_eq!(report2.generation, 2);
    assert_eq!(report2.packs_removed, 1);
    assert_eq!(
        store
            .get(ObjectKind::Latency, &3u64.to_le_bytes())
            .unwrap()
            .as_deref(),
        Some(&b"updated"[..])
    );
}

#[test]
fn gc_drops_corrupt_objects() {
    let store = Store::open(fresh_dir("gc-corrupt")).unwrap();
    store.put(ObjectKind::Latency, b"good", b"fine").unwrap();
    store
        .put(ObjectKind::Latency, b"bad", b"doomed-payload")
        .unwrap();
    // Corrupt the second object.
    let bad = {
        let mut found = None;
        for fan in fs::read_dir(store.root().join("objects")).unwrap() {
            let fan = fan.unwrap().path();
            if !fan.is_dir() {
                continue;
            }
            for f in fs::read_dir(&fan).unwrap() {
                let p = f.unwrap().path();
                let bytes = fs::read(&p).unwrap();
                if bytes.ends_with(b"doomed-payload") {
                    found = Some(p.clone());
                }
            }
        }
        found.expect("doomed object on disk")
    };
    let mut bytes = fs::read(&bad).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 1;
    fs::write(&bad, &bytes).unwrap();

    let report = store.gc().unwrap();
    assert_eq!(report.packed, 1);
    assert_eq!(report.corrupt_dropped, 1);
    // The dropped object is now a clean miss, ready for recompute.
    assert_eq!(store.get(ObjectKind::Latency, b"bad").unwrap(), None);
    assert_eq!(
        store.get(ObjectKind::Latency, b"good").unwrap().as_deref(),
        Some(&b"fine"[..])
    );
}

#[test]
fn second_handle_sees_packs_written_by_first() {
    let dir = fresh_dir("twohandle");
    let writer = Store::open(&dir).unwrap();
    let reader = Store::open(&dir).unwrap(); // opened before any packs exist
    writer.put(ObjectKind::Plan, b"p", b"payload").unwrap();
    writer.gc().unwrap();
    // The reader's pack index predates the gc; the miss-path rescan
    // must find the new pack.
    assert_eq!(
        reader.get(ObjectKind::Plan, b"p").unwrap().as_deref(),
        Some(&b"payload"[..])
    );
}

#[test]
fn two_writers_hammering_one_store_dir() {
    let dir = fresh_dir("concurrent");
    let a = Arc::new(Store::open(&dir).unwrap());
    let b = Arc::new(Store::open(&dir).unwrap());
    let spawn = |store: Arc<Store>, salt: u64| {
        std::thread::spawn(move || {
            for round in 0..40u64 {
                let key = (round % 8).to_le_bytes();
                // Canonical encodings make concurrent writers of one key
                // byte-identical; mirror that here.
                let payload = format!("payload-{}", round % 8).into_bytes();
                store.put(ObjectKind::Latency, &key, &payload).unwrap();
                if let Some(got) = store.get(ObjectKind::Latency, &key).unwrap() {
                    assert_eq!(got, payload, "torn read in writer {salt}");
                }
            }
        })
    };
    let ta = spawn(a.clone(), 1);
    let tb = spawn(b.clone(), 2);
    ta.join().unwrap();
    tb.join().unwrap();
    let stats = a.stats().unwrap();
    assert_eq!(stats.loose_objects, 8);
    assert!(a.verify().unwrap().is_clean());
    // tmp/ must hold no abandoned staging files.
    assert_eq!(fs::read_dir(dir.join("tmp")).unwrap().count(), 0);
}

#[test]
fn empty_store_gc_and_verify_are_noops() {
    let store = Store::open(fresh_dir("empty")).unwrap();
    let report = store.gc().unwrap();
    assert_eq!(report.packed, 0);
    assert_eq!(report.generation, 0);
    let verify = store.verify().unwrap();
    assert_eq!(verify.checked, 0);
    assert!(verify.is_clean());
}
