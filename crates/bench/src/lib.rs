//! # predtop-bench
//!
//! Shared experiment infrastructure for the binaries that regenerate
//! every table and figure of the paper (see `DESIGN.md` §3 for the
//! experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! Each binary accepts `--paper` to run the full published protocol
//! (409/205 profiled stages, 500 epochs, paper-sized networks) and
//! defaults to a scaled-down protocol sized for a single CPU core; both
//! are defined here so tables stay comparable across binaries.

#![warn(missing_docs)]

pub mod grid;
pub mod jsonout;
pub mod protocol;
pub mod scenario;
pub mod table;

pub use grid::{render_table, run_grid, GridResult};
// the deterministic worker pool moved to the shared runtime crate; the
// re-export keeps existing `predtop_bench::par_map` callers working
pub use predtop_runtime::{configured_threads, par_map, par_map_with};
pub use protocol::Protocol;
pub use scenario::{platform_scenarios, Scenario};
pub use table::TableWriter;
