//! The MRE-grid engine behind Tables V and VI (and the Fig. 3 subset).
//!
//! For one (platform, benchmark) pair:
//!
//! 1. sample the protocol's stage pool and profile every stage under
//!    every scenario (memoized by the simulator);
//! 2. build the per-stage sample matrices once;
//! 3. for each scenario × training fraction × architecture: split
//!    (train / 10% val / rest test, §VIII-A), train, and report the
//!    held-out MRE.

use predtop_cluster::Platform;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{Dataset, GraphSample, ModelKind};
use predtop_models::{sample_stages, ModelSpec, StageSpec};
use predtop_parallel::StageLatencyProvider;
use predtop_sim::SimProfiler;
use serde::{Deserialize, Serialize};

use crate::protocol::Protocol;
use crate::scenario::Scenario;

/// One grid cell result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridCell {
    /// Scenario id, e.g. `"(2,1)"`.
    pub scenario: String,
    /// Training fraction (0.1–0.8).
    pub fraction: f64,
    /// Architecture label (`GCN` / `GAT` / `Tran`).
    pub model: String,
    /// Held-out mean relative error, percent.
    pub mre: f64,
    /// Epochs actually run (early stopping).
    pub epochs_run: usize,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
}

/// Full grid output for one (platform, benchmark).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResult {
    /// Platform name.
    pub platform: String,
    /// Benchmark name (`GPT-3` / `MoE`).
    pub benchmark: String,
    /// Number of profiled stages.
    pub num_stages: usize,
    /// All cells.
    pub cells: Vec<GridCell>,
}

impl GridResult {
    /// Cells for a given architecture, in scenario-major order.
    pub fn cells_for<'a>(&'a self, model: &'a str) -> impl Iterator<Item = &'a GridCell> + 'a {
        self.cells.iter().filter(move |c| c.model == model)
    }

    /// MREs of one architecture across all scenarios and fractions.
    pub fn mres_for(&self, model: &str) -> Vec<f64> {
        self.cells_for(model).map(|c| c.mre).collect()
    }
}

/// The three architectures in table column order.
pub const ARCHES: [ModelKind; 3] = [ModelKind::Gcn, ModelKind::Gat, ModelKind::DagTransformer];

/// Run the full grid for one platform and benchmark.
///
/// `progress` receives one line per completed cell (use
/// `|s| eprintln!("{s}")` in binaries, `|_| {}` in tests).
pub fn run_grid(
    platform: &Platform,
    platform_label: &'static str,
    benchmark: ModelSpec,
    scenarios: &[Scenario],
    proto: &Protocol,
    progress: &mut dyn FnMut(&str),
) -> GridResult {
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let stages: Vec<StageSpec> = sample_stages(
        benchmark,
        proto.stage_budget(&benchmark),
        proto.max_stage_layers.min(benchmark.num_layers),
        proto.seed,
    );
    progress(&format!(
        "[{platform_label}/{}] profiling {} stages x {} scenarios",
        benchmark.kind.name(),
        stages.len(),
        scenarios.len()
    ));

    // latency-independent sample matrices, built once
    let base_samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| GraphSample::new(&profiler.stage_graph(s), 1.0, proto.pe_dim()))
        .collect();

    let mut cells = Vec::new();
    for sc in scenarios {
        // profiling phase for this scenario (memoized by the profiler)
        let samples: Vec<GraphSample> = stages
            .iter()
            .zip(&base_samples)
            .map(|(spec, base)| {
                let mut s = base.clone();
                s.latency = profiler.stage_latency(spec, sc.mesh, sc.config);
                s
            })
            .collect();
        let ds = Dataset::new(samples);

        // the (fraction, architecture) cells of one scenario are fully
        // independent: fan them out over the configured worker threads
        // (PREDTOP_THREADS; order- and value-deterministic at any count)
        let work: Vec<(f64, ModelKind)> = proto
            .fractions
            .iter()
            .flat_map(|&f| ARCHES.into_iter().map(move |k| (f, k)))
            .collect();
        let cell_results = predtop_runtime::par_map(work, |(fraction, kind)| {
            let split = ds.split(fraction, proto.seed ^ (fraction * 1000.0) as u64);
            let mut net = proto.arch(kind).build(proto.seed);
            let (scaler, report) = train(net.as_mut(), &ds, &split, &proto.train);
            let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
            GridCell {
                scenario: sc.id(),
                fraction,
                model: kind.label().to_string(),
                mre,
                epochs_run: report.epochs_run,
                train_seconds: report.train_seconds,
            }
        });
        for cell in cell_results {
            progress(&format!(
                "[{platform_label}/{}] {} f={:.0}% {}: MRE {:.2}% ({} epochs, {:.1}s)",
                benchmark.kind.name(),
                cell.scenario,
                cell.fraction * 100.0,
                cell.model,
                cell.mre,
                cell.epochs_run,
                cell.train_seconds
            ));
            cells.push(cell);
        }
    }

    GridResult {
        platform: platform_label.to_string(),
        benchmark: benchmark.kind.name().to_string(),
        num_stages: stages.len(),
        cells,
    }
}

/// Render a [`GridResult`] in the Tables V/VI layout: one row per
/// training fraction (descending, like the paper), one column triple
/// (GCN, GAT, Tran) per scenario.
pub fn render_table(result: &GridResult, scenarios: &[Scenario]) -> crate::table::TableWriter {
    let mut headers: Vec<String> = vec!["# Samples".to_string()];
    for sc in scenarios {
        for kind in ARCHES {
            headers.push(format!("{} {}", sc.id(), kind.label()));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = crate::table::TableWriter::new(
        format!(
            "MRE (%) — {} / {} ({} profiled stages)",
            result.platform, result.benchmark, result.num_stages
        ),
        &header_refs,
    );

    let mut fractions: Vec<f64> = result.cells.iter().map(|c| c.fraction).collect();
    fractions.sort_by(f64::total_cmp);
    fractions.dedup();
    fractions.reverse(); // paper lists 80% first

    for f in fractions {
        let mut row = vec![format!("{:.0}%", f * 100.0)];
        for sc in scenarios {
            for kind in ARCHES {
                let cell = result
                    .cells
                    .iter()
                    .find(|c| c.scenario == sc.id() && c.fraction == f && c.model == kind.label());
                row.push(cell.map_or("-".into(), |c| format!("{:.2}", c.mre)));
            }
        }
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::platform_scenarios;
    use predtop_gnn::TrainConfig;

    /// A micro protocol exercising the full grid machinery.
    fn micro_protocol() -> Protocol {
        let mut p = Protocol::default_scaled();
        p.stages_gpt = 14;
        p.stages_moe = 14;
        p.max_stage_layers = 2;
        p.train = TrainConfig::quick(4);
        p.fractions = vec![0.5];
        p
    }

    fn micro_gpt() -> ModelSpec {
        let mut m = ModelSpec::gpt3_1p3b(1);
        m.seq_len = 32;
        m.hidden = 32;
        m.num_heads = 4;
        m.vocab = 128;
        m.num_layers = 4;
        m
    }

    #[test]
    fn grid_produces_all_cells() {
        let platform = Platform::platform1();
        let scenarios = platform_scenarios(&platform);
        let proto = micro_protocol();
        let result = run_grid(
            &platform,
            "P1",
            micro_gpt(),
            &scenarios,
            &proto,
            &mut |_| {},
        );
        // 3 scenarios × 1 fraction × 3 architectures
        assert_eq!(result.cells.len(), 9);
        assert!(result
            .cells
            .iter()
            .all(|c| c.mre.is_finite() && c.mre >= 0.0));
        assert_eq!(result.mres_for("Tran").len(), 3);
    }

    #[test]
    fn table_renders_expected_shape() {
        let platform = Platform::platform1();
        let scenarios = platform_scenarios(&platform);
        let proto = micro_protocol();
        let result = run_grid(
            &platform,
            "P1",
            micro_gpt(),
            &scenarios,
            &proto,
            &mut |_| {},
        );
        let table = render_table(&result, &scenarios);
        assert_eq!(table.headers.len(), 1 + 9);
        assert_eq!(table.rows.len(), 1);
        let rendered = table.render();
        assert!(rendered.contains("(2,2) Tran"));
    }
}
