//! Plain-text table rendering and JSON artifact output.
//!
//! Every experiment binary prints an aligned table to stdout (the
//! paper-facing artifact) and writes the raw rows as JSON under
//! `results/` so downstream aggregation (Fig. 8/9) can consume them
//! without re-running the grid.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// Accumulates rows and renders them aligned.
#[derive(Debug, Clone, Serialize)]
pub struct TableWriter {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (stringified).
    pub rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TableWriter {
        TableWriter {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write the table (title, headers, rows) as JSON under `results/`.
    /// Returns the path written.
    pub fn save_json(&self, name: &str) -> PathBuf {
        let dir = results_dir();
        fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(self).expect("serialize table");
        fs::write(&path, json).expect("write results json");
        path
    }
}

/// The shared results directory (`$PREDTOP_RESULTS_DIR` or `results/`
/// relative to the working directory).
pub fn results_dir() -> PathBuf {
    std::env::var_os("PREDTOP_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

/// Format seconds compactly (`1.23 s`, `45.6 ms`).
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TableWriter::new("demo", &["name", "value"]);
        t.add_row(vec!["a".into(), "1.0".into()]);
        t.add_row(vec!["long-name".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // all data lines equal width
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TableWriter::new("demo", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn json_roundtrip() {
        std::env::set_var(
            "PREDTOP_RESULTS_DIR",
            std::env::temp_dir().join("predtop-test-results"),
        );
        let mut t = TableWriter::new("json-demo", &["x"]);
        t.add_row(vec!["42".into()]);
        let p = t.save_json("unit_test_table");
        let body = std::fs::read_to_string(&p).unwrap();
        // the offline serde_json stub writes placeholders; only assert
        // content when real serialization is available
        if serde_json::from_str::<u32>("1").is_ok() {
            assert!(body.contains("json-demo"));
        } else {
            assert!(!body.is_empty());
        }
        std::fs::remove_file(p).ok();
        std::env::remove_var("PREDTOP_RESULTS_DIR");
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0042), "4.20 ms");
        assert_eq!(fmt_seconds(3e-5), "30.0 us");
    }
}
