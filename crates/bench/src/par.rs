//! Deterministic parallel map over experiment cells.
//!
//! The MRE grids train hundreds of independent (scenario, fraction,
//! architecture) cells; on multi-core hosts they parallelize trivially.
//! This is a small work-stealing `par_map` built on `crossbeam`'s scoped
//! threads and a shared atomic cursor: each worker claims the next
//! unprocessed index, so results land at their input positions and the
//! output order (and with per-cell seeding, every number) is identical
//! at any thread count.
//!
//! Thread count comes from `PREDTOP_THREADS` (default: available
//! parallelism), clamped to the item count.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Resolve the worker count: `PREDTOP_THREADS` if set, else the
/// machine's available parallelism, floored at 1.
pub fn configured_threads() -> usize {
    if let Some(v) = std::env::var_os("PREDTOP_THREADS") {
        if let Ok(n) = v.to_string_lossy().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` workers, preserving input
/// order in the output. Panics in `f` propagate after all workers stop
/// claiming new work.
pub fn par_map_with<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // wrap each item so workers can take them by index
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().take().expect("each index claimed once");
                let r = f(item);
                *results[i].lock() = Some(r);
            });
        }
    })
    .expect("worker panicked");

    results
        .into_iter()
        .map(|m| m.into_inner().expect("every index produced a result"))
        .collect()
}

/// [`par_map_with`] at the configured thread count.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(items, configured_threads(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8, 97, 200] {
            let out = par_map_with(items.clone(), threads, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_with(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_match_sequential_for_nontrivial_work() {
        let items: Vec<u64> = (1..=20).collect();
        let seq: Vec<u64> = items.iter().map(|&x| (1..=x).product()).collect();
        let par = par_map_with(items, 4, |x| (1..=x).product::<u64>());
        assert_eq!(par, seq);
    }

    #[test]
    fn configured_threads_env_override() {
        std::env::set_var("PREDTOP_THREADS", "3");
        assert_eq!(configured_threads(), 3);
        std::env::set_var("PREDTOP_THREADS", "0");
        assert_eq!(configured_threads(), 1, "floored at one");
        std::env::remove_var("PREDTOP_THREADS");
        assert!(configured_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let _ = par_map_with(vec![1, 2, 3, 4], 2, |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
