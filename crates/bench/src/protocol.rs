//! Experiment protocols: the paper's full setup and a single-core
//! scaled-down default.
//!
//! Every experiment binary parses the same flags:
//!
//! * `--paper` — the published protocol: paper-sized predictors
//!   (GCN 6×256, GAT 6×32, Transformer 4×64), 500-epoch training with
//!   patience 200, the full profiled-stage pools, all eight training
//!   fractions. Expect hours of single-core compute.
//! * `--epochs N`, `--stages N`, `--max-layers N`, `--seed N` —
//!   individual overrides on either base protocol.
//!
//! The default protocol preserves the *shape* of every experiment (same
//! scenarios, same split rules, same schedules, same loss) at roughly
//! 1/20 of the arithmetic; `EXPERIMENTS.md` reports results from both
//! where feasible.

use predtop_core::ArchConfig;
use predtop_gnn::{ModelKind, TrainConfig};
use predtop_models::ModelSpec;

/// Fully-resolved experiment protocol.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Whether `--paper` was requested.
    pub paper: bool,
    /// Stages profiled for the GPT-3 benchmark (paper: the full
    /// 300-candidate pool; the published 409 includes configuration
    /// variants of the same ranges).
    pub stages_gpt: usize,
    /// Stages profiled for the MoE benchmark (paper: 205).
    pub stages_moe: usize,
    /// Layer-count cap on sampled training stages.
    pub max_stage_layers: usize,
    /// Training protocol.
    pub train: TrainConfig,
    /// Training fractions evaluated in the MRE tables.
    pub fractions: Vec<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Protocol {
    /// The scaled-down single-core default.
    pub fn default_scaled() -> Protocol {
        Protocol {
            paper: false,
            stages_gpt: 48,
            stages_moe: 36,
            max_stage_layers: 3,
            train: TrainConfig::quick(30),
            fractions: vec![0.1, 0.3, 0.5, 0.8],
            seed: 7,
        }
    }

    /// The paper's protocol (§IV-B6, §VIII).
    pub fn paper_protocol() -> Protocol {
        Protocol {
            paper: true,
            stages_gpt: 300, // full contiguous-range pool of the 24-layer model
            stages_moe: 205,
            max_stage_layers: usize::MAX,
            train: TrainConfig::paper(),
            fractions: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            seed: 7,
        }
    }

    /// Parse CLI arguments (any unrecognized argument aborts with usage).
    pub fn from_args() -> Protocol {
        let mut proto = Protocol::default_scaled();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => {
                    proto = Protocol::paper_protocol();
                }
                "--epochs" => {
                    i += 1;
                    let e: usize = args[i].parse().expect("--epochs N");
                    proto.train = TrainConfig::quick(e);
                }
                "--stages" => {
                    i += 1;
                    let n: usize = args[i].parse().expect("--stages N");
                    proto.stages_gpt = n;
                    proto.stages_moe = n;
                }
                "--max-layers" => {
                    i += 1;
                    proto.max_stage_layers = args[i].parse().expect("--max-layers N");
                }
                "--seed" => {
                    i += 1;
                    proto.seed = args[i].parse().expect("--seed N");
                }
                other => {
                    eprintln!(
                        "unknown argument `{other}`\n\
                         usage: [--paper] [--epochs N] [--stages N] [--max-layers N] [--seed N]"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        proto
    }

    /// The predictor architecture for `kind` under this protocol.
    pub fn arch(&self, kind: ModelKind) -> ArchConfig {
        if self.paper {
            ArchConfig::paper(kind)
        } else {
            ArchConfig::scaled(kind)
        }
    }

    /// DAGPE width samples must be built with (the transformer's width).
    pub fn pe_dim(&self) -> usize {
        self.arch(ModelKind::DagTransformer).hidden
    }

    /// The GPT-3 benchmark under this protocol. The paper protocol uses
    /// the exact Table IV dimensions; the scaled protocol keeps the layer
    /// count and head structure but shrinks the sequence/width so the
    /// simulator's latencies stay in a realistic sub-second band while
    /// stage *graphs* (the predictor input) keep their full op mix.
    pub fn gpt3(&self) -> ModelSpec {
        if self.paper {
            ModelSpec::gpt3_1p3b(8)
        } else {
            let mut m = ModelSpec::gpt3_1p3b(2);
            m.seq_len = 256;
            m.hidden = 512;
            m.num_heads = 8;
            m.vocab = 8192;
            m
        }
    }

    /// The MoE benchmark under this protocol.
    pub fn moe(&self) -> ModelSpec {
        if self.paper {
            ModelSpec::moe_2p6b(8)
        } else {
            let mut m = ModelSpec::moe_2p6b(2);
            m.seq_len = 256;
            m.hidden = 256;
            m.num_heads = 8;
            m.vocab = 8192;
            m.moe = Some(predtop_models::MoeSpec {
                num_experts: 8,
                expert_hidden: 512,
                every: 2,
            });
            m
        }
    }

    /// Profiled-stage budget for a benchmark model.
    pub fn stage_budget(&self, model: &ModelSpec) -> usize {
        match model.kind {
            predtop_models::ModelKind::Gpt3 => self.stages_gpt,
            predtop_models::ModelKind::Moe => self.stages_moe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_matches_section_4b6() {
        let p = Protocol::paper_protocol();
        assert_eq!(p.train.epochs, 500);
        assert_eq!(p.train.patience, 200);
        assert_eq!(p.fractions.len(), 8);
        assert_eq!(p.arch(ModelKind::Gcn).hidden, 256);
        assert_eq!(p.gpt3().hidden, 2048);
    }

    #[test]
    fn scaled_protocol_is_smaller_everywhere() {
        let s = Protocol::default_scaled();
        let p = Protocol::paper_protocol();
        assert!(s.train.epochs < p.train.epochs);
        assert!(s.stages_gpt < p.stages_gpt);
        assert!(s.gpt3().hidden < p.gpt3().hidden);
        assert!(s.fractions.len() < p.fractions.len());
        // but the benchmark structure is preserved
        assert_eq!(s.gpt3().num_layers, p.gpt3().num_layers);
        assert_eq!(s.moe().num_layers, p.moe().num_layers);
    }

    #[test]
    fn pe_dim_tracks_transformer_width() {
        assert_eq!(
            Protocol::default_scaled().pe_dim(),
            ArchConfig::scaled(ModelKind::DagTransformer).hidden
        );
        assert_eq!(Protocol::paper_protocol().pe_dim(), 64);
    }
}
