//! Ablations — MAE vs MSE loss (§IV-B7) and graph pruning on/off
//! (§IV-B4).
//!
//! * Loss: the paper reports "the MAE loss function always outperformed
//!   the MSE loss"; both are run at identical budgets.
//! * Pruning: removing `reshape`/`convert_element_type` relays shrinks
//!   graphs (faster training, N² attention) — the claim is that accuracy
//!   does not suffer because the dtype/shape information survives on
//!   neighbouring nodes.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{Dataset, GraphSample, ModelKind};
use predtop_models::sample_stages;
use predtop_parallel::{MeshShape, ParallelConfig, StageLatencyProvider};
use predtop_sim::SimProfiler;
use predtop_tensor::Loss;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform1();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let model = proto.gpt3();
    let mesh = MeshShape::new(1, 2);
    let config = ParallelConfig::new(2, 1);

    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    eprintln!("[ablation] profiling {} stages", stages.len());

    // two sample sets: pruned (normal path) and un-pruned
    let pruned: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, proto.pe_dim())
        })
        .collect();
    let unpruned: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            // bypass pruning by treating the raw graph as already pruned
            GraphSample::from_pruned(&profiler.stage_graph(s), lat, proto.pe_dim())
        })
        .collect();
    let avg_nodes = |ss: &[GraphSample]| {
        ss.iter().map(|s| s.num_nodes()).sum::<usize>() as f64 / ss.len() as f64
    };
    eprintln!(
        "[ablation] avg nodes: pruned {:.0}, unpruned {:.0}",
        avg_nodes(&pruned),
        avg_nodes(&unpruned)
    );

    let mut table = TableWriter::new(
        "Ablation — loss function and graph pruning (GPT-3, Platform 1 mesh 2 conf 1, 50% train)",
        &[
            "variant",
            "loss",
            "pruned",
            "avg nodes",
            "MRE (%)",
            "train (s)",
        ],
    );

    let cases = [
        ("paper (MAE, pruned)", Loss::Mae, true),
        ("MSE, pruned", Loss::Mse, true),
        ("MAE, un-pruned", Loss::Mae, false),
        ("MSE, un-pruned", Loss::Mse, false),
    ];
    for (name, loss, use_pruned) in cases {
        let ds = Dataset::new(if use_pruned {
            pruned.clone()
        } else {
            unpruned.clone()
        });
        let split = ds.split(0.5, proto.seed);
        let mut train_cfg = proto.train;
        train_cfg.loss = loss;
        let mut net = proto.arch(ModelKind::DagTransformer).build(proto.seed);
        let (scaler, report) = train(net.as_mut(), &ds, &split, &train_cfg);
        let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
        eprintln!(
            "[ablation] {name}: MRE {mre:.2}% in {:.1}s",
            report.train_seconds
        );
        table.add_row(vec![
            name.to_string(),
            format!("{loss:?}"),
            use_pruned.to_string(),
            format!(
                "{:.0}",
                avg_nodes(if use_pruned { &pruned } else { &unpruned })
            ),
            format!("{mre:.2}"),
            format!("{:.1}", report.train_seconds),
        ]);
    }

    table.print();
    let path = table.save_json("ablation_loss_prune");
    println!("saved {}", path.display());
}
