//! Ablation — eqn. 1's neighbourhood-range hyperparameter `k`.
//!
//! The DAGRA mask admits attention between nodes within `k` hops along
//! directed paths; the paper sets `k = ∞` "as we want the attention
//! calculation throughout the graph". This ablation sweeps `k` from
//! 1 (direct neighbours only — GAT-like support with transformer
//! machinery) to ∞ and reports the MRE and mask density at each setting.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{Dataset, GraphSample, ModelKind};
use predtop_models::sample_stages;
use predtop_parallel::{MeshShape, ParallelConfig, StageLatencyProvider};
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let model = proto.gpt3();
    let mesh = MeshShape::new(1, 2);
    let config = ParallelConfig::new(1, 2);

    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    eprintln!("[ablation-k] profiling {} stages", stages.len());
    let latencies: Vec<f64> = stages
        .iter()
        .map(|s| profiler.stage_latency(s, mesh, config))
        .collect();

    let mut table = TableWriter::new(
        "Ablation — eqn. 1 neighbourhood range k (GPT-3, Platform 2 mesh 2 conf 2, 50% train)",
        &["k", "mask density (%)", "MRE (%)", "epochs"],
    );

    let settings: [(&str, Option<u32>); 4] = [
        ("1", Some(1)),
        ("2", Some(2)),
        ("4", Some(4)),
        ("inf (paper)", None),
    ];
    for (label, k) in settings {
        let samples: Vec<GraphSample> = stages
            .iter()
            .zip(&latencies)
            .map(|(s, &lat)| {
                let g = profiler.stage_graph(s);
                match k {
                    Some(k) => GraphSample::with_attention_range(&g, lat, proto.pe_dim(), k),
                    None => GraphSample::new(&g, lat, proto.pe_dim()),
                }
            })
            .collect();
        // mask density: fraction of allowed attention pairs
        let density: f64 = samples
            .iter()
            .map(|s| {
                let n = s.num_nodes();
                let allowed = s.dag_mask.data().iter().filter(|&&m| m == 0.0).count();
                allowed as f64 / (n * n) as f64
            })
            .sum::<f64>()
            / samples.len() as f64;

        let ds = Dataset::new(samples);
        let split = ds.split(0.5, proto.seed);
        let mut net = proto.arch(ModelKind::DagTransformer).build(proto.seed);
        let (scaler, report) = train(net.as_mut(), &ds, &split, &proto.train);
        let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
        eprintln!(
            "[ablation-k] k={label}: density {:.1}%, MRE {mre:.2}%",
            density * 100.0
        );
        table.add_row(vec![
            label.to_string(),
            format!("{:.1}", density * 100.0),
            format!("{mre:.2}"),
            report.epochs_run.to_string(),
        ]);
    }

    table.print();
    let path = table.save_json("ablation_k_range");
    println!("saved {}", path.display());
}
