//! Cold-vs-warm wall clock of the store-backed plan search.
//!
//! Three searches over the same 64-layer sweep as `search_scaling`
//! (12 layers under `--smoke`):
//!
//! 1. **plain** — the canonical structural stack, no disk tier: the
//!    store-less reference;
//! 2. **cold** — the same search through [`search_plan_stored`] against
//!    a fresh object store: every distinct structure misses to the
//!    simulator and is written behind;
//! 3. **warm** — the identical search against the now-populated store:
//!    every simulator evaluation is replaced by a verified disk read.
//!
//! The determinism contract is asserted, not sampled: all three runs
//! must choose bit-identical plans and latency bits, the cold run must
//! write every miss, and the warm run must recompute *nothing*
//! (`disk_misses == 0`). In full mode the warm run must also come in at
//! least 2x faster than the cold one — the economics that justify the
//! disk tier. A gc pass then packs the store and a fourth run proves
//! the pack-read path serves the same bits.
//!
//! Results land as stable-schema JSON (default `BENCH_store.json`;
//! override with `--out PATH`).
//!
//! ```sh
//! cargo run --release --bin bench_store
//! cargo run --release --bin bench_store -- --smoke
//! cargo run --release --bin bench_store -- --out results/BENCH_store.json
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use predtop_bench::jsonout::{write_json_file, Json};
use predtop_cluster::Platform;
use predtop_core::{search_plan_service, search_plan_stored, SearchOutcome, StoredSearch};
use predtop_models::ModelSpec;
use predtop_parallel::{InterStageOptions, MeshShape};
use predtop_service::{PersistStats, ServiceBuilder};
use predtop_sim::SimProfiler;
use predtop_store::Store;

const THREADS: usize = 4;
const NAMESPACE: &str = "sim:1:7";

struct Cli {
    out: PathBuf,
    smoke: bool,
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        out: PathBuf::from("BENCH_store.json"),
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                cli.out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            "--smoke" => cli.smoke = true,
            other => {
                eprintln!("unknown argument `{other}`\nusage: [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cli
}

fn bench_model(smoke: bool) -> ModelSpec {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 32;
    model.num_heads = 4;
    model.vocab = 64;
    model.num_layers = if smoke { 12 } else { 64 };
    model
}

fn assert_bit_identical(label: &str, a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(
        a.estimated_latency.to_bits(),
        b.estimated_latency.to_bits(),
        "{label} changed the estimated latency"
    );
    assert_eq!(
        a.true_latency.to_bits(),
        b.true_latency.to_bits(),
        "{label} changed the plan's true latency"
    );
    assert_eq!(a.num_queries, b.num_queries, "{label} changed the sweep");
    assert_eq!(a.plan, b.plan, "{label} changed the chosen plan");
}

/// One store-backed search over a fresh profiler.
fn stored_run(
    model: ModelSpec,
    cluster: MeshShape,
    platform: &Platform,
    opts: InterStageOptions,
    store: &Arc<Store>,
) -> SearchOutcome {
    let profiler = SimProfiler::new(platform.clone(), 7);
    let cfg = StoredSearch {
        store: Arc::clone(store),
        namespace: NAMESPACE.to_string(),
        threads: THREADS,
        legality: None,
    };
    search_plan_stored(model, cluster, &profiler, &profiler, opts, &cfg)
        .expect("the simulator stack serves every scenario")
}

fn persist_of(out: &SearchOutcome) -> PersistStats {
    out.service
        .as_ref()
        .expect("stored stack reports")
        .persist
        .expect("persist layer installed")
}

fn main() {
    let cli = parse_cli();
    let model = bench_model(cli.smoke);
    let platform = Platform::platform1();
    let cluster = MeshShape::new(1, 2);
    let opts = InterStageOptions {
        microbatches: 4,
        imbalance_tolerance: None,
    };
    let base = std::env::temp_dir().join(format!("predtop-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Plain reference: the canonical structural stack without a disk
    // tier, best of two reps (fresh profiler per rep — the profiler
    // memoizes internally, a shared one would time hash lookups).
    let reps = 2;
    let plain = (0..reps)
        .map(|_| {
            let profiler = SimProfiler::new(platform.clone(), 7);
            let stack = ServiceBuilder::new(&profiler)
                .memoize_structural()
                .batched(THREADS)
                .finish();
            search_plan_service(model, cluster, &stack, &profiler, opts, None)
                .expect("the simulator stack serves every scenario")
        })
        .min_by(|a, b| a.search_seconds.total_cmp(&b.search_seconds))
        .expect("at least one plain rep");
    println!(
        "plain (no store):   {:7.3}s wall, {} queries, plan latency {:.5}s",
        plain.search_seconds, plain.num_queries, plain.true_latency
    );

    // Cold: each rep gets its own fresh store directory (a second rep
    // against a populated store would be a warm run). The canonical
    // encodings make every rep's objects byte-identical, so rep 0's
    // directory serves as the warm corpus.
    let cold_dirs: Vec<_> = (0..reps).map(|i| base.join(format!("cold-{i}"))).collect();
    let cold = cold_dirs
        .iter()
        .map(|dir| {
            let store = Arc::new(Store::open(dir).expect("open fresh store"));
            stored_run(model, cluster, &platform, opts, &store)
        })
        .min_by(|a, b| a.search_seconds.total_cmp(&b.search_seconds))
        .expect("at least one cold rep");
    assert_bit_identical("cold store-backed search", &plain, &cold);
    let cold_stats = persist_of(&cold);
    assert_eq!(cold_stats.disk_hits, 0, "a fresh store cannot hit");
    assert!(cold_stats.writes > 0, "the cold run persisted nothing");
    assert_eq!(cold_stats.write_errors, 0, "cold-run writes failed");
    println!(
        "cold  (fresh dir):  {:7.3}s wall, {} disk misses -> {} objects written",
        cold.search_seconds, cold_stats.disk_misses, cold_stats.writes
    );

    // Warm: the same search against rep 0's populated store.
    let store = Arc::new(Store::open(&cold_dirs[0]).expect("reopen populated store"));
    let warm = (0..reps)
        .map(|_| stored_run(model, cluster, &platform, opts, &store))
        .min_by(|a, b| a.search_seconds.total_cmp(&b.search_seconds))
        .expect("at least one warm rep");
    assert_bit_identical("warm store-backed search", &plain, &warm);
    let warm_stats = persist_of(&warm);
    assert_eq!(warm_stats.disk_misses, 0, "the warm run recomputed a reply");
    assert_eq!(warm_stats.writes, 0, "the warm run re-wrote an object");
    assert!(warm_stats.disk_hits > 0, "the warm run never touched disk");
    let warm_speedup = cold.search_seconds / warm.search_seconds;
    println!(
        "warm  (same dir):   {:7.3}s wall ({warm_speedup:5.2}x vs cold), \
         {} disk hits ({:.0}% served from disk)",
        warm.search_seconds,
        warm_stats.disk_hits,
        100.0 * warm_stats.disk_served_rate()
    );
    if !cli.smoke {
        assert!(
            warm_speedup >= 2.0,
            "the disk tier lost its economics: warm is only {warm_speedup:.2}x \
             faster than cold on the full sweep"
        );
    }

    // Gc: pack the loose objects, prove the store stays clean, and run
    // once more through the pack-read path.
    let gc = store.gc().expect("gc the populated store");
    let verify = store.verify().expect("verify after gc");
    assert!(
        verify.is_clean(),
        "gc corrupted the store: {:?}",
        verify.corrupt
    );
    let packed = (0..reps)
        .map(|_| stored_run(model, cluster, &platform, opts, &store))
        .min_by(|a, b| a.search_seconds.total_cmp(&b.search_seconds))
        .expect("at least one packed rep");
    assert_bit_identical("packed store-backed search", &plain, &packed);
    let packed_stats = persist_of(&packed);
    assert_eq!(packed_stats.disk_misses, 0, "a packed object went missing");
    println!(
        "packed (after gc):  {:7.3}s wall, gc folded {} duplicates into \
         generation {} ({} -> {} bytes)",
        packed.search_seconds, gc.duplicates_folded, gc.generation, gc.bytes_before, gc.bytes_after
    );
    println!("all four runs chose bit-identical plans — determinism holds");

    let doc = Json::obj()
        .field("schema_version", 1u64)
        .field("benchmark", "bench_store")
        .field("mode", if cli.smoke { "smoke" } else { "full" })
        .field("model_layers", model.num_layers)
        .field("threads", THREADS)
        .field("num_queries", plain.num_queries)
        .field("plan_latency_seconds", plain.true_latency)
        .field("plain_seconds", plain.search_seconds)
        .field("cold_seconds", cold.search_seconds)
        .field("warm_seconds", warm.search_seconds)
        .field("packed_seconds", packed.search_seconds)
        .field("warm_speedup_vs_cold", warm_speedup)
        .field("cold_disk_misses", cold_stats.disk_misses)
        .field("cold_writes", cold_stats.writes)
        .field("warm_disk_hits", warm_stats.disk_hits)
        .field("warm_disk_misses", warm_stats.disk_misses)
        .field("warm_disk_served_rate", warm_stats.disk_served_rate())
        .field("gc_duplicates_folded", gc.duplicates_folded)
        .field("gc_bytes_before", gc.bytes_before)
        .field("gc_bytes_after", gc.bytes_after)
        .field("plans_bit_identical", true);
    write_json_file(&cli.out, &doc);
    println!("saved {}", cli.out.display());

    let _ = std::fs::remove_dir_all(&base);
}
