//! Ablation — how much of the DAG Transformer's accuracy comes from its
//! two DAG-specific biases?
//!
//! Four variants at identical size and training budget:
//! DAGRA+DAGPE (the paper's model), DAGRA only, DAGPE only (full
//! attention), and neither (a vanilla set-transformer over node
//! features). §VIII-A attributes the transformer's win to "the
//! DAG-based bias"; this ablation isolates it.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{Dataset, GraphSample, ModelKind};
use predtop_models::sample_stages;
use predtop_parallel::{MeshShape, ParallelConfig, StageLatencyProvider};
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let model = proto.gpt3();
    let mesh = MeshShape::new(1, 2);
    let config = ParallelConfig::new(1, 2);

    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    eprintln!("[ablation] profiling {} stages on (2,2)", stages.len());
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, proto.pe_dim())
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.5, proto.seed);

    let mut table = TableWriter::new(
        "Ablation — DAGRA / DAGPE contributions (GPT-3, Platform 2 mesh 2 conf 2, 50% train)",
        &["variant", "DAGRA", "DAGPE", "MRE (%)", "epochs"],
    );

    for (name, dagra, dagpe) in [
        ("DAG Transformer (paper)", true, true),
        ("reachability mask only", true, false),
        ("depth encoding only", false, true),
        ("plain transformer", false, false),
    ] {
        let mut arch = proto.arch(ModelKind::DagTransformer);
        arch.use_dagra = dagra;
        arch.use_dagpe = dagpe;
        let mut net = arch.build(proto.seed);
        let (scaler, report) = train(net.as_mut(), &ds, &split, &proto.train);
        let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
        eprintln!("[ablation] {name}: MRE {mre:.2}%");
        table.add_row(vec![
            name.to_string(),
            dagra.to_string(),
            dagpe.to_string(),
            format!("{mre:.2}"),
            report.epochs_run.to_string(),
        ]);
    }

    table.print();
    let path = table.save_json("ablation_dag_bias");
    println!("saved {}", path.display());
}
