//! Ablation — early-stopping sensitivity (§IV-B8).
//!
//! The paper stops training when validation loss has not improved for
//! 200 of the 500 epochs and restores the best weights, reporting that
//! this "significantly reduces the training time ... and also improves
//! accuracy". This ablation sweeps the patience from aggressive to
//! disabled at a fixed epoch budget and reports accuracy and wall time.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{Dataset, GraphSample, ModelKind};
use predtop_models::sample_stages;
use predtop_parallel::{MeshShape, ParallelConfig, StageLatencyProvider};
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform1();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let model = proto.gpt3();
    let mesh = MeshShape::new(1, 2);
    let config = ParallelConfig::new(1, 2);

    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    eprintln!("[ablation] profiling {} stages", stages.len());
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let lat = profiler.stage_latency(s, mesh, config);
            GraphSample::new(&profiler.stage_graph(s), lat, proto.pe_dim())
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.5, proto.seed);

    let budget = proto.train.epochs * 2; // headroom so patience matters
    let patience_fracs: [(&str, f64); 4] = [
        ("aggressive (10%)", 0.10),
        ("paper-like (40%)", 0.40),
        ("lenient (70%)", 0.70),
        ("disabled (100%)", 1.0),
    ];

    let mut table = TableWriter::new(
        format!("Ablation — early-stopping patience at a {budget}-epoch budget (GPT-3, Platform 1 mesh 2 conf 2, 50% train)"),
        &["patience", "epochs run", "stopped early", "MRE (%)", "train (s)"],
    );

    for (name, frac) in patience_fracs {
        let mut cfg = proto.train;
        cfg.epochs = budget;
        cfg.patience = ((budget as f64 * frac) as usize).max(1);
        let mut net = proto.arch(ModelKind::DagTransformer).build(proto.seed);
        let (scaler, report) = train(net.as_mut(), &ds, &split, &cfg);
        let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
        eprintln!(
            "[ablation] {name}: MRE {mre:.2}% in {} epochs / {:.1}s",
            report.epochs_run, report.train_seconds
        );
        table.add_row(vec![
            name.to_string(),
            report.epochs_run.to_string(),
            report.stopped_early.to_string(),
            format!("{mre:.2}"),
            format!("{:.1}", report.train_seconds),
        ]);
    }

    table.print();
    let path = table.save_json("ablation_early_stop");
    println!("saved {}", path.display());
}
