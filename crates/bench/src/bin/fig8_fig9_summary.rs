//! Fig. 8 & Fig. 9 — mean and standard deviation of the per-scenario
//! MREs, aggregated per (platform, benchmark, architecture).
//!
//! Consumes the raw grids written by `table5_mre_platform1` and
//! `table6_mre_platform2` (`results/table{5,6}_*_raw.json`); any grid
//! that has not been generated yet is computed fresh with the current
//! protocol flags.

use predtop_bench::grid::{run_grid, GridResult, ARCHES};
use predtop_bench::table::results_dir;
use predtop_bench::{platform_scenarios, Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_gnn::metrics::mean_std;

fn load_or_run(
    name: &str,
    platform: &Platform,
    platform_label: &'static str,
    model: predtop_models::ModelSpec,
    proto: &Protocol,
) -> GridResult {
    let path = results_dir().join(format!("{name}_raw.json"));
    if let Ok(body) = std::fs::read_to_string(&path) {
        if let Ok(grid) = serde_json::from_str::<GridResult>(&body) {
            eprintln!("[fig8/9] loaded {}", path.display());
            return grid;
        }
    }
    eprintln!("[fig8/9] {} missing; computing fresh", path.display());
    let scenarios = platform_scenarios(platform);
    run_grid(
        platform,
        platform_label,
        model,
        &scenarios,
        proto,
        &mut |l| eprintln!("{l}"),
    )
}

fn main() {
    let proto = Protocol::from_args();
    let p1 = Platform::platform1();
    let p2 = Platform::platform2();

    let grids = vec![
        load_or_run("table5_gpt3", &p1, "Platform 1", proto.gpt3(), &proto),
        load_or_run("table5_moe", &p1, "Platform 1", proto.moe(), &proto),
        load_or_run("table6_gpt3", &p2, "Platform 2", proto.gpt3(), &proto),
        load_or_run("table6_moe", &p2, "Platform 2", proto.moe(), &proto),
    ];

    let mut fig8 = TableWriter::new(
        "Fig. 8 — average of MREs (%) over scenarios and training fractions",
        &["platform", "benchmark", "GCN", "GAT", "Tran"],
    );
    let mut fig9 = TableWriter::new(
        "Fig. 9 — standard deviation of MREs (%) over scenarios and training fractions",
        &["platform", "benchmark", "GCN", "GAT", "Tran"],
    );

    for grid in &grids {
        let mut means = Vec::new();
        let mut stds = Vec::new();
        for kind in ARCHES {
            let mres = grid.mres_for(kind.label());
            assert!(!mres.is_empty(), "grid missing {} cells", kind.label());
            let (m, s) = mean_std(&mres);
            means.push(format!("{m:.2}"));
            stds.push(format!("{s:.2}"));
        }
        let mut row8 = vec![grid.platform.to_string(), grid.benchmark.to_string()];
        row8.extend(means);
        fig8.add_row(row8);
        let mut row9 = vec![grid.platform.to_string(), grid.benchmark.to_string()];
        row9.extend(stds);
        fig9.add_row(row9);
    }

    fig8.print();
    fig9.print();
    let p8 = fig8.save_json("fig8_mre_mean");
    let p9 = fig9.save_json("fig9_mre_std");
    println!("saved {} and {}", p8.display(), p9.display());
}
