//! Load generator for the `predtop serve` daemon.
//!
//! Drives a framed wire-protocol server with `--clients` concurrent
//! connections, each issuing `--requests` requests from a fixed
//! Profile/Predict/Stats mix. Arrivals are **open-loop**: with
//! `--rate R` each client schedules its sends on a fixed timetable
//! (aggregate R requests/s across all clients) and a request's latency
//! is measured from its *scheduled* arrival, so server-side queueing is
//! charged to the server rather than silently absorbed by a slow client
//! (no coordinated omission).
//!
//! Three targets:
//!
//! * default — self-host an in-process server on a loopback TCP port
//!   (no external setup; what `cargo run --bin bench_serve` measures);
//! * `--connect HOST:PORT` — an already-running daemon over TCP;
//! * `--connect-socket PATH` — an already-running daemon's Unix socket
//!   (what the CI smoke gate uses).
//!
//! `--shutdown` sends a `Shutdown` frame after the load so the target
//! daemon drains and exits; self-hosted runs always shut down.
//!
//! Results land as stable-schema JSON (default `BENCH_serve.json`;
//! override with `--out PATH`): request counts by outcome and the
//! p50/p99/p99.9/max latency of the mix.
//!
//! ```sh
//! cargo run --release --bin bench_serve
//! cargo run --release --bin bench_serve -- --smoke
//! cargo run --release --bin bench_serve -- --connect-socket /tmp/predtop.sock --smoke --shutdown
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use predtop_bench::jsonout::{write_json_file, Json};
use predtop_cluster::Platform;
use predtop_core::{EngineConfig, ServeEngine};
use predtop_models::ModelSpec;
use predtop_parallel::{MeshShape, ParallelConfig};
use predtop_service::api::{ErrorKind, ProfileSpec, Request, Response};
use predtop_service::wire::{Client, Server, ServerConfig};

struct Cli {
    out: PathBuf,
    smoke: bool,
    clients: usize,
    requests: usize,
    warmup: usize,
    rate: f64,
    connect: Option<String>,
    connect_socket: Option<PathBuf>,
    shutdown: bool,
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        out: PathBuf::from("BENCH_serve.json"),
        smoke: false,
        clients: 8,
        requests: 128,
        warmup: 16,
        rate: 400.0,
        connect: None,
        connect_socket: None,
        shutdown: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                cli.out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            "--clients" => {
                i += 1;
                cli.clients = argv
                    .get(i)
                    .expect("--clients N")
                    .parse()
                    .expect("--clients N");
            }
            "--requests" => {
                i += 1;
                cli.requests = argv
                    .get(i)
                    .expect("--requests N")
                    .parse()
                    .expect("--requests N");
            }
            "--warmup" => {
                i += 1;
                cli.warmup = argv
                    .get(i)
                    .expect("--warmup N")
                    .parse()
                    .expect("--warmup N");
            }
            "--rate" => {
                i += 1;
                cli.rate = argv
                    .get(i)
                    .expect("--rate RPS")
                    .parse()
                    .expect("--rate RPS");
            }
            "--connect" => {
                i += 1;
                cli.connect = Some(argv.get(i).expect("--connect HOST:PORT").clone());
            }
            "--connect-socket" => {
                i += 1;
                cli.connect_socket =
                    Some(PathBuf::from(argv.get(i).expect("--connect-socket PATH")));
            }
            "--shutdown" => cli.shutdown = true,
            "--smoke" => {
                cli.smoke = true;
                cli.clients = 4;
                cli.requests = 16;
                cli.warmup = 4;
                cli.rate = 200.0;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}`\nusage: [--smoke] [--clients N] [--requests N] \
                     [--warmup N] [--rate RPS] [--connect HOST:PORT] [--connect-socket PATH] \
                     [--shutdown] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cli
}

/// The CLI's `--scaled` GPT-3 benchmark: small enough that one request
/// is milliseconds, structured enough that the stack's memoize and
/// batching layers all participate.
fn bench_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 128;
    m.hidden = 128;
    m.num_heads = 8;
    m.vocab = 2048;
    m.num_layers = 8;
    m
}

fn stage_spec(start: usize) -> ProfileSpec {
    ProfileSpec {
        model: bench_model(),
        start,
        end: start + 2,
        mesh: MeshShape::new(1, 1),
        config: ParallelConfig::new(1, 1),
    }
}

/// The fixed request mix: mostly Profile, a fifth Predict, one Stats
/// poll every eighth request — a serving workload, not a single hot
/// key (the stage window rotates through the model).
fn request_for(i: usize) -> Request {
    if i % 8 == 7 {
        Request::Stats
    } else if i % 5 == 4 {
        Request::Predict(stage_spec(i % 6))
    } else {
        Request::Profile(stage_spec(i % 6))
    }
}

/// One benchmark connection: TCP or Unix, behind one stream type so the
/// load loop is transport-agnostic.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[derive(Clone)]
enum Target {
    Tcp(String),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Target {
    fn connect(&self) -> Conn {
        match self {
            Target::Tcp(addr) => {
                let s = TcpStream::connect(addr).expect("connect to bench target");
                s.set_nodelay(true).ok();
                Conn::Tcp(s)
            }
            #[cfg(unix)]
            Target::Unix(path) => {
                Conn::Unix(UnixStream::connect(path).expect("connect to bench socket"))
            }
        }
    }
}

/// Per-run outcome counters plus every request's corrected latency.
#[derive(Default)]
struct LoadResult {
    served: u64,
    shed: u64,
    deadline_errors: u64,
    errors: u64,
    latencies_ms: Vec<f64>,
    wall_seconds: f64,
}

fn run_load(
    target: &Target,
    clients: usize,
    requests: usize,
    warmup: usize,
    rate: f64,
) -> LoadResult {
    // aggregate open-loop rate → one fixed inter-arrival per client
    let interval = if rate > 0.0 {
        Some(Duration::from_secs_f64(clients as f64 / rate))
    } else {
        None
    };
    let per_client: Vec<LoadResult> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::new(target.connect());
                    let mut r = LoadResult::default();
                    // unmeasured warm-up (closed loop): fill the server's
                    // memoize tiers so the timed run sees steady-state
                    // serving, not first-touch graph construction
                    for i in 0..warmup {
                        client
                            .call(&request_for(c * requests + i))
                            .expect("warm-up request failed");
                    }
                    let start = Instant::now();
                    for i in 0..requests {
                        let scheduled = interval.map(|dt| dt * i as u32);
                        if let Some(at) = scheduled {
                            let elapsed = start.elapsed();
                            if at > elapsed {
                                std::thread::sleep(at - elapsed);
                            }
                        }
                        // latency from the *scheduled* arrival: a
                        // backed-up server pays for its queue
                        let sent_at = scheduled.unwrap_or_else(|| start.elapsed());
                        let resp = client
                            .call(&request_for(c * requests + i))
                            .expect("bench request failed at the transport layer");
                        let latency = start.elapsed().saturating_sub(sent_at);
                        r.latencies_ms.push(latency.as_secs_f64() * 1e3);
                        match resp {
                            Response::Latency { .. } | Response::Search(_) | Response::Stats(_) => {
                                r.served += 1
                            }
                            Response::Error(body) if body.kind == ErrorKind::Shed => r.shed += 1,
                            Response::Error(body) if body.kind == ErrorKind::Deadline => {
                                r.deadline_errors += 1
                            }
                            Response::Error(_) => r.errors += 1,
                            Response::Bye => r.errors += 1,
                        }
                    }
                    r.wall_seconds = start.elapsed().as_secs_f64();
                    r
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("bench client panicked"))
            .collect()
    });
    // wall clock of the measured (post-warm-up) phase: the slowest
    // client's timed loop bounds the run
    let mut total = LoadResult::default();
    for r in per_client {
        total.wall_seconds = total.wall_seconds.max(r.wall_seconds);
        total.served += r.served;
        total.shed += r.shed;
        total.deadline_errors += r.deadline_errors;
        total.errors += r.errors;
        total.latencies_ms.extend(r.latencies_ms);
    }
    total.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    total
}

/// The `q`-quantile of an ascending latency vector (nearest-rank).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

fn main() {
    let cli = parse_cli();
    let external = cli.connect.is_some() || cli.connect_socket.is_some();

    let target = if let Some(path) = &cli.connect_socket {
        #[cfg(unix)]
        {
            Target::Unix(path.clone())
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            eprintln!("--connect-socket needs Unix sockets; use --connect HOST:PORT");
            std::process::exit(2);
        }
    } else if let Some(addr) = &cli.connect {
        Target::Tcp(addr.clone())
    } else {
        Target::Tcp(String::new()) // replaced once the self-hosted server binds
    };

    let transport = match (&cli.connect_socket, &cli.connect) {
        (Some(_), _) => "unix",
        (None, Some(_)) => "tcp",
        (None, None) => "tcp-selfhost",
    };

    let run = |target: &Target| {
        eprintln!(
            "driving {} client(s) x {} request(s) at {} req/s aggregate ({} warm-up each)...",
            cli.clients, cli.requests, cli.rate, cli.warmup
        );
        let result = run_load(target, cli.clients, cli.requests, cli.warmup, cli.rate);
        // one tail connection reads the server's own ledger, and — when
        // asked — drains it
        let mut tail = Client::new(target.connect());
        let (server_served, server_shed) = match tail.call(&Request::Stats) {
            Ok(Response::Stats(report)) => (report.served, report.shed),
            _ => (0, 0),
        };
        if cli.shutdown || !external {
            match tail.call(&Request::Shutdown) {
                Ok(Response::Bye) => eprintln!("server acknowledged shutdown"),
                other => eprintln!("shutdown not acknowledged: {other:?}"),
            }
        }
        (result, server_served, server_shed)
    };

    let (result, server_served, server_shed) = if external {
        run(&target)
    } else {
        // self-host: the same engine + server `predtop serve` runs,
        // in-process on a loopback port
        let engine = ServeEngine::new(EngineConfig::new(Platform::platform2(), "2", 7))
            .expect("build self-hosted engine");
        let server = Server::bind(Some("127.0.0.1:0"), None, ServerConfig::default())
            .expect("bind self-hosted server");
        let addr = server.tcp_addr().expect("self-hosted TCP address");
        let target = Target::Tcp(addr.to_string());
        std::thread::scope(|scope| {
            let srv = scope.spawn(|| server.run(|req| engine.handle(req)).expect("server run"));
            let out = run(&target);
            let stats = srv.join().expect("server thread");
            eprintln!(
                "self-hosted server drained after {} connection(s)",
                stats.connections
            );
            out
        })
    };

    let total = cli.clients * cli.requests;
    let throughput = total as f64 / result.wall_seconds.max(1e-9);
    println!(
        "{} request(s) in {:.3}s ({:.0} req/s): {} served, {} shed, {} deadline, {} errors",
        total,
        result.wall_seconds,
        throughput,
        result.served,
        result.shed,
        result.deadline_errors,
        result.errors
    );
    println!(
        "latency p50 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, max {:.3} ms",
        percentile(&result.latencies_ms, 0.50),
        percentile(&result.latencies_ms, 0.99),
        percentile(&result.latencies_ms, 0.999),
        percentile(&result.latencies_ms, 1.0),
    );

    let doc = Json::obj()
        .field("schema_version", 1u64)
        .field("benchmark", "bench_serve")
        .field("mode", if cli.smoke { "smoke" } else { "full" })
        .field("transport", transport)
        .field("clients", cli.clients)
        .field("requests_per_client", cli.requests)
        .field("warmup_per_client", cli.warmup)
        .field("rate_rps", cli.rate)
        .field("served", result.served)
        .field("shed", result.shed)
        .field("deadline_errors", result.deadline_errors)
        .field("errors", result.errors)
        .field("p50_ms", percentile(&result.latencies_ms, 0.50))
        .field("p99_ms", percentile(&result.latencies_ms, 0.99))
        .field("p999_ms", percentile(&result.latencies_ms, 0.999))
        .field("max_ms", percentile(&result.latencies_ms, 1.0))
        .field("wall_seconds", result.wall_seconds)
        .field("throughput_rps", throughput)
        .field("server_served", server_served)
        .field("server_shed", server_shed);
    write_json_file(&cli.out, &doc);
    println!("saved {}", cli.out.display());
}
