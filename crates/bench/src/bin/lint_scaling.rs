//! Wall-clock scaling of the graph-lint engine over a plan search's
//! worth of stage windows.
//!
//! The checked plan search lints the same layer-window graphs the
//! profiler evaluates — and deep decoders repeat a handful of
//! structural shapes across hundreds of windows. This benchmark runs
//! every analysis pass over every enumerated stage window of a deep
//! dense decoder, first fresh (every graph analyzed from scratch) and
//! then through [`GraphLintCache`]'s structural-hash memoization, and
//! reports the wall-clock split plus the cache's hit/miss accounting.
//! The memoized reports are checked bit-identical to the fresh ones —
//! memoization must never change a finding. Results are written as
//! stable-schema JSON (default `BENCH_lint.json`; override with
//! `--out PATH`) alongside `search_scaling`'s artifact.
//!
//! The default model is a 48-layer dense decoder with shrunk
//! hyper-parameters (1176 layer windows, few distinct structures);
//! `--smoke` switches to 16 layers for CI-speed runs.
//!
//! ```sh
//! cargo run --release --bin lint_scaling
//! cargo run --release --bin lint_scaling -- --smoke
//! cargo run --release --bin lint_scaling -- --out results/BENCH_lint.json
//! ```

use std::path::PathBuf;
use std::time::Instant;

use predtop_analyze::{analyze_graph, Diagnostic, GraphLintCache};
use predtop_bench::jsonout::{write_json_file, Json};
use predtop_models::{enumerate_stages, ModelSpec};

struct Cli {
    out: PathBuf,
    smoke: bool,
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        out: PathBuf::from("BENCH_lint.json"),
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                cli.out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            "--smoke" => cli.smoke = true,
            other => {
                eprintln!("unknown argument `{other}`\nusage: [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cli
}

fn bench_model(smoke: bool) -> ModelSpec {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 32;
    model.num_heads = 4;
    model.vocab = 64;
    model.num_layers = if smoke { 16 } else { 48 };
    model
}

fn main() {
    let cli = parse_cli();
    let model = bench_model(cli.smoke);
    let stages = enumerate_stages(model);
    let graphs: Vec<_> = stages.iter().map(|s| s.build_graph()).collect();
    println!(
        "linting {} layer-window graphs of a {}-layer decoder...",
        graphs.len(),
        model.num_layers
    );

    // Best-of-two timing per configuration: one descheduling blip on a
    // loaded runner must not sink a row or the gate built on it.
    let reps = 2;

    // Baseline: every window analyzed from scratch.
    let mut fresh_reports: Vec<Vec<Diagnostic>> = Vec::new();
    let fresh_seconds = (0..reps)
        .map(|_| {
            let start = Instant::now();
            fresh_reports = graphs.iter().map(analyze_graph).collect();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    println!(
        "fresh:    {fresh_seconds:7.3}s wall, {} graphs analyzed",
        graphs.len()
    );

    // Memoized: one structural-hash cache shared across the sweep.
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut cached_reports: Vec<Vec<Diagnostic>> = Vec::new();
    let cached_seconds = (0..reps)
        .map(|_| {
            let cache = GraphLintCache::new();
            let start = Instant::now();
            cached_reports = graphs
                .iter()
                .map(|g| cache.analyze(g).as_ref().clone())
                .collect();
            let seconds = start.elapsed().as_secs_f64();
            let stats = cache.stats();
            hits = stats.hits;
            misses = stats.misses;
            seconds
        })
        .fold(f64::INFINITY, f64::min);
    let speedup = fresh_seconds / cached_seconds;
    println!(
        "memoized: {cached_seconds:7.3}s wall ({speedup:5.2}x), \
         {hits} hits / {misses} misses ({} distinct structures)",
        misses
    );

    assert_eq!(
        fresh_reports, cached_reports,
        "memoization changed a finding"
    );
    assert_eq!(hits + misses, graphs.len() as u64);
    println!("memoized reports bit-identical to fresh analysis — cache is sound");

    let rows = vec![
        Json::obj()
            .field("memoized", false)
            .field("seconds", fresh_seconds)
            .field("graphs", graphs.len())
            .field("hits", 0u64)
            .field("misses", graphs.len() as u64),
        Json::obj()
            .field("memoized", true)
            .field("seconds", cached_seconds)
            .field("graphs", graphs.len())
            .field("hits", hits)
            .field("misses", misses),
    ];
    let doc = Json::obj()
        .field("schema_version", 1u64)
        .field("benchmark", "lint_scaling")
        .field("mode", if cli.smoke { "smoke" } else { "full" })
        .field("model_layers", model.num_layers)
        .field("graphs", graphs.len())
        .field("rows", rows)
        .field("memoized_speedup", speedup)
        .field("cache_hits", hits)
        .field("cache_misses", misses)
        .field("reports_bit_identical", true);
    write_json_file(&cli.out, &doc);
    println!("saved {}", cli.out.display());
}
