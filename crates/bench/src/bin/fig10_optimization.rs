//! Fig. 10 — the use case: parallelization-plan search cost and quality.
//!
//! Five methods per benchmark on Platform 2's full cluster:
//!
//! * **Alpa full profiling** — the inter-stage DP with every candidate
//!   profiled (ground truth as provider).
//! * **Alpa partial profiling** — vanilla Alpa's stage-device imbalance
//!   heuristic restricting the profiled candidates.
//! * **PredTOP (GCN / GAT / Tran)** — profile only the sampled training
//!   stages, train predictors, and drive the DP with predictions.
//!
//! Fig. 10a = total optimization cost (simulated profiling seconds plus
//! measured training/inference wall seconds); Fig. 10b = the true
//! iteration latency of each chosen plan, relative to full profiling.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_core::{search_plan, search_plan_service, GrayBoxConfig, PredTop};
use predtop_gnn::ModelKind;
use predtop_parallel::{InterStageOptions, MeshShape};
use predtop_runtime::configured_threads;
use predtop_service::ServiceBuilder;
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let cluster = MeshShape::new(2, 2);
    let opts = InterStageOptions {
        microbatches: 8,
        imbalance_tolerance: None,
    };
    let partial_opts = InterStageOptions {
        microbatches: 8,
        imbalance_tolerance: Some(0.25),
    };

    let mut cost_table = TableWriter::new(
        "Fig. 10a — optimization cost (seconds: simulated profiling + wall training/inference)",
        &[
            "benchmark",
            "method",
            "stages profiled",
            "profiling (s)",
            "train (s)",
            "infer (s)",
            "total (s)",
            "vs partial",
        ],
    );
    let mut latency_table = TableWriter::new(
        "Fig. 10b — iteration latency of the optimized plan (relative to full profiling)",
        &[
            "benchmark",
            "method",
            "plan latency (s)",
            "degradation (%)",
            "stages",
        ],
    );

    for mut model in [proto.gpt3(), proto.moe()] {
        if !proto.paper {
            // the use-case experiment predicts *every* stage candidate,
            // including near-full-model ones whose N² attention dominates
            // the default single-core budget; halve the pipeline depth
            // (the --paper protocol keeps Table IV's full depth)
            model.num_layers /= 2;
        }
        let bench_name = model.kind.name();

        // ---- full profiling -------------------------------------------
        // the memoized search is transparent (same plan, same latency);
        // its stats show how much of the DP's candidate traffic the
        // cache absorbed before it reached the simulator
        let profiler = SimProfiler::new(platform.clone(), proto.seed);
        let full_stack = ServiceBuilder::new(&profiler)
            .memoize()
            .batched_auto()
            .finish();
        let full = search_plan_service(model, cluster, &full_stack, &profiler, opts, None)
            .expect("the simulator stack serves every scenario");
        let full_cost = profiler.ledger().totals();
        let stats = full.cache.expect("cached search reports stats");
        eprintln!(
            "[fig10/{bench_name}] full profiling: {} queries ({} cache hits, {} misses, \
             {} worker threads, {:.2}s wall), {:.0} sim-s, plan {:.4}s",
            full.num_queries,
            stats.hits,
            stats.misses,
            configured_threads(),
            full.search_seconds,
            full_cost.profiling_s,
            full.true_latency
        );

        // ---- partial profiling ----------------------------------------
        let profiler_partial = SimProfiler::new(platform.clone(), proto.seed);
        let partial = search_plan(
            model,
            cluster,
            &profiler_partial,
            &profiler_partial,
            partial_opts,
        );
        let partial_cost = profiler_partial.ledger().totals();
        eprintln!(
            "[fig10/{bench_name}] partial profiling: {} queries, {:.0} sim-s, plan {:.4}s",
            partial.num_queries, partial_cost.profiling_s, partial.true_latency
        );

        let mut add_rows = |method: &str,
                            stages: usize,
                            prof_s: f64,
                            train_s: f64,
                            infer_s: f64,
                            plan_latency: f64| {
            let total = prof_s + train_s + infer_s;
            let vs_partial = 100.0 * (total - partial_cost.profiling_s) / partial_cost.profiling_s;
            cost_table.add_row(vec![
                bench_name.to_string(),
                method.to_string(),
                stages.to_string(),
                format!("{prof_s:.0}"),
                format!("{train_s:.1}"),
                format!("{infer_s:.1}"),
                format!("{total:.0}"),
                format!("{vs_partial:+.1}%"),
            ]);
            let degradation = 100.0 * (plan_latency - full.true_latency) / full.true_latency;
            latency_table.add_row(vec![
                bench_name.to_string(),
                method.to_string(),
                format!("{plan_latency:.4}"),
                format!("{degradation:+.2}"),
                stages.to_string(),
            ]);
        };

        add_rows(
            "Alpa full profiling",
            full_cost.stages_profiled,
            full_cost.profiling_s,
            0.0,
            0.0,
            full.true_latency,
        );
        add_rows(
            "Alpa partial profiling",
            partial_cost.stages_profiled,
            partial_cost.profiling_s,
            0.0,
            0.0,
            partial.true_latency,
        );

        // ---- PredTOP with each architecture ---------------------------
        for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::DagTransformer] {
            let profiler_pt = SimProfiler::new(platform.clone(), proto.seed);
            // §IV-B1: the training sample must span "stages of different
            // sizes" — the DP evaluates near-full-model candidates, and a
            // predictor trained only on short stages would extrapolate
            // disastrously there. No length cap here, fewer stages.
            let cfg = GrayBoxConfig {
                num_profile_stages: (proto.stage_budget(&model) / 2).max(20),
                max_stage_layers: model.num_layers,
                arch: proto.arch(kind),
                train: proto.train,
                seed: proto.seed,
            };
            let pt = PredTop::fit(model, cluster, &profiler_pt, &cfg);
            let sampled_cost = profiler_pt.ledger().totals();
            // ground truth for evaluating the chosen plan must not bill
            // the PredTOP ledger: use a fresh profiler
            let truth = SimProfiler::new(platform.clone(), proto.seed);
            let outcome = search_plan(model, cluster, &pt, &truth, opts);
            eprintln!(
                "[fig10/{bench_name}] PredTOP-{}: {} stages profiled, plan {:.4}s",
                kind.label(),
                pt.profiled_stage_count,
                outcome.true_latency
            );
            add_rows(
                &format!("PredTOP ({})", kind.label()),
                sampled_cost.stages_profiled,
                sampled_cost.profiling_s,
                pt.training_seconds,
                pt.inference_seconds(),
                outcome.true_latency,
            );
        }
    }

    cost_table.print();
    latency_table.print();
    let p1 = cost_table.save_json("fig10a_optimization_cost");
    let p2 = latency_table.save_json("fig10b_plan_latency");
    println!("saved {} and {}", p1.display(), p2.display());
}
