//! Wall-clock scaling of the parallel plan-search engine.
//!
//! Runs the same full-profiling inter-stage search at 1 worker thread
//! and at the configured pool size (see `PREDTOP_THREADS`), verifies the
//! outcomes are bit-identical, and prints both wall clocks — the
//! engine's determinism contract made visible. A final cached pass shows
//! the memoization layer's hit/miss accounting. End-to-end wall-clock
//! results are also written as stable-schema JSON (default
//! `BENCH_search.json`; override with `--out PATH`) so scaling can be
//! tracked across commits alongside `bench_predictor`'s artifact.
//!
//! ```sh
//! cargo run --release --bin search_scaling
//! PREDTOP_THREADS=8 cargo run --release --bin search_scaling
//! cargo run --release --bin search_scaling -- --out results/BENCH_search.json
//! ```

use std::path::PathBuf;

use predtop_bench::jsonout::{write_json_file, Json};
use predtop_cluster::Platform;
use predtop_core::{search_plan_service, search_plan_with_threads};
use predtop_models::ModelSpec;
use predtop_parallel::{InterStageOptions, MeshShape};
use predtop_runtime::configured_threads;
use predtop_service::ServiceBuilder;
use predtop_sim::SimProfiler;

fn parse_out() -> PathBuf {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_search.json");
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            other => {
                eprintln!("unknown argument `{other}`\nusage: [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

fn main() {
    let out_path = parse_out();
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 128;
    model.hidden = 128;
    model.num_heads = 8;
    model.vocab = 2048;
    model.num_layers = 8;

    let platform = Platform::platform2();
    let cluster = MeshShape::new(2, 2);
    let opts = InterStageOptions {
        microbatches: 8,
        imbalance_tolerance: None,
    };
    let pool = configured_threads();

    // Fresh profilers per run: the profiler memoizes internally, so a
    // shared one would hand the second run a fully warmed cache and the
    // comparison would time hash lookups, not candidate evaluation.
    let serial_profiler = SimProfiler::new(platform.clone(), 7);
    let serial =
        search_plan_with_threads(model, cluster, &serial_profiler, &serial_profiler, opts, 1);
    println!(
        "1 thread      : {:7.3}s wall, {} queries, plan latency {:.5}s",
        serial.search_seconds, serial.num_queries, serial.true_latency
    );

    let pool_profiler = SimProfiler::new(platform.clone(), 7);
    let parallel =
        search_plan_with_threads(model, cluster, &pool_profiler, &pool_profiler, opts, pool);
    println!(
        "{pool} thread(s)   : {:7.3}s wall, {} queries, plan latency {:.5}s  ({:.2}x speedup)",
        parallel.search_seconds,
        parallel.num_queries,
        parallel.true_latency,
        serial.search_seconds / parallel.search_seconds
    );

    assert_eq!(
        serial.estimated_latency.to_bits(),
        parallel.estimated_latency.to_bits(),
        "thread count changed the search result"
    );
    assert_eq!(serial.num_queries, parallel.num_queries);
    assert_eq!(
        serial.plan, parallel.plan,
        "thread count changed the chosen plan"
    );

    let cached_profiler = SimProfiler::new(platform, 7);
    let stack = ServiceBuilder::new(&cached_profiler)
        .memoize()
        .batched(pool)
        .finish();
    let cached = search_plan_service(model, cluster, &stack, &cached_profiler, opts, None)
        .expect("the simulator stack serves every scenario");
    let stats = cached.cache.expect("cached search reports stats");
    assert_eq!(
        cached.estimated_latency.to_bits(),
        serial.estimated_latency.to_bits(),
        "memoization changed the search result"
    );
    println!(
        "cached, {pool} thr: {:7.3}s wall, {} hits / {} misses ({:.0}% hit rate)",
        cached.search_seconds,
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
    println!("all runs chose bit-identical plans — determinism holds");

    let doc = Json::obj()
        .field("schema_version", 1u64)
        .field("benchmark", "search_scaling")
        .field("parallel_threads", pool)
        .field("num_queries", serial.num_queries)
        .field("serial_seconds", serial.search_seconds)
        .field("parallel_seconds", parallel.search_seconds)
        .field("speedup", serial.search_seconds / parallel.search_seconds)
        .field("cached_seconds", cached.search_seconds)
        .field("cache_hits", stats.hits)
        .field("cache_misses", stats.misses)
        .field("cache_hit_rate", stats.hit_rate())
        .field("plan_latency_seconds", serial.true_latency)
        .field("plans_bit_identical", true);
    write_json_file(&out_path, &doc);
    println!("saved {}", out_path.display());
}
