//! Wall-clock scaling of the structural-memoized plan-search engine.
//!
//! Runs one serial, non-memoized full-profiling search as the baseline,
//! then the same search through the canonical structural stack
//! (`memoize_structural` + chunked `batched`) at 1/2/4/8 worker
//! threads. Every row is checked bit-identical to the baseline plan —
//! the engine's determinism contract made visible — and reports the
//! structural cache's hit/miss split, the interner's distinct-structure
//! count, and the dispatcher's chunk geometry. Results are written as
//! stable-schema JSON (default `BENCH_search.json`; override with
//! `--out PATH`) so scaling can be tracked across commits alongside
//! `bench_predictor`'s artifact.
//!
//! The default model is a 64-layer dense decoder with shrunk
//! hyper-parameters: deep enough that structural sharing pays (2080
//! layer windows per (mesh, config), only 189 distinct structures — the
//! work-weighted sharing alone is a ~7× cut in simulator work). Every
//! configuration is timed twice and the faster wall clock kept, so one
//! scheduler hiccup cannot sink a row. `--smoke` switches to a 12-layer
//! model for CI-speed runs.
//!
//! ```sh
//! cargo run --release --bin search_scaling
//! cargo run --release --bin search_scaling -- --smoke
//! cargo run --release --bin search_scaling -- --out results/BENCH_search.json
//! ```

use std::path::PathBuf;

use predtop_bench::jsonout::{write_json_file, Json};
use predtop_cluster::Platform;
use predtop_core::{search_plan_service, search_plan_with_threads, SearchOutcome};
use predtop_models::ModelSpec;
use predtop_parallel::{InterStageOptions, MeshShape};
use predtop_service::ServiceBuilder;
use predtop_sim::SimProfiler;

const THREAD_ROWS: [usize; 4] = [1, 2, 4, 8];

struct Cli {
    out: PathBuf,
    smoke: bool,
}

fn parse_cli() -> Cli {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut cli = Cli {
        out: PathBuf::from("BENCH_search.json"),
        smoke: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                cli.out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            "--smoke" => cli.smoke = true,
            other => {
                eprintln!("unknown argument `{other}`\nusage: [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    cli
}

fn bench_model(smoke: bool) -> ModelSpec {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 32;
    model.num_heads = 4;
    model.vocab = 64;
    model.num_layers = if smoke { 12 } else { 64 };
    model
}

fn assert_bit_identical(label: &str, a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(
        a.estimated_latency.to_bits(),
        b.estimated_latency.to_bits(),
        "{label} changed the estimated latency"
    );
    assert_eq!(a.num_queries, b.num_queries, "{label} changed the sweep");
    assert_eq!(a.plan, b.plan, "{label} changed the chosen plan");
}

fn main() {
    let cli = parse_cli();
    let model = bench_model(cli.smoke);
    let platform = Platform::platform1();
    let cluster = MeshShape::new(1, 2);
    let opts = InterStageOptions {
        microbatches: 4,
        imbalance_tolerance: None,
    };

    // Best-of-two timing per configuration: one descheduling blip on a
    // loaded runner must not sink a row or the gate built on it.
    let reps = 2;

    // Baseline: serial, no memoization — every candidate evaluated.
    // Fresh profilers per run throughout: the profiler memoizes
    // internally, so a shared one would hand later runs a fully warmed
    // cache and the comparison would time hash lookups, not evaluation.
    let baseline = (0..reps)
        .map(|_| {
            let p = SimProfiler::new(platform.clone(), 7);
            search_plan_with_threads(model, cluster, &p, &p, opts, 1)
        })
        .min_by(|a, b| a.search_seconds.total_cmp(&b.search_seconds))
        .expect("at least one baseline rep");
    println!(
        "baseline (serial, no memoize): {:7.3}s wall, {} queries, plan latency {:.5}s",
        baseline.search_seconds, baseline.num_queries, baseline.true_latency
    );

    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut last_speedup = 0.0;
    let mut last_hit_rate = 0.0;
    for threads in THREAD_ROWS {
        let out = (0..reps)
            .map(|_| {
                let profiler = SimProfiler::new(platform.clone(), 7);
                let stack = ServiceBuilder::new(&profiler)
                    .memoize_structural()
                    .batched(threads)
                    .finish();
                let out = search_plan_service(model, cluster, &stack, &profiler, opts, None)
                    .expect("the simulator stack serves every scenario");
                assert_bit_identical("structural stack", &baseline, &out);
                out
            })
            .min_by(|a, b| a.search_seconds.total_cmp(&b.search_seconds))
            .expect("at least one rep per row");
        all_identical = all_identical && out.plan == baseline.plan;

        let report = out.service.as_ref().expect("structural stack reports");
        let cache = report.cache.expect("memoize layer installed");
        let interner = report.interner.expect("interner rides along");
        let batch = report.batch.expect("batched layer installed");
        let speedup = baseline.search_seconds / out.search_seconds;
        last_speedup = speedup;
        last_hit_rate = cache.hit_rate();
        println!(
            "{threads} thread(s): {:7.3}s wall ({speedup:5.2}x), \
             {} hits / {} misses ({:.0}% hit rate), \
             {} structures, chunk size {} x {} chunks",
            out.search_seconds,
            cache.hits,
            cache.misses,
            100.0 * cache.hit_rate(),
            interner.distinct,
            batch.last_chunk_size,
            batch.chunks,
        );

        rows.push(
            Json::obj()
                .field("threads", threads)
                .field("seconds", out.search_seconds)
                .field("speedup", speedup)
                .field("plans_bit_identical", out.plan == baseline.plan)
                .field("cache_hits", cache.hits)
                .field("cache_misses", cache.misses)
                .field("cache_hit_rate", cache.hit_rate())
                .field("interner_lookups", interner.lookups)
                .field("interner_distinct", interner.distinct)
                .field("chunk_size", batch.last_chunk_size)
                .field("chunks", batch.chunks)
                .field("batches_dispatched", batch.dispatched)
                .field("batches_inline", batch.inline),
        );
    }
    println!("all runs chose bit-identical plans — determinism holds");

    let doc = Json::obj()
        .field("schema_version", 2u64)
        .field("benchmark", "search_scaling")
        .field("mode", if cli.smoke { "smoke" } else { "full" })
        .field("model_layers", model.num_layers)
        .field("num_queries", baseline.num_queries)
        .field("baseline_seconds", baseline.search_seconds)
        .field("plan_latency_seconds", baseline.true_latency)
        .field("rows", rows)
        .field("max_threads", *THREAD_ROWS.last().unwrap())
        .field("max_threads_speedup", last_speedup)
        .field("max_threads_hit_rate", last_hit_rate)
        .field("plans_bit_identical", all_identical);
    write_json_file(&cli.out, &doc);
    println!("saved {}", cli.out.display());
}
