//! Fig. 2 — latency spread of random parallelization plans.
//!
//! Draws 100 random (stage partition × sub-mesh × configuration) plans
//! for each benchmark on Platform 2's full cluster and reports the
//! distribution of their true iteration latencies. The paper's point:
//! the *same* model on the *same* hardware varies wildly with the plan,
//! so latency prediction must encode the plan.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_parallel::plan::random_plan;
use predtop_parallel::MeshShape;
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let cluster = MeshShape::new(2, 2);
    let microbatches = 8;
    let num_plans = 100;

    let mut table = TableWriter::new(
        "Fig. 2 — iteration latency across random parallelization plans (Platform 2, 100 plans)",
        &[
            "benchmark",
            "min (s)",
            "p25 (s)",
            "median (s)",
            "p75 (s)",
            "max (s)",
            "max/min",
        ],
    );

    for model in [proto.gpt3(), proto.moe()] {
        let profiler = SimProfiler::new(platform.clone(), proto.seed);
        let mut lats: Vec<f64> = (0..num_plans)
            .map(|i| {
                let plan = random_plan(model, cluster, microbatches, proto.seed + i as u64);
                plan.validate(&model).expect("random plans are valid");
                plan.latency(&profiler)
            })
            .collect();
        lats.sort_by(f64::total_cmp);
        let q = |p: f64| lats[((lats.len() - 1) as f64 * p) as usize];
        eprintln!(
            "[fig2] {}: {} plans evaluated, {} stage profiles",
            model.kind.name(),
            num_plans,
            profiler.profiles_taken()
        );
        table.add_row(vec![
            model.kind.name().to_string(),
            format!("{:.4}", lats[0]),
            format!("{:.4}", q(0.25)),
            format!("{:.4}", q(0.5)),
            format!("{:.4}", q(0.75)),
            format!("{:.4}", lats[lats.len() - 1]),
            format!("{:.2}x", lats[lats.len() - 1] / lats[0]),
        ]);
    }

    table.print();
    let path = table.save_json("fig2_plan_variation");
    println!("saved {}", path.display());
}
