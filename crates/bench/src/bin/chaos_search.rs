//! Chaos benchmark of the fault-tolerant search stack.
//!
//! Runs the same full-profiling inter-stage search three times — clean,
//! under a 20% injected transient-fault rate behind `Retry(3)`, and
//! single-threaded under a deliberately tripping circuit breaker — and
//! verifies all three land on the bit-identical plan. Prints the wall
//! clocks plus every reliability counter, and exits non-zero itself on
//! any divergence: the determinism-under-faults contract made visible.
//! Results are written as stable-schema JSON (default
//! `BENCH_chaos.json`; override with `--out PATH`).
//!
//! ```sh
//! cargo run --release --bin chaos_search
//! PREDTOP_THREADS=8 cargo run --release --bin chaos_search
//! cargo run --release --bin chaos_search -- --out results/BENCH_chaos.json
//! ```

use std::path::PathBuf;

use predtop_bench::jsonout::{write_json_file, Json};
use predtop_cluster::Platform;
use predtop_core::{search_plan_service, search_plan_with_threads, SearchOutcome};
use predtop_models::ModelSpec;
use predtop_parallel::{InterStageOptions, MeshShape};
use predtop_runtime::configured_threads;
use predtop_service::{BreakerConfig, FaultConfig, RetryPolicy, ServiceBuilder};
use predtop_sim::SimProfiler;

/// Fault-injection hash seed: chosen so the 20% error rate never strings
/// together more than 3 consecutive failures on any query of this
/// workload — `Retry(3)`'s budget, the PR's acceptance configuration.
const FAULT_SEED: u64 = 1;
const FAULT_RATE: f64 = 0.2;
const RETRY_BUDGET: usize = 3;

fn parse_out() -> PathBuf {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = PathBuf::from("BENCH_chaos.json");
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            other => {
                eprintln!("unknown argument `{other}`\nusage: [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

fn workload() -> (ModelSpec, MeshShape, InterStageOptions) {
    let mut model = ModelSpec::gpt3_1p3b(2);
    model.seq_len = 32;
    model.hidden = 32;
    model.num_heads = 4;
    model.vocab = 128;
    model.num_layers = 6;
    let opts = InterStageOptions {
        microbatches: 4,
        imbalance_tolerance: None,
    };
    (model, MeshShape::new(2, 2), opts)
}

fn assert_same(chaos: &SearchOutcome, clean: &SearchOutcome, label: &str) {
    assert_eq!(chaos.plan, clean.plan, "{label}: plan drifted under faults");
    assert_eq!(
        chaos.estimated_latency.to_bits(),
        clean.estimated_latency.to_bits(),
        "{label}: estimated latency drifted under faults"
    );
    assert_eq!(
        chaos.num_queries, clean.num_queries,
        "{label}: query accounting drifted under faults"
    );
}

fn main() {
    let out_path = parse_out();
    let (model, cluster, opts) = workload();
    let pool = configured_threads();

    let clean_profiler = SimProfiler::new(Platform::platform2(), 6);
    let clean =
        search_plan_with_threads(model, cluster, &clean_profiler, &clean_profiler, opts, pool);
    println!(
        "clean, {pool} thr  : {:7.3}s wall, {} queries, plan latency {:.5}s",
        clean.search_seconds, clean.num_queries, clean.true_latency
    );

    let chaos_profiler = SimProfiler::new(Platform::platform2(), 6);
    let stack = ServiceBuilder::new(&chaos_profiler)
        .inject_faults(FaultConfig::errors(FAULT_SEED, FAULT_RATE))
        .retry(RetryPolicy::retries(RETRY_BUDGET))
        .memoize()
        .batched(pool)
        .finish();
    let chaos = search_plan_service(model, cluster, &stack, &chaos_profiler, opts, None)
        .expect("Retry(3) absorbs every injected fault at this seed");
    assert_same(&chaos, &clean, "fault+retry");
    let report = chaos.service.as_ref().expect("chaos stack reports");
    let fault = report.fault.expect("fault layer installed");
    let retry = report.retry.expect("retry layer installed");
    assert!(fault.injected_errors > 0, "no fault was ever injected");
    assert_eq!(retry.exhausted, 0, "a query ran out of retries");
    println!(
        "chaos, {pool} thr  : {:7.3}s wall, {} faults injected, {} retries ({} recovered), {:.3}s backoff accounted",
        chaos.search_seconds, fault.injected_errors, retry.retries, retry.recovered, retry.backoff_seconds
    );

    // breaker pass: single-threaded so the trip schedule is deterministic
    let breaker_profiler = SimProfiler::new(Platform::platform2(), 6);
    let stack = ServiceBuilder::new(&breaker_profiler)
        .inject_faults(FaultConfig::errors(3, 0.4))
        .circuit_breaker(BreakerConfig::tripping_after(2))
        .retry(RetryPolicy::retries(32))
        .memoize()
        .batched(1)
        .finish();
    let tripped = search_plan_service(model, cluster, &stack, &breaker_profiler, opts, None)
        .expect("the retry budget outlasts every breaker cooldown");
    assert_same(&tripped, &clean, "seeded breaker");
    let report = tripped.service.as_ref().expect("breaker stack reports");
    let breaker = report.breaker.expect("breaker layer installed");
    assert!(breaker.opened > 0, "the breaker never tripped");
    println!(
        "breaker, 1 thr : {:7.3}s wall, opened {}x, rejected {}, probes closed {}x",
        tripped.search_seconds, breaker.opened, breaker.rejected, breaker.closed
    );
    println!("all runs chose bit-identical plans — determinism holds under faults");

    let doc = Json::obj()
        .field("schema_version", 1u64)
        .field("benchmark", "chaos_search")
        .field("parallel_threads", pool)
        .field("num_queries", clean.num_queries)
        .field("clean_seconds", clean.search_seconds)
        .field("chaos_seconds", chaos.search_seconds)
        .field("fault_rate", FAULT_RATE)
        .field("retry_budget", RETRY_BUDGET as u64)
        .field("injected_errors", fault.injected_errors)
        .field("retries", retry.retries)
        .field("recovered", retry.recovered)
        .field("backoff_seconds", retry.backoff_seconds)
        .field("breaker_opened", breaker.opened)
        .field("breaker_rejected", breaker.rejected)
        .field("breaker_closed", breaker.closed)
        .field("plan_latency_seconds", clean.true_latency)
        .field("plans_bit_identical", true);
    write_json_file(&out_path, &doc);
    println!("saved {}", out_path.display());
}
