//! Table V — MRE grid on Platform 1 (2 × NVIDIA A40).
//!
//! For both benchmarks, every (mesh, configuration) scenario of the
//! platform, every training fraction, and all three predictor
//! architectures: train on the profiled stage pool and report the
//! held-out MRE (eqn. 5). `--paper` runs the published protocol.

use predtop_bench::grid::{render_table, run_grid};
use predtop_bench::{platform_scenarios, Protocol};
use predtop_cluster::Platform;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform1();
    let scenarios = platform_scenarios(&platform);

    for model in [proto.gpt3(), proto.moe()] {
        let result = run_grid(
            &platform,
            "Platform 1",
            model,
            &scenarios,
            &proto,
            &mut |line| eprintln!("{line}"),
        );
        let table = render_table(&result, &scenarios);
        table.print();
        let name = format!(
            "table5_{}",
            model.kind.name().to_lowercase().replace('-', "")
        );
        let path = table.save_json(&name);
        // the raw grid (with per-cell metadata) feeds fig8_fig9_summary
        let raw = serde_json::to_string_pretty(&result).expect("serialize grid");
        let raw_path = predtop_bench::table::results_dir().join(format!("{name}_raw.json"));
        std::fs::write(&raw_path, raw).expect("write raw grid");
        println!("saved {} and {}", path.display(), raw_path.display());
    }
}
