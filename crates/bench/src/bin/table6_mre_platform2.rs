//! Table VI — MRE grid on Platform 2 (2 nodes × 2 NVIDIA RTX A5500).
//!
//! Same protocol as Table V with the six Platform 2 scenarios,
//! including the cross-node mesh 3 configurations where the 10 GbE
//! inter-node link dominates communication.

use predtop_bench::grid::{render_table, run_grid};
use predtop_bench::{platform_scenarios, Protocol};
use predtop_cluster::Platform;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let scenarios = platform_scenarios(&platform);

    for model in [proto.gpt3(), proto.moe()] {
        let result = run_grid(
            &platform,
            "Platform 2",
            model,
            &scenarios,
            &proto,
            &mut |line| eprintln!("{line}"),
        );
        let table = render_table(&result, &scenarios);
        table.print();
        let name = format!(
            "table6_{}",
            model.kind.name().to_lowercase().replace('-', "")
        );
        let path = table.save_json(&name);
        let raw = serde_json::to_string_pretty(&result).expect("serialize grid");
        let raw_path = predtop_bench::table::results_dir().join(format!("{name}_raw.json"));
        std::fs::write(&raw_path, raw).expect("write raw grid");
        println!("saved {} and {}", path.display(), raw_path.display());
    }
}
