//! Extension experiment — white-box analytical baseline vs the learned
//! predictors.
//!
//! §IX-A argues that operator-level analytical models ("relied on
//! metrics such as FLOPS, which is shown to be unreliable") cannot match
//! data-driven prediction. This binary quantifies that on our testbed:
//! the [`predtop_core::AnalyticBaseline`] needs no profiling or training
//! at all, but its MRE against ground truth is compared with the DAG
//! Transformer trained at 50%.

use predtop_bench::{platform_scenarios, Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_core::AnalyticBaseline;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{mean_relative_error, Dataset, GraphSample, ModelKind};
use predtop_models::sample_stages;
use predtop_parallel::StageLatencyProvider;
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let scenarios = platform_scenarios(&platform);
    let model = proto.gpt3();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let analytic = AnalyticBaseline::new(platform.clone());

    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    eprintln!("[baseline] profiling {} stages", stages.len());
    let base: Vec<GraphSample> = stages
        .iter()
        .map(|s| GraphSample::new(&profiler.stage_graph(s), 1.0, proto.pe_dim()))
        .collect();

    let mut table = TableWriter::new(
        "Extension — white-box analytic baseline vs DAG Transformer (GPT-3, Platform 2)",
        &[
            "scenario",
            "analytic MRE (%)",
            "Tran MRE (%)",
            "Tran profiling+training",
            "analytic cost",
        ],
    );

    for sc in &scenarios {
        let truth: Vec<f64> = stages
            .iter()
            .map(|s| profiler.stage_latency(s, sc.mesh, sc.config))
            .collect();

        // analytic: zero training, evaluated on every stage
        let est: Vec<f64> = stages
            .iter()
            .map(|s| analytic.stage_latency(s, sc.mesh, sc.config))
            .collect();
        let analytic_mre = mean_relative_error(&est, &truth);

        // learned: standard 50% protocol
        let samples: Vec<GraphSample> = base
            .iter()
            .zip(&truth)
            .map(|(b, &lat)| {
                let mut s = b.clone();
                s.latency = lat;
                s
            })
            .collect();
        let ds = Dataset::new(samples);
        let split = ds.split(0.5, proto.seed);
        let mut net = proto.arch(ModelKind::DagTransformer).build(proto.seed);
        let (scaler, report) = train(net.as_mut(), &ds, &split, &proto.train);
        let tran_mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);

        eprintln!(
            "[baseline] {}: analytic {analytic_mre:.1}% vs Tran {tran_mre:.1}%",
            sc.id()
        );
        table.add_row(vec![
            sc.id(),
            format!("{analytic_mre:.2}"),
            format!("{tran_mre:.2}"),
            format!(
                "{} stages + {:.0}s",
                split.train.len(),
                report.train_seconds
            ),
            "none".to_string(),
        ]);
    }

    table.print();
    println!(
        "The analytic model costs nothing but carries a systematic error the\n\
         learned predictor removes — the gray-box design buys accuracy where\n\
         it matters (intra-stage) and keeps white-box modeling where it is\n\
         exact (Eqn. 4 pipeline composition)."
    );
    let path = table.save_json("baseline_analytic");
    println!("saved {}", path.display());
}
