//! Performance benchmark of the predictor stack: kernel throughput,
//! data-parallel training wall-clock, and per-query inference latency —
//! with the determinism contract checked on every run.
//!
//! Emits stable-schema JSON (see `jsonout`) so CI and dashboards can
//! track regressions by field name:
//!
//! * `threads` / `timing` / `kernel_config` — run provenance: worker
//!   count, the best-of-N timing policy, and the dispatched kernel tier
//!   (ISA, micro-kernel geometry, KC/NC panel constants).
//! * `kernels[]` — GFLOP/s of the packed register-tiled matmul kernels
//!   vs their naive references, a bit-exactness check of each pair, and
//!   the per-call packing/tile counters (panels packed, floats packed,
//!   full vs edge micro-tiles, parallel dispatches, grid tiles).
//! * `kernel_summary[]` — roofline-style per-op rollup: best observed
//!   blocked and reference GFLOP/s across sizes and the worst speedup.
//! * `training` — epoch wall-clock of the GPT-3 sample-set training at
//!   1 thread vs the parallel worker count, with the FNV-1a weight
//!   fingerprints of both runs (`checksums_match` must be `true`: the
//!   fixed-order gradient-reduction tree makes trained weights
//!   bit-identical at any thread count).
//! * `inference` — mean per-query latency of the trained predictor and
//!   the serve-tape buffer-pool hit rate (must be positive: a zero hit
//!   rate means a tape op regressed to per-call allocation).
//!
//! ```sh
//! cargo run --release --bin bench_predictor              # full protocol
//! cargo run --release --bin bench_predictor -- --smoke   # CI-sized
//! cargo run --release --bin bench_predictor -- --out results/BENCH_predictor.json
//! ```
//!
//! Exits non-zero when any determinism check fails.

use std::path::PathBuf;
use std::time::Instant;

use predtop_bench::jsonout::{hex_u64, write_json_file, Json};
use predtop_bench::Protocol;
use predtop_cluster::Platform;
use predtop_gnn::train::train_with_threads;
use predtop_gnn::{with_serve_tape, Dataset, GraphSample, ModelKind, TrainedPredictor};
use predtop_models::sample_stages;
use predtop_parallel::{MeshShape, ParallelConfig, StageLatencyProvider};
use predtop_runtime::configured_threads;
use predtop_sim::SimProfiler;
use predtop_tensor::{active_isa, available_isas, kernel_stats, reset_kernel_stats, Matrix};

struct Args {
    smoke: bool,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: PathBuf::from("BENCH_predictor.json"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                i += 1;
                args.out = PathBuf::from(argv.get(i).expect("--out PATH"));
            }
            other => {
                eprintln!("unknown argument `{other}`\nusage: [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Deterministic pseudo-random matrix (no RNG dependency: an LCG over
/// the flat index keeps the benchmark input identical across runs).
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // top bits → [-1, 1)
            ((state >> 40) as f64 / (1u64 << 23) as f64 - 1.0) as f32
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Best-of-`reps` wall-clock seconds of `f`.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Per-op rollup across measured sizes, for the roofline-style summary.
#[derive(Clone, Copy)]
struct OpRollup {
    name: &'static str,
    best_blocked_gflops: f64,
    best_reference_gflops: f64,
    min_speedup: f64,
}

fn kernel_section(sizes: &[usize], reps: usize, failures: &mut Vec<String>) -> (Json, Json) {
    let mut rows = Vec::new();
    let mut rollups: [OpRollup; 3] = ["matmul", "matmul_nt", "matmul_tn"].map(|name| OpRollup {
        name,
        best_blocked_gflops: 0.0,
        best_reference_gflops: 0.0,
        min_speedup: f64::INFINITY,
    });
    for &n in sizes {
        let a = lcg_matrix(n, n, 11);
        let b = lcg_matrix(n, n, 23);
        let flops = 2.0 * (n as f64).powi(3);
        type Pair = (
            &'static str,
            fn(&Matrix, &Matrix) -> Matrix,
            fn(&Matrix, &Matrix) -> Matrix,
        );
        let ops: [Pair; 3] = [
            ("matmul", Matrix::matmul, Matrix::matmul_ref),
            ("matmul_nt", Matrix::matmul_nt, Matrix::matmul_nt_ref),
            ("matmul_tn", Matrix::matmul_tn, Matrix::matmul_tn_ref),
        ];
        for (op_idx, (name, blocked, reference)) in ops.into_iter().enumerate() {
            // exactness + per-call packing/tile counters from a single
            // instrumented call, outside the timed loop
            reset_kernel_stats();
            let got = blocked(&a, &b);
            let stats = kernel_stats();
            let want = reference(&a, &b);
            let exact = got == want;
            if !exact {
                failures.push(format!("kernel {name} at n={n} diverged from reference"));
            }
            let t_blocked = time_best(reps, || {
                std::hint::black_box(blocked(&a, &b));
            });
            let t_ref = time_best(reps, || {
                std::hint::black_box(reference(&a, &b));
            });
            let (blocked_gflops, reference_gflops) = (flops / t_blocked / 1e9, flops / t_ref / 1e9);
            let speedup = t_ref / t_blocked;
            let r = &mut rollups[op_idx];
            r.best_blocked_gflops = r.best_blocked_gflops.max(blocked_gflops);
            r.best_reference_gflops = r.best_reference_gflops.max(reference_gflops);
            r.min_speedup = r.min_speedup.min(speedup);
            eprintln!(
                "[kernels] {name:<10} n={n:<4} blocked {blocked_gflops:7.2} GFLOP/s  reference {reference_gflops:7.2} GFLOP/s  ({speedup:.2}x)",
            );
            rows.push(
                Json::obj()
                    .field("op", name)
                    .field("size", n)
                    .field("blocked_gflops", blocked_gflops)
                    .field("reference_gflops", reference_gflops)
                    .field("speedup", speedup)
                    .field("exact_match", exact)
                    .field("pack_panels", stats.pack_panels)
                    .field("packed_floats", stats.packed_floats)
                    .field("micro_full_tiles", stats.micro_full_tiles)
                    .field("micro_edge_tiles", stats.micro_edge_tiles)
                    .field("parallel_dispatches", stats.parallel_dispatches)
                    .field("grid_tiles", stats.grid_tiles),
            );
        }
    }
    let summary = rollups
        .iter()
        .map(|r| {
            eprintln!(
                "[roofline] {:<10} best blocked {:7.2} GFLOP/s  best reference {:7.2} GFLOP/s  worst speedup {:.2}x",
                r.name, r.best_blocked_gflops, r.best_reference_gflops, r.min_speedup
            );
            Json::obj()
                .field("op", r.name)
                .field("best_blocked_gflops", r.best_blocked_gflops)
                .field("best_reference_gflops", r.best_reference_gflops)
                .field("min_speedup", r.min_speedup)
        })
        .collect();
    (Json::Arr(rows), Json::Arr(summary))
}

fn main() {
    let args = parse_args();
    let parallel_threads = configured_threads().max(4);
    let mut failures: Vec<String> = Vec::new();

    // --- kernels ---------------------------------------------------
    let (sizes, reps): (&[usize], usize) = if args.smoke {
        (&[48, 96], 2)
    } else {
        (&[64, 128, 256, 512], 3)
    };
    let isa = active_isa();
    eprintln!(
        "[kernels] isa {} ({} micro-kernel), available: {}",
        isa.name(),
        isa.microkernel(),
        available_isas()
            .iter()
            .map(|i| i.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let (kernels, kernel_summary) = kernel_section(sizes, reps, &mut failures);
    let kernel_config = Json::obj()
        .field("isa", isa.name())
        .field("microkernel", isa.microkernel())
        .field("kc", predtop_tensor::kernel::KC)
        .field("nc", predtop_tensor::kernel::NC)
        .field(
            "available_isas",
            available_isas()
                .iter()
                .map(|i| Json::from(i.name()))
                .collect::<Vec<_>>(),
        );

    // --- training: GPT-3 sample set, 1 thread vs N ------------------
    let mut proto = Protocol::default_scaled();
    if args.smoke {
        proto.stages_gpt = 16;
        proto.train = predtop_gnn::TrainConfig::quick(6);
    }
    let model = proto.gpt3();
    let profiler = SimProfiler::new(Platform::platform1(), proto.seed);
    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    let mesh = MeshShape::new(1, 1);
    let config = ParallelConfig::SERIAL;
    eprintln!("[training] profiling {} GPT-3 stages", stages.len());
    let samples: Vec<GraphSample> = stages
        .iter()
        .map(|s| {
            let mut gs = GraphSample::new(&profiler.stage_graph(s), 1.0, proto.pe_dim());
            gs.latency = profiler.stage_latency(s, mesh, config);
            gs
        })
        .collect();
    let ds = Dataset::new(samples);
    let split = ds.split(0.8, proto.seed);
    let arch = proto.arch(ModelKind::DagTransformer);

    let run = |threads: usize| {
        let mut net = arch.build(proto.seed);
        let (scaler, report) = train_with_threads(net.as_mut(), &ds, &split, &proto.train, threads);
        let fp = net.store().fingerprint();
        let epoch_secs = report.train_seconds / report.epochs_run.max(1) as f64;
        eprintln!(
            "[training] {threads} thread(s): {} epochs in {:.3}s ({:.4}s/epoch), weights {}",
            report.epochs_run,
            report.train_seconds,
            epoch_secs,
            hex_u64(fp)
        );
        (
            TrainedPredictor { model: net, scaler },
            report,
            fp,
            epoch_secs,
        )
    };
    let (_, serial_report, serial_fp, serial_epoch) = run(1);
    let (predictor, parallel_report, parallel_fp, parallel_epoch) = run(parallel_threads);
    let checksums_match = serial_fp == parallel_fp;
    if !checksums_match {
        failures.push(format!(
            "trained weights diverged: 1 thread {} vs {} threads {}",
            hex_u64(serial_fp),
            parallel_threads,
            hex_u64(parallel_fp)
        ));
    }
    let training = Json::obj()
        .field("dataset", "gpt3-scaled")
        .field("samples", ds.len())
        .field("batch_size", proto.train.batch_size)
        .field("serial_epochs_run", serial_report.epochs_run)
        .field("serial_epoch_seconds", serial_epoch)
        .field("parallel_threads", parallel_threads)
        .field("parallel_epochs_run", parallel_report.epochs_run)
        .field("parallel_epoch_seconds", parallel_epoch)
        .field("epoch_speedup", serial_epoch / parallel_epoch)
        .field("serial_weight_fingerprint", hex_u64(serial_fp))
        .field("parallel_weight_fingerprint", hex_u64(parallel_fp))
        .field("checksums_match", checksums_match);

    // --- inference: per-query latency on the trained predictor ------
    let passes = if args.smoke { 2 } else { 10 };
    // warm pass so the serve tape's buffer pool reaches steady state
    for s in &ds.samples {
        std::hint::black_box(predictor.predict(s));
    }
    let t = Instant::now();
    let mut queries = 0u64;
    for _ in 0..passes {
        for s in &ds.samples {
            std::hint::black_box(predictor.predict(s));
            queries += 1;
        }
    }
    let per_query_us = t.elapsed().as_secs_f64() / queries as f64 * 1e6;
    let pool = with_serve_tape(|tape| tape.pool_stats());
    let hit_rate = pool.hit_rate();
    if hit_rate <= 0.0 {
        failures.push(format!(
            "serve-tape pool hit rate is {hit_rate} after {queries} queries — a tape op regressed to per-call allocation"
        ));
    }
    eprintln!(
        "[inference] {queries} queries, {per_query_us:.1} µs/query, pool hit rate {:.1}%",
        100.0 * hit_rate
    );
    let inference = Json::obj()
        .field("queries", queries)
        .field("mean_microseconds_per_query", per_query_us)
        .field("pool_hits", pool.hits)
        .field("pool_misses", pool.misses)
        .field("pool_hit_rate", hit_rate);

    // --- artifact ---------------------------------------------------
    let doc = Json::obj()
        .field("schema_version", 2u64)
        .field("benchmark", "bench_predictor")
        .field("smoke", args.smoke)
        .field("threads", parallel_threads)
        .field(
            "timing",
            Json::obj().field("policy", "best_of").field("reps", reps),
        )
        .field("kernel_config", kernel_config)
        .field("kernels", kernels)
        .field("kernel_summary", kernel_summary)
        .field("training", training)
        .field("inference", inference);
    write_json_file(&args.out, &doc);
    println!("saved {}", args.out.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("determinism checks passed: kernels exact, weight checksums match");
}
