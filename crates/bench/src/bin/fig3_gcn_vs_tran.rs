//! Fig. 3 — the motivating comparison: GCN vs DAG Transformer stage-
//! latency prediction error across runtime configurations, at equal
//! training data.
//!
//! One benchmark (GPT-3), Platform 2, all six scenarios, one mid-grid
//! training fraction (50%) — the paper's intro-figure protocol in
//! miniature. For the full sweep see `table6_mre_platform2`.

use predtop_bench::grid::ARCHES;
use predtop_bench::{platform_scenarios, Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_gnn::train::{eval_mre, train};
use predtop_gnn::{Dataset, GraphSample, ModelKind};
use predtop_models::sample_stages;
use predtop_parallel::StageLatencyProvider;
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let scenarios = platform_scenarios(&platform);
    let model = proto.gpt3();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);

    let stages = sample_stages(
        model,
        proto.stage_budget(&model),
        proto.max_stage_layers.min(model.num_layers),
        proto.seed,
    );
    eprintln!("[fig3] profiling {} stages", stages.len());
    let base: Vec<GraphSample> = stages
        .iter()
        .map(|s| GraphSample::new(&profiler.stage_graph(s), 1.0, proto.pe_dim()))
        .collect();

    let mut table = TableWriter::new(
        "Fig. 3 — prediction MRE (%): GCN vs DAG Transformer (GPT-3, Platform 2, 50% train)",
        &["scenario", "GCN", "Tran", "Tran better?"],
    );

    for sc in &scenarios {
        let samples: Vec<GraphSample> = stages
            .iter()
            .zip(&base)
            .map(|(spec, b)| {
                let mut s = b.clone();
                s.latency = profiler.stage_latency(spec, sc.mesh, sc.config);
                s
            })
            .collect();
        let ds = Dataset::new(samples);
        let split = ds.split(0.5, proto.seed);

        let mut mres = std::collections::HashMap::new();
        for kind in ARCHES {
            if kind == ModelKind::Gat {
                continue; // Fig. 3 compares GCN vs Transformer only
            }
            let mut net = proto.arch(kind).build(proto.seed);
            let (scaler, _) = train(net.as_mut(), &ds, &split, &proto.train);
            let mre = eval_mre(net.as_ref(), &scaler, &ds, &split.test);
            eprintln!("[fig3] {} {}: MRE {:.2}%", sc.id(), kind.label(), mre);
            mres.insert(kind.label(), mre);
        }
        let gcn = mres["GCN"];
        let tran = mres["Tran"];
        table.add_row(vec![
            sc.id(),
            format!("{gcn:.2}"),
            format!("{tran:.2}"),
            if tran < gcn { "yes" } else { "no" }.to_string(),
        ]);
    }

    table.print();
    let path = table.save_json("fig3_gcn_vs_tran");
    println!("saved {}", path.display());
}
