//! Eqn. 4 / Fig. 6 validation — the white-box pipeline formula against
//! the discrete-event 1F1B simulator, including a stress test of the
//! paper's "inter-stage communication is negligible" assumption.
//!
//! With zero communication the formula is exact (also property-tested in
//! `predtop-sim`); this binary quantifies the relative gap as the
//! activation transfer between stages grows from NVLink-like to
//! 10-GbE-like magnitudes.

use predtop_bench::{Protocol, TableWriter};
use predtop_cluster::Platform;
use predtop_models::StageSpec;
use predtop_parallel::plan::pipeline_latency;
use predtop_parallel::{MeshShape, ParallelConfig, StageLatencyProvider};
use predtop_sim::pipeline::simulate_uniform;
use predtop_sim::SimProfiler;

fn main() {
    let proto = Protocol::from_args();
    let platform = Platform::platform2();
    let profiler = SimProfiler::new(platform.clone(), proto.seed);
    let model = proto.gpt3();

    // a realistic 4-stage even partition of the benchmark on 4 devices
    let per = model.num_layers / 4;
    let mesh = MeshShape::new(1, 1);
    let stage_times: Vec<f64> = (0..4)
        .map(|i| {
            let stage = StageSpec::new(model, i * per, (i + 1) * per);
            profiler.stage_latency(&stage, mesh, ParallelConfig::SERIAL)
        })
        .collect();
    eprintln!("[eqn4] stage latencies: {stage_times:?}");

    // activation bytes crossing a stage boundary
    let act_bytes = (model.tokens() * model.hidden * 2) as f64; // bf16

    let mut table = TableWriter::new(
        "Eqn. 4 validation — formula vs event-driven 1F1B simulation (GPT-3, 4 stages, 8 microbatches)",
        &["link", "comm per hop (s)", "formula (s)", "simulated (s)", "gap (%)"],
    );

    let links = [
        ("none (Eqn. 4 assumption)", 0.0),
        ("NVLink 56 GB/s", act_bytes / 56.25e9),
        ("PCIe 25 GB/s", act_bytes / 25e9),
        ("10 GbE 1.25 GB/s", act_bytes / 1.25e9),
        ("1 GbE 0.125 GB/s", act_bytes / 0.125e9),
    ];

    let microbatches = 8;
    let formula = pipeline_latency(&stage_times, microbatches);
    for (name, comm) in links {
        let sim = simulate_uniform(&stage_times, microbatches, &[comm; 3]);
        let gap = 100.0 * (sim.makespan - formula) / formula;
        table.add_row(vec![
            name.to_string(),
            format!("{comm:.6}"),
            format!("{formula:.4}"),
            format!("{:.4}", sim.makespan),
            format!("{gap:+.2}"),
        ]);
    }

    table.print();
    println!(
        "The formula is exact with zero communication and degrades as links slow;\n\
         on NVLink-class links the gap stays well under 1%, supporting §V's assumption."
    );
    let path = table.save_json("eqn4_validation");
    println!("saved {}", path.display());
}
