//! Tables I–IV — the paper's setup tables, printed from their encodings
//! in the library (these are definitions, not measurements; the point of
//! the binary is that the reproduction carries them as code with tests,
//! and this makes them inspectable).

use predtop_bench::TableWriter;
use predtop_cluster::Platform;
use predtop_ir::dtype::NUM_DTYPES;
use predtop_ir::features::FEATURE_DIM;
use predtop_ir::graph::NUM_NODE_KINDS;
use predtop_ir::op::NUM_OP_KINDS;
use predtop_ir::shape::MAX_RANK;
use predtop_models::ModelSpec;
use predtop_parallel::{table3_configs, MeshShape};

fn main() {
    // Table I — node parameters of the stage DAG
    let mut t1 = TableWriter::new(
        "Table I — node features of the stage DAG (total width)",
        &["parameter", "encoding", "width"],
    );
    t1.add_row(vec![
        "Operator Type".into(),
        "one-hot over the operator catalog".into(),
        NUM_OP_KINDS.to_string(),
    ]);
    t1.add_row(vec![
        "Output Tensor Dimensions".into(),
        "ln(1 + dim) per axis, zero-padded".into(),
        MAX_RANK.to_string(),
    ]);
    t1.add_row(vec![
        "Output Data Type".into(),
        "one-hot over dtypes".into(),
        NUM_DTYPES.to_string(),
    ]);
    t1.add_row(vec![
        "Node Type".into(),
        "one-hot: input / literal / operator / output".into(),
        NUM_NODE_KINDS.to_string(),
    ]);
    t1.add_row(vec!["(total)".into(), "".into(), FEATURE_DIM.to_string()]);
    t1.print();

    // Table II — mesh configurations
    let mut t2 = TableWriter::new(
        "Table II — mesh configurations",
        &["mesh index", "nodes", "GPUs per node"],
    );
    for mesh in Platform::platform2().table2_meshes() {
        t2.add_row(vec![
            mesh.table2_index().unwrap().to_string(),
            mesh.num_nodes.to_string(),
            mesh.gpus_per_node.to_string(),
        ]);
    }
    t2.print();

    // Table III — benchmark (parallelism) configurations
    let mut t3 = TableWriter::new(
        "Table III — parallelism configurations per mesh",
        &["mesh index", "conf index", "remark"],
    );
    for mesh in Platform::platform2().table2_meshes() {
        let shape = MeshShape::new(mesh.num_nodes, mesh.gpus_per_node);
        for (ci, config) in table3_configs(shape).iter().enumerate() {
            t3.add_row(vec![
                mesh.table2_index().unwrap().to_string(),
                (ci + 1).to_string(),
                config.remark(),
            ]);
        }
    }
    t3.print();

    // Table IV — benchmarks
    let mut t4 = TableWriter::new(
        "Table IV — benchmark models",
        &["parameter", "GPT-3", "MoE"],
    );
    let gpt = ModelSpec::gpt3_1p3b(8);
    let moe = ModelSpec::moe_2p6b(8);
    let rows: Vec<(&str, String, String)> = vec![
        (
            "# parameters (computed)",
            format!("{:.2}B", gpt.approx_params() as f64 / 1e9),
            format!("{:.2}B", moe.approx_params() as f64 / 1e9),
        ),
        (
            "sequence length",
            gpt.seq_len.to_string(),
            moe.seq_len.to_string(),
        ),
        (
            "hidden size",
            gpt.hidden.to_string(),
            moe.hidden.to_string(),
        ),
        (
            "# layers",
            gpt.num_layers.to_string(),
            moe.num_layers.to_string(),
        ),
        (
            "# heads",
            gpt.num_heads.to_string(),
            moe.num_heads.to_string(),
        ),
        ("vocab size", gpt.vocab.to_string(), moe.vocab.to_string()),
        (
            "# experts",
            "-".into(),
            moe.moe
                .map(|m| m.num_experts.to_string())
                .unwrap_or_default(),
        ),
        (
            "expert hidden",
            "-".into(),
            moe.moe
                .map(|m| m.expert_hidden.to_string())
                .unwrap_or_default(),
        ),
    ];
    for (name, g, m) in rows {
        t4.add_row(vec![name.to_string(), g, m]);
    }
    t4.print();

    for (t, name) in [
        (&t1, "table1_features"),
        (&t2, "table2_meshes"),
        (&t3, "table3_configs"),
        (&t4, "table4_benchmarks"),
    ] {
        t.save_json(name);
    }
    println!("saved results/table{{1,2,3,4}}_*.json");
}
