//! Runtime-configuration scenarios: the (mesh, configuration) columns of
//! Tables V and VI.

use predtop_cluster::Platform;
use predtop_parallel::{table3_configs, MeshShape, ParallelConfig};
use serde::Serialize;

/// One table column: a mesh (Table II) and an intra-stage configuration
/// (Table III) on a platform.
#[derive(Debug, Clone, Serialize)]
pub struct Scenario {
    /// Table II mesh index (1-based).
    pub mesh_index: usize,
    /// Table III configuration index within the mesh (1-based).
    pub config_index: usize,
    /// The mesh shape.
    pub mesh: MeshShape,
    /// The parallelism configuration.
    pub config: ParallelConfig,
}

impl Scenario {
    /// `(m, p)` experiment identifier used by §VII-A.
    pub fn id(&self) -> String {
        format!("({},{})", self.mesh_index, self.config_index)
    }

    /// Column header, e.g. `"Mesh 2 / Conf 1"`.
    pub fn header(&self) -> String {
        format!("Mesh {} Conf {}", self.mesh_index, self.config_index)
    }
}

/// All scenarios of a platform in table order: Platform 1 → three
/// columns (mesh 1 conf 1; mesh 2 confs 1–2), Platform 2 → six (adding
/// mesh 3 confs 1–3).
pub fn platform_scenarios(platform: &Platform) -> Vec<Scenario> {
    let mut out = Vec::new();
    for mesh in platform.table2_meshes() {
        let shape = MeshShape::new(mesh.num_nodes, mesh.gpus_per_node);
        let mesh_index = shape.table2_index().expect("table meshes only");
        for (ci, config) in table3_configs(shape).into_iter().enumerate() {
            out.push(Scenario {
                mesh_index,
                config_index: ci + 1,
                mesh: shape,
                config,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform1_has_three_columns() {
        let s = platform_scenarios(&Platform::platform1());
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].id(), "(1,1)");
        assert_eq!(s[1].id(), "(2,1)");
        assert_eq!(s[2].id(), "(2,2)");
        assert_eq!(s[1].config, ParallelConfig::new(2, 1));
        assert_eq!(s[2].config, ParallelConfig::new(1, 2));
    }

    #[test]
    fn platform2_has_six_columns() {
        let s = platform_scenarios(&Platform::platform2());
        assert_eq!(s.len(), 6);
        assert_eq!(s[3].id(), "(3,1)");
        assert_eq!(s[5].config, ParallelConfig::new(1, 4));
        assert_eq!(s[5].header(), "Mesh 3 Conf 3");
    }
}
