//! Minimal hand-rolled JSON for machine-readable benchmark artifacts.
//!
//! `bench_predictor` and `search_scaling` emit stable-schema JSON files
//! (`BENCH_predictor.json`, `BENCH_search.json`) that CI and dashboards
//! parse by field name. The writer is a small ordered object builder:
//! fields render exactly in insertion order, so the schema is spelled
//! out at the emit site rather than derived from struct layout, and a
//! diff of two artifacts lines up field by field.

use std::fmt::Write as _;
use std::path::Path;

/// An ordered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counts, sizes).
    UInt(u64),
    /// Finite float, shortest round-trip formatting.
    Num(f64),
    /// String, escaped on render.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, for builder chaining via [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field (objects only).
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Fetch a field of an object by key (tests / CI-style validation).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => write_block(out, indent, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent + 1);
            }),
            Json::Obj(fields) => write_block(out, indent, '{', '}', fields.len(), |out, i| {
                let (k, v) = &fields[i];
                out.push('"');
                out.push_str(&escape(k));
                out.push_str("\": ");
                v.write(out, indent + 1);
            }),
        }
    }
}

fn write_block(
    out: &mut String,
    indent: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    if len == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    for i in 0..len {
        out.push('\n');
        out.push_str(&"  ".repeat(indent + 1));
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push(close);
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A `u64` fingerprint as a fixed-width hex string (`"0x0123…"`) — u64
/// does not fit losslessly in a JSON number.
pub fn hex_u64(x: u64) -> String {
    format!("0x{x:016x}")
}

/// Write `value` to `path`, creating parent directories as needed.
pub fn write_json_file(path: &Path, value: &Json) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output dir");
        }
    }
    std::fs::write(path, value.render()).expect("write json file");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_insertion_order() {
        let j = Json::obj()
            .field("z", 1u64)
            .field("a", 2u64)
            .field("m", true);
        let s = j.render();
        let (zi, ai, mi) = (
            s.find("\"z\"").unwrap(),
            s.find("\"a\"").unwrap(),
            s.find("\"m\"").unwrap(),
        );
        assert!(zi < ai && ai < mi, "insertion order preserved:\n{s}");
        assert_eq!(j.get("a"), Some(&Json::UInt(2)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        assert_eq!(Json::from(0.1f64).render(), "0.1\n");
        assert_eq!(Json::from(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn nested_pretty_rendering() {
        let j = Json::obj()
            .field("xs", vec![Json::UInt(1), Json::UInt(2)])
            .field("o", Json::obj().field("k", "v"))
            .field("empty", Vec::<Json>::new().into_iter().collect::<Vec<_>>());
        let expected = "{\n  \"xs\": [\n    1,\n    2\n  ],\n  \"o\": {\n    \"k\": \"v\"\n  },\n  \"empty\": []\n}\n";
        assert_eq!(j.render(), expected);
    }

    #[test]
    fn hex_fingerprints_are_fixed_width() {
        assert_eq!(hex_u64(0xff), "0x00000000000000ff");
        assert_eq!(hex_u64(u64::MAX), "0xffffffffffffffff");
    }
}
