//! Criterion microbenchmarks for the performance-critical kernels:
//! graph construction, pruning, reachability closure, the simulator's
//! intra-stage optimization (one "profile"), predictor inference, the
//! inter-stage DP, and the matmul kernel everything trains on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use predtop_cluster::Platform;
use predtop_core::ArchConfig;
use predtop_gnn::{GraphSample, ModelKind, TrainedPredictor};
use predtop_ir::prune::prune;
use predtop_ir::reach::Reachability;
use predtop_models::{ModelSpec, StageSpec};
use predtop_parallel::{
    optimize_pipeline, InterStageOptions, MeshShape, ParallelConfig, StageLatencyProvider,
};
use predtop_sim::SimProfiler;
use predtop_tensor::Matrix;

fn small_model() -> ModelSpec {
    let mut m = ModelSpec::gpt3_1p3b(2);
    m.seq_len = 128;
    m.hidden = 128;
    m.num_heads = 8;
    m.vocab = 1024;
    m.num_layers = 8;
    m
}

fn bench_graph_build(c: &mut Criterion) {
    let model = small_model();
    let mut g = c.benchmark_group("graph_build");
    for layers in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(layers), &layers, |b, &l| {
            let stage = StageSpec::new(model, 0, l);
            b.iter(|| black_box(stage.build_graph()));
        });
    }
    g.finish();
}

fn bench_prune_and_reach(c: &mut Criterion) {
    let model = small_model();
    let graph = StageSpec::new(model, 0, 4).build_graph();
    c.bench_function("prune_4layer", |b| b.iter(|| black_box(prune(&graph))));
    let (pruned, _) = prune(&graph);
    c.bench_function("reachability_4layer", |b| {
        b.iter(|| black_box(Reachability::compute(&pruned)))
    });
    c.bench_function("sample_build_4layer", |b| {
        b.iter(|| black_box(GraphSample::new(&graph, 0.01, 32)))
    });
}

fn bench_sim_profile(c: &mut Criterion) {
    let model = small_model();
    let stage = StageSpec::new(model, 0, 4);
    c.bench_function("sim_profile_stage", |b| {
        b.iter(|| {
            // fresh profiler so memoization does not hide the work
            let profiler = SimProfiler::new(Platform::platform2(), 7);
            black_box(profiler.stage_latency(
                &stage,
                MeshShape::new(1, 2),
                ParallelConfig::new(1, 2),
            ))
        })
    });
}

fn bench_predictor_inference(c: &mut Criterion) {
    let model = small_model();
    let graph = StageSpec::new(model, 0, 4).build_graph();
    let mut g = c.benchmark_group("predictor_inference");
    for kind in [ModelKind::Gcn, ModelKind::Gat, ModelKind::DagTransformer] {
        let arch = ArchConfig::scaled(kind);
        let sample = GraphSample::new(&graph, 0.01, arch.pe_dim());
        let predictor = TrainedPredictor {
            model: arch.build(1),
            scaler: predtop_gnn::TargetScaler {
                mean: 0.0,
                std: 1.0,
            },
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &sample,
            |b, s| b.iter(|| black_box(predictor.predict(s))),
        );
    }
    g.finish();
}

struct SynthProvider;
impl StageLatencyProvider for SynthProvider {
    fn stage_latency(&self, stage: &StageSpec, mesh: MeshShape, config: ParallelConfig) -> f64 {
        stage.num_layers() as f64 * 0.01 / config.num_devices() as f64
            * (1.0 + 0.1 * mesh.nodes as f64)
    }
}

fn bench_interstage_dp(c: &mut Criterion) {
    let model = small_model();
    c.bench_function("interstage_dp_8layers", |b| {
        b.iter(|| {
            black_box(optimize_pipeline(
                model,
                MeshShape::new(2, 2),
                &SynthProvider,
                InterStageOptions {
                    microbatches: 8,
                    imbalance_tolerance: None,
                },
            ))
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [64usize, 256] {
        let a = Matrix::full(n, n, 1.5);
        let b_m = Matrix::full(n, n, 0.5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("blocked_{n}")),
            &n,
            |b, _| b.iter(|| black_box(a.matmul(&b_m))),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("reference_{n}")),
            &n,
            |b, _| b.iter(|| black_box(a.matmul_ref(&b_m))),
        );
        // attention's Q·Kᵀ: the kernel the blocking fixes most
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("nt_blocked_{n}")),
            &n,
            |b, _| b.iter(|| black_box(a.matmul_nt(&b_m))),
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("nt_reference_{n}")),
            &n,
            |b, _| b.iter(|| black_box(a.matmul_nt_ref(&b_m))),
        );
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_graph_build, bench_prune_and_reach, bench_sim_profile,
              bench_predictor_inference, bench_interstage_dp, bench_matmul
}
criterion_main!(benches);
