//! The bounded-retry layer: absorb transient failures with a
//! deterministic exponential-backoff accounting.
//!
//! [`Retry`] consults [`ServiceError::retryability`] — the structured
//! classification every error variant carries — and re-attempts only
//! `Transient` failures ([`ServiceError::InjectedFault`],
//! [`ServiceError::CircuitOpen`]). Permanent failures (a missing model,
//! an unfitted scenario, a spent deadline budget) are returned
//! immediately so a [`crate::Fallback`] above can move to the next
//! source without burning attempts.
//!
//! Backoff is *accounted, not slept*: each re-attempt charges
//! `base · 2^attempt` seconds to [`RetryStats::backoff_seconds`], the
//! same deterministic simulated-time style as the cost ledger and the
//! instrument layer's `served_seconds`. Sleeping for real would make
//! chaos searches slow and their wall clocks noisy without changing any
//! value the stack resolves; the accounting preserves what a production
//! deployment would have waited.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Attempt budget and backoff constants of a [`Retry`] layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (so a query is attempted at most
    /// `max_retries + 1` times).
    pub max_retries: usize,
    /// Backoff charged before re-attempt `k` (zero-based) is
    /// `backoff_base_seconds · 2^k`.
    pub backoff_base_seconds: f64,
}

impl RetryPolicy {
    /// `n` retries with the default 50 ms backoff base.
    pub fn retries(n: usize) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            backoff_base_seconds: 0.05,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::retries(3)
    }
}

/// A snapshot of a [`Retry`] layer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RetryStats {
    /// Re-attempts issued (a query retried twice counts twice).
    pub retries: usize,
    /// Queries that failed at least once and then succeeded.
    pub recovered: usize,
    /// Queries whose transient failures outlived the attempt budget.
    pub exhausted: usize,
    /// Queries abandoned immediately on a permanent error.
    pub permanent_failures: usize,
    /// Deterministic exponential-backoff seconds accounted (not slept).
    pub backoff_seconds: f64,
}

#[derive(Debug, Default)]
pub(crate) struct RetryState {
    retries: AtomicUsize,
    recovered: AtomicUsize,
    exhausted: AtomicUsize,
    permanent: AtomicUsize,
    backoff_seconds: Mutex<f64>,
}

impl RetryState {
    fn snapshot(&self) -> RetryStats {
        RetryStats {
            retries: self.retries.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            permanent_failures: self.permanent.load(Ordering::Relaxed),
            backoff_seconds: *self.backoff_seconds.lock(),
        }
    }
}

/// Shared view of a [`Retry`] layer's counters, usable after the layer
/// has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct RetryHandle(pub(crate) Arc<RetryState>);

impl RetryHandle {
    /// Counters accumulated since the layer was built.
    pub fn stats(&self) -> RetryStats {
        self.0.snapshot()
    }
}

/// Middleware that re-attempts transient failures — see the module docs
/// for the retryability contract and backoff accounting.
///
/// Transparency: the reply that finally succeeds is the inner service's
/// reply, unchanged. A search whose every query eventually succeeds
/// through this layer is bit-identical to one that never failed.
pub struct Retry<S> {
    inner: S,
    policy: RetryPolicy,
    state: Arc<RetryState>,
}

impl<S> Retry<S> {
    /// Wrap `inner` with the given attempt budget and zeroed counters.
    pub fn new(inner: S, policy: RetryPolicy) -> Retry<S> {
        Retry {
            inner,
            policy,
            state: Arc::new(RetryState::default()),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The attempt budget this layer enforces.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> RetryHandle {
        RetryHandle(self.state.clone())
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> RetryStats {
        self.state.snapshot()
    }
}

impl<S: LatencyService> LatencyService for Retry<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let mut attempt = 0usize;
        loop {
            match self.inner.query(q) {
                Ok(r) => {
                    if attempt > 0 {
                        self.state.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(r);
                }
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    self.state.retries.fetch_add(1, Ordering::Relaxed);
                    *self.state.backoff_seconds.lock() +=
                        self.policy.backoff_base_seconds * (1u64 << attempt.min(62)) as f64;
                    attempt += 1;
                }
                Err(e) => {
                    if e.is_transient() {
                        self.state.exhausted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.state.permanent.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service};
    use crate::fault::{FaultConfig, FaultInject};
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn q(start: usize, end: usize) -> LatencyQuery {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 8;
        LatencyQuery::new(
            StageSpec::new(m, start, end),
            MeshShape::new(1, 1),
            ParallelConfig::SERIAL,
        )
    }

    /// A service that fails transiently `n` times, then succeeds.
    struct FlakyService(Mutex<usize>);

    impl LatencyService for FlakyService {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn query(&self, _q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
            let mut left = self.0.lock();
            if *left > 0 {
                *left -= 1;
                return Err(ServiceError::InjectedFault {
                    source: "flaky",
                    attempt: 0,
                });
            }
            Ok(LatencyReply {
                seconds: 0.25,
                source: "flaky",
            })
        }
    }

    #[test]
    fn transient_failures_recover_within_budget() {
        let retry = Retry::new(FlakyService(Mutex::new(2)), RetryPolicy::retries(3));
        let r = retry.query(&q(0, 2)).unwrap();
        assert_eq!(r.seconds, 0.25);
        let s = retry.stats();
        assert_eq!(s.retries, 2);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.exhausted, 0);
        // backoff accounting: 0.05 + 0.10
        assert!((s.backoff_seconds - 0.15).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_surfaces_the_transient_error() {
        let retry = Retry::new(FlakyService(Mutex::new(10)), RetryPolicy::retries(3));
        let err = retry.query(&q(0, 2)).unwrap_err();
        assert!(err.is_transient());
        let s = retry.stats();
        assert_eq!(s.retries, 3);
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.recovered, 0);
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let retry = Retry::new(failing_service("dead"), RetryPolicy::retries(5));
        let err = retry.query(&q(1, 3)).unwrap_err();
        assert!(matches!(err, ServiceError::Unavailable { .. }));
        let s = retry.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(s.permanent_failures, 1);
    }

    #[test]
    fn zero_retries_is_a_pass_through() {
        let (svc, calls) = counting_service();
        let retry = Retry::new(svc, RetryPolicy::retries(0));
        assert!(retry.query(&q(0, 1)).is_ok());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(retry.stats(), RetryStats::default());
    }

    #[test]
    fn retry_over_fault_injection_reproduces_the_clean_values() {
        // the canonical pairing: Retry(FaultInject(service)) serves the
        // exact clean values whenever the attempt budget suffices
        let qs: Vec<LatencyQuery> = (0..8).map(|i| q(i, i + 1)).collect();
        let (clean, _) = counting_service();
        let expected: Vec<f64> = qs.iter().map(|x| clean.query(x).unwrap().seconds).collect();

        let (svc, _) = counting_service();
        let retry = Retry::new(
            FaultInject::new(svc, FaultConfig::errors(9, 0.3)),
            RetryPolicy::retries(16),
        );
        for (x, want) in qs.iter().zip(&expected) {
            let got = retry.query(x).expect("16 retries absorb a 30% fault rate");
            assert_eq!(got.seconds.to_bits(), want.to_bits());
        }
    }
}
