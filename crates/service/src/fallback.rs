//! The graceful-degradation layer: try a primary source, fall back to a
//! secondary on error, and keep count of who actually answered.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// How many queries each side of a [`Fallback`] ended up serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FallbackStats {
    /// Queries answered by the primary source.
    pub primary_served: usize,
    /// Queries the primary refused and the secondary answered.
    pub fallback_served: usize,
}

#[derive(Debug, Default)]
pub(crate) struct FallbackState {
    primary: AtomicUsize,
    secondary: AtomicUsize,
}

impl FallbackState {
    fn snapshot(&self) -> FallbackStats {
        FallbackStats {
            primary_served: self.primary.load(Ordering::Relaxed),
            fallback_served: self.secondary.load(Ordering::Relaxed),
        }
    }
}

/// Shared view of a [`Fallback`] layer's counters, usable after the
/// layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct FallbackHandle(pub(crate) Arc<FallbackState>);

impl FallbackHandle {
    /// Who served how many queries since the layer was built.
    pub fn stats(&self) -> FallbackStats {
        self.0.snapshot()
    }
}

/// Middleware that chains two latency sources: every query first goes to
/// `primary`; on any [`ServiceError`] the same query is retried against
/// `secondary`. Chaining `Fallback`s nests arbitrarily deep — the
/// canonical stack is predictor → analytic → simulator.
///
/// Attribution: the reply's [`LatencyReply::source`] is whatever base
/// service actually answered, so a downstream consumer (or a test) can
/// assert *which* model a number came from. Only when both sides fail is
/// the secondary's error returned.
pub struct Fallback<A, B> {
    primary: A,
    secondary: B,
    state: Arc<FallbackState>,
}

impl<A, B> Fallback<A, B> {
    /// Serve from `primary`, degrading to `secondary` per query.
    pub fn new(primary: A, secondary: B) -> Fallback<A, B> {
        Fallback {
            primary,
            secondary,
            state: Arc::new(FallbackState::default()),
        }
    }

    /// The preferred source.
    pub fn primary(&self) -> &A {
        &self.primary
    }

    /// The stand-in source.
    pub fn secondary(&self) -> &B {
        &self.secondary
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> FallbackHandle {
        FallbackHandle(self.state.clone())
    }

    /// Who served how many queries since construction.
    pub fn stats(&self) -> FallbackStats {
        self.state.snapshot()
    }
}

impl<A: LatencyService, B: LatencyService> LatencyService for Fallback<A, B> {
    fn name(&self) -> &'static str {
        self.primary.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        match self.primary.query(q) {
            Ok(r) => {
                self.state.primary.fetch_add(1, Ordering::Relaxed);
                Ok(r)
            }
            Err(_) => {
                let r = self.secondary.query(q)?;
                self.state.secondary.fetch_add(1, Ordering::Relaxed);
                Ok(r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service};
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn q(start: usize, end: usize) -> LatencyQuery {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 4;
        LatencyQuery::new(
            StageSpec::new(m, start, end),
            MeshShape::new(1, 1),
            ParallelConfig::SERIAL,
        )
    }

    #[test]
    fn healthy_primary_serves_everything() {
        let (primary, _) = counting_service();
        let (secondary, sec_calls) = counting_service();
        let fb = Fallback::new(primary, secondary);
        let r = fb.query(&q(0, 2)).unwrap();
        assert_eq!(r.source, "counting");
        assert_eq!(
            fb.stats(),
            FallbackStats {
                primary_served: 1,
                fallback_served: 0
            }
        );
        assert_eq!(sec_calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failed_primary_degrades_per_query() {
        let (secondary, sec_calls) = counting_service();
        let fb = Fallback::new(failing_service("predictor"), secondary);
        let r = fb.query(&q(0, 2)).unwrap();
        assert_eq!(r.source, "counting", "reply attributes the actual server");
        assert_eq!(
            fb.stats(),
            FallbackStats {
                primary_served: 0,
                fallback_served: 1
            }
        );
        assert_eq!(sec_calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn both_failing_returns_secondary_error() {
        let fb = Fallback::new(failing_service("predictor"), failing_service("analytic"));
        let err = fb.query(&q(0, 1)).unwrap_err();
        assert_eq!(err.source(), "analytic");
        assert_eq!(fb.stats(), FallbackStats::default());
    }

    #[test]
    fn nested_fallback_chains_three_sources() {
        let (sim, _) = counting_service();
        let fb = Fallback::new(
            failing_service("predictor"),
            Fallback::new(failing_service("analytic"), sim),
        );
        let r = fb.query(&q(1, 3)).unwrap();
        assert_eq!(r.source, "counting");
    }
}
