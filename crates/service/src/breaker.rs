//! The circuit-breaker layer: stop hammering a source that keeps
//! failing.
//!
//! [`CircuitBreaker`] runs the classic three-state machine over a
//! sliding window of recent outcomes:
//!
//! * **Closed** — queries pass through; outcomes are recorded into a
//!   sliding window of the last [`BreakerConfig::window`] attempts.
//!   When the window holds at least
//!   [`BreakerConfig::failure_threshold`] failures, the breaker trips.
//! * **Open** — the next [`BreakerConfig::cooldown_rejections`] queries
//!   are rejected with [`ServiceError::CircuitOpen`] *without*
//!   consulting the inner service, giving it room to recover.
//! * **Half-open** — once the cooldown is spent, admitted queries are
//!   probes: the first recorded success closes the breaker (with a
//!   fresh window); the first recorded failure re-opens it.
//!
//! The cooldown is counted in *rejections*, not wall time — the same
//! deterministic simulated-time style as the retry layer's accounted
//! backoff. A count-based cooldown makes the state machine a pure
//! function of the outcome sequence it observes, which keeps
//! single-threaded chaos runs exactly reproducible. (Under a
//! multi-threaded [`crate::Batched`] fan-out the *interleaving* of
//! outcomes is scheduling-dependent, so breaker trips may differ run to
//! run — the layer-ordering rules in DESIGN.md §10 spell out when that
//! matters.)
//!
//! [`ServiceError::CircuitOpen`] is classified `Transient`: the breaker
//! half-opens after its cooldown, so a [`crate::Retry`] layer *outside*
//! the breaker can ride through an open period — each rejected retry
//! burns one cooldown step until a probe is admitted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Trip and recovery thresholds of a [`CircuitBreaker`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Size of the sliding outcome window consulted while closed.
    pub window: usize,
    /// Number of failures within the window that trips the breaker.
    pub failure_threshold: usize,
    /// Number of queries rejected while open before a half-open probe
    /// is admitted.
    pub cooldown_rejections: usize,
}

impl BreakerConfig {
    /// Trip after `failure_threshold` failures in a window of twice
    /// that size, with a cooldown of the same length.
    pub fn tripping_after(failure_threshold: usize) -> BreakerConfig {
        let t = failure_threshold.max(1);
        BreakerConfig {
            window: 2 * t,
            failure_threshold: t,
            cooldown_rejections: t,
        }
    }
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig::tripping_after(5)
    }
}

/// The observable position of a breaker's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitState {
    /// Queries pass through; outcomes feed the sliding window.
    Closed,
    /// Queries are rejected until the cooldown is spent.
    Open,
    /// Cooldown spent; admitted queries are recovery probes.
    HalfOpen,
}

impl std::fmt::Display for CircuitState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitState::Closed => write!(f, "closed"),
            CircuitState::Open => write!(f, "open"),
            CircuitState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// A snapshot of a [`CircuitBreaker`] layer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerStats {
    /// Current position of the state machine.
    pub state: CircuitState,
    /// Closed→Open and HalfOpen→Open transitions.
    pub opened: usize,
    /// Open→HalfOpen transitions (cooldowns spent).
    pub half_opened: usize,
    /// HalfOpen→Closed transitions (successful probes).
    pub closed: usize,
    /// Queries rejected with [`ServiceError::CircuitOpen`].
    pub rejected: usize,
}

impl Default for BreakerStats {
    fn default() -> BreakerStats {
        BreakerStats {
            state: CircuitState::Closed,
            opened: 0,
            half_opened: 0,
            closed: 0,
            rejected: 0,
        }
    }
}

/// The lock-guarded half of the machine: state plus the sliding window.
#[derive(Debug)]
enum Mode {
    Closed { window: VecDeque<bool> },
    Open { rejections_left: usize },
    HalfOpen,
}

#[derive(Debug)]
pub(crate) struct BreakerState {
    config: BreakerConfig,
    mode: Mutex<Mode>,
    opened: AtomicUsize,
    half_opened: AtomicUsize,
    closed: AtomicUsize,
    rejected: AtomicUsize,
}

impl BreakerState {
    fn new(config: BreakerConfig) -> BreakerState {
        assert!(config.window >= 1, "breaker window must be non-empty");
        assert!(
            (1..=config.window).contains(&config.failure_threshold),
            "failure threshold must fit inside the window"
        );
        BreakerState {
            config,
            mode: Mutex::new(Mode::Closed {
                window: VecDeque::with_capacity(config.window),
            }),
            opened: AtomicUsize::new(0),
            half_opened: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
        }
    }

    fn snapshot(&self) -> BreakerStats {
        let state = match &*self.mode.lock() {
            Mode::Closed { .. } => CircuitState::Closed,
            Mode::Open { .. } => CircuitState::Open,
            Mode::HalfOpen => CircuitState::HalfOpen,
        };
        BreakerStats {
            state,
            opened: self.opened.load(Ordering::Relaxed),
            half_opened: self.half_opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Admission decision: `Ok(())` admits the query, `Err(n)` rejects
    /// it with `n` cooldown rejections remaining. The inner call itself
    /// happens outside this lock.
    fn admit(&self) -> Result<(), u64> {
        let mut mode = self.mode.lock();
        match &mut *mode {
            Mode::Closed { .. } | Mode::HalfOpen => Ok(()),
            Mode::Open { rejections_left } => {
                if *rejections_left > 0 {
                    *rejections_left -= 1;
                    let remaining = *rejections_left as u64;
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    Err(remaining)
                } else {
                    *mode = Mode::HalfOpen;
                    self.half_opened.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
            }
        }
    }

    /// Feed one observed outcome back into the state machine.
    fn record(&self, ok: bool) {
        let mut mode = self.mode.lock();
        match &mut *mode {
            Mode::Closed { window } => {
                if window.len() == self.config.window {
                    window.pop_front();
                }
                window.push_back(!ok);
                let failures = window.iter().filter(|&&f| f).count();
                if failures >= self.config.failure_threshold {
                    *mode = Mode::Open {
                        rejections_left: self.config.cooldown_rejections,
                    };
                    self.opened.fetch_add(1, Ordering::Relaxed);
                }
            }
            Mode::HalfOpen => {
                if ok {
                    *mode = Mode::Closed {
                        window: VecDeque::with_capacity(self.config.window),
                    };
                    self.closed.fetch_add(1, Ordering::Relaxed);
                } else {
                    *mode = Mode::Open {
                        rejections_left: self.config.cooldown_rejections,
                    };
                    self.opened.fetch_add(1, Ordering::Relaxed);
                }
            }
            // the breaker tripped while this call was already in
            // flight; its outcome no longer moves the machine
            Mode::Open { .. } => {}
        }
    }
}

/// Shared view of a [`CircuitBreaker`] layer's counters, usable after
/// the layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct BreakerHandle(pub(crate) Arc<BreakerState>);

impl BreakerHandle {
    /// Counters (and current state) accumulated since the layer was
    /// built.
    pub fn stats(&self) -> BreakerStats {
        self.0.snapshot()
    }
}

/// The breaker's state machine as a standalone admission controller,
/// for gatekeepers that sit *in front of* a service rather than inside
/// its stack — the `predtop serve` daemon asks it before dispatching
/// each request and feeds the outcome back after. Same machine, same
/// counters, same determinism contract as the [`CircuitBreaker`]
/// middleware; the only difference is who calls the inner service.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    state: Arc<BreakerState>,
}

impl AdmissionControl {
    /// A fresh controller with the given thresholds, starting closed.
    pub fn new(config: BreakerConfig) -> AdmissionControl {
        AdmissionControl {
            state: Arc::new(BreakerState::new(config)),
        }
    }

    /// Admission decision for one request: `Ok(())` admits it (the
    /// caller must later [`record`](AdmissionControl::record) the
    /// outcome), `Err(n)` sheds it with `n` cooldown rejections left
    /// before a half-open probe is admitted.
    pub fn try_admit(&self) -> Result<(), u64> {
        self.state.admit()
    }

    /// Feed one admitted request's outcome back into the machine.
    pub fn record(&self, ok: bool) {
        self.state.record(ok);
    }

    /// Counters (and current state) accumulated since construction.
    pub fn stats(&self) -> BreakerStats {
        self.state.snapshot()
    }
}

/// Middleware that sheds load off a persistently failing service — see
/// the module docs for the state machine.
pub struct CircuitBreaker<S> {
    inner: S,
    state: Arc<BreakerState>,
}

impl<S> CircuitBreaker<S> {
    /// Wrap `inner` with the given thresholds, starting closed.
    pub fn new(inner: S, config: BreakerConfig) -> CircuitBreaker<S> {
        CircuitBreaker {
            inner,
            state: Arc::new(BreakerState::new(config)),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> BreakerHandle {
        BreakerHandle(self.state.clone())
    }

    /// Counters (and current state) accumulated since construction.
    pub fn stats(&self) -> BreakerStats {
        self.state.snapshot()
    }
}

impl<S: LatencyService> LatencyService for CircuitBreaker<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        if let Err(cooldown_remaining) = self.state.admit() {
            return Err(ServiceError::CircuitOpen {
                source: self.inner.name(),
                cooldown_remaining,
            });
        }
        let r = self.inner.query(q);
        self.state.record(r.is_ok());
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service};
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn q(i: usize) -> LatencyQuery {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 8;
        LatencyQuery::new(
            StageSpec::new(m, i, i + 1),
            MeshShape::new(1, 1),
            ParallelConfig::SERIAL,
        )
    }

    /// A service whose per-call outcomes follow a script.
    struct Scripted(Mutex<VecDeque<bool>>);

    impl Scripted {
        fn new(outcomes: &[bool]) -> Scripted {
            Scripted(Mutex::new(outcomes.iter().copied().collect()))
        }
    }

    impl LatencyService for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn query(&self, _q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
            if self.0.lock().pop_front().unwrap_or(true) {
                Ok(LatencyReply {
                    seconds: 1.0,
                    source: "scripted",
                })
            } else {
                Err(ServiceError::Unavailable {
                    source: "scripted",
                    reason: "scripted failure".into(),
                })
            }
        }
    }

    #[test]
    fn healthy_traffic_never_trips_the_breaker() {
        let (svc, _) = counting_service();
        let breaker = CircuitBreaker::new(svc, BreakerConfig::tripping_after(2));
        for i in 0..32 {
            assert!(breaker.query(&q(i % 8)).is_ok());
        }
        let s = breaker.stats();
        assert_eq!(s.state, CircuitState::Closed);
        assert_eq!(s.opened, 0);
        assert_eq!(s.rejected, 0);
    }

    #[test]
    fn threshold_failures_trip_the_breaker_open() {
        let breaker =
            CircuitBreaker::new(failing_service("dead"), BreakerConfig::tripping_after(3));
        for i in 0..3 {
            assert!(matches!(
                breaker.query(&q(i)),
                Err(ServiceError::Unavailable { .. })
            ));
        }
        let s = breaker.stats();
        assert_eq!(s.state, CircuitState::Open);
        assert_eq!(s.opened, 1);
    }

    #[test]
    fn open_breaker_rejects_without_consulting_inner() {
        let cfg = BreakerConfig {
            window: 2,
            failure_threshold: 1,
            cooldown_rejections: 4,
        };
        let breaker = CircuitBreaker::new(failing_service("dead"), cfg);
        breaker.query(&q(0)).unwrap_err(); // trips
        for k in 0..4 {
            match breaker.query(&q(0)).unwrap_err() {
                ServiceError::CircuitOpen {
                    cooldown_remaining, ..
                } => {
                    assert_eq!(cooldown_remaining, 3 - k as u64);
                }
                other => panic!("expected CircuitOpen, got {other}"),
            }
        }
        assert_eq!(breaker.stats().rejected, 4);
    }

    #[test]
    fn successful_probe_closes_the_breaker() {
        // fail once (trips, threshold 1), then recover
        let svc = Scripted::new(&[false]);
        let cfg = BreakerConfig {
            window: 2,
            failure_threshold: 1,
            cooldown_rejections: 2,
        };
        let breaker = CircuitBreaker::new(svc, cfg);
        breaker.query(&q(0)).unwrap_err(); // Closed → Open
        breaker.query(&q(0)).unwrap_err(); // rejected (1 left)
        breaker.query(&q(0)).unwrap_err(); // rejected (0 left)
        let r = breaker.query(&q(0)); // half-open probe, script says ok
        assert!(r.is_ok());
        let s = breaker.stats();
        assert_eq!(s.state, CircuitState::Closed);
        assert_eq!(s.opened, 1);
        assert_eq!(s.half_opened, 1);
        assert_eq!(s.closed, 1);
        assert_eq!(s.rejected, 2);
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let cfg = BreakerConfig {
            window: 2,
            failure_threshold: 1,
            cooldown_rejections: 1,
        };
        let breaker = CircuitBreaker::new(failing_service("dead"), cfg);
        breaker.query(&q(0)).unwrap_err(); // trips
        breaker.query(&q(0)).unwrap_err(); // rejected
        breaker.query(&q(0)).unwrap_err(); // probe fails → reopen
        let s = breaker.stats();
        assert_eq!(s.state, CircuitState::Open);
        assert_eq!(s.opened, 2);
        assert_eq!(s.half_opened, 1);
        assert_eq!(s.closed, 0);
    }

    #[test]
    fn breaker_rejections_are_transient_for_the_retry_layer() {
        let cfg = BreakerConfig {
            window: 2,
            failure_threshold: 1,
            cooldown_rejections: 3,
        };
        let breaker = CircuitBreaker::new(failing_service("dead"), cfg);
        breaker.query(&q(0)).unwrap_err();
        let err = breaker.query(&q(0)).unwrap_err();
        assert!(matches!(err, ServiceError::CircuitOpen { .. }));
        assert!(err.is_transient(), "retry can ride through an open period");
    }

    #[test]
    fn closing_resets_the_sliding_window() {
        // threshold 2 in a window of 3: fail, fail (trip), cooldown 1,
        // probe ok (close + fresh window), then one failure must NOT
        // re-trip because the old failures were discarded
        let svc = Scripted::new(&[false, false, true, false, true, true]);
        let cfg = BreakerConfig {
            window: 3,
            failure_threshold: 2,
            cooldown_rejections: 1,
        };
        let breaker = CircuitBreaker::new(svc, cfg);
        breaker.query(&q(0)).unwrap_err(); // fail 1
        breaker.query(&q(0)).unwrap_err(); // fail 2 → Open
        breaker.query(&q(0)).unwrap_err(); // rejected
        assert!(breaker.query(&q(0)).is_ok()); // probe ok → Closed, window reset
        breaker.query(&q(0)).unwrap_err(); // one fresh failure
        assert_eq!(breaker.stats().state, CircuitState::Closed);
        assert!(breaker.query(&q(0)).is_ok());
    }

    #[test]
    fn admission_control_runs_the_same_machine_without_a_stack() {
        let ac = AdmissionControl::new(BreakerConfig {
            window: 2,
            failure_threshold: 2,
            cooldown_rejections: 2,
        });
        // healthy traffic passes
        ac.try_admit().unwrap();
        ac.record(true);
        // two failures in the window trip it
        ac.try_admit().unwrap();
        ac.record(false);
        ac.try_admit().unwrap();
        ac.record(false);
        assert_eq!(ac.stats().state, CircuitState::Open);
        // cooldown counts down in rejections
        assert_eq!(ac.try_admit(), Err(1));
        assert_eq!(ac.try_admit(), Err(0));
        // then a probe is admitted; success closes the machine
        ac.try_admit().unwrap();
        ac.record(true);
        let s = ac.stats();
        assert_eq!(s.state, CircuitState::Closed);
        assert_eq!(s.opened, 1);
        assert_eq!(s.half_opened, 1);
        assert_eq!(s.closed, 1);
        assert_eq!(s.rejected, 2);
    }

    #[test]
    fn admission_control_clones_share_one_machine() {
        let ac = AdmissionControl::new(BreakerConfig {
            window: 2,
            failure_threshold: 1,
            cooldown_rejections: 8,
        });
        let other = ac.clone();
        ac.try_admit().unwrap();
        ac.record(false); // trips
        assert!(other.try_admit().is_err(), "clone observes the trip");
        assert_eq!(other.stats().rejected, 1);
    }
}
