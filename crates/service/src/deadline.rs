//! The deadline layer: per-query and per-batch wall-clock budgets.
//!
//! [`Deadline`] measures how long the inner service takes to answer and
//! converts overruns into structured
//! [`ServiceError::DeadlineExceeded`] errors instead of letting a slow
//! source (a compiling simulator, a [`crate::FaultInject`] latency
//! spike) stall the whole search unboundedly.
//!
//! Two budgets, one placement rule each:
//!
//! * **per-query** — enforced in [`LatencyService::query`], so it works
//!   *inside* a [`crate::Batched`] fan-out (each worker polices its own
//!   query);
//! * **per-batch** — enforced in [`LatencyService::query_batch`], which
//!   only fires when this layer sits *outside* the [`crate::Batched`]
//!   layer (inside one, workers call `query`, never `query_batch`).
//!   Once the batch budget is spent, every remaining query in the batch
//!   fails fast without consulting the inner service.
//!
//! Edge semantics are exact, not approximate: a budget of `0` rejects
//! *before* consulting the inner service (a spent budget buys nothing),
//! and an unbounded budget (`None`) never manufactures an error — the
//! two properties the proptest below pins down for all inputs.
//!
//! `DeadlineExceeded` is classified `Permanent` (see
//! [`ServiceError::retryability`]): the budget is gone, so an immediate
//! retry of the same query would be born over-budget. Recovery paths are
//! a [`crate::Fallback`] to a cheaper source, or a caller-level rerun
//! with a fresh budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Wall-clock budgets of a [`Deadline`] layer. `None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeadlinePolicy {
    /// Budget for one `query` call, in seconds.
    pub per_query_seconds: Option<f64>,
    /// Budget for one `query_batch` call, in seconds.
    pub per_batch_seconds: Option<f64>,
}

impl DeadlinePolicy {
    /// A per-query budget only.
    pub fn per_query(seconds: f64) -> DeadlinePolicy {
        DeadlinePolicy {
            per_query_seconds: Some(seconds),
            per_batch_seconds: None,
        }
    }

    /// A per-batch budget only.
    pub fn per_batch(seconds: f64) -> DeadlinePolicy {
        DeadlinePolicy {
            per_query_seconds: None,
            per_batch_seconds: Some(seconds),
        }
    }
}

/// A snapshot of a [`Deadline`] layer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeadlineStats {
    /// Queries that individually overran (or were born over) the
    /// per-query budget.
    pub query_overruns: usize,
    /// Queries rejected because their enclosing batch had already spent
    /// its budget.
    pub batch_overruns: usize,
    /// Queries served within budget.
    pub served: usize,
}

#[derive(Debug, Default)]
pub(crate) struct DeadlineState {
    query_overruns: AtomicUsize,
    batch_overruns: AtomicUsize,
    served: AtomicUsize,
}

impl DeadlineState {
    fn snapshot(&self) -> DeadlineStats {
        DeadlineStats {
            query_overruns: self.query_overruns.load(Ordering::Relaxed),
            batch_overruns: self.batch_overruns.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
        }
    }
}

/// Shared view of a [`Deadline`] layer's counters, usable after the
/// layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct DeadlineHandle(pub(crate) Arc<DeadlineState>);

impl DeadlineHandle {
    /// Counters accumulated since the layer was built.
    pub fn stats(&self) -> DeadlineStats {
        self.0.snapshot()
    }
}

/// Middleware that polices wall-clock budgets — see the module docs for
/// the two budget kinds and their placement rules.
pub struct Deadline<S> {
    inner: S,
    policy: DeadlinePolicy,
    state: Arc<DeadlineState>,
}

impl<S> Deadline<S> {
    /// Wrap `inner` with the given budgets and zeroed counters.
    pub fn new(inner: S, policy: DeadlinePolicy) -> Deadline<S> {
        if let Some(b) = policy.per_query_seconds {
            assert!(b >= 0.0, "per-query budget must be non-negative");
        }
        if let Some(b) = policy.per_batch_seconds {
            assert!(b >= 0.0, "per-batch budget must be non-negative");
        }
        Deadline {
            inner,
            policy,
            state: Arc::new(DeadlineState::default()),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The budgets this layer enforces.
    pub fn policy(&self) -> DeadlinePolicy {
        self.policy
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> DeadlineHandle {
        DeadlineHandle(self.state.clone())
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> DeadlineStats {
        self.state.snapshot()
    }
}

impl<S: LatencyService> Deadline<S> {
    /// One budgeted query; `budget` is whichever budget applies at this
    /// call site (the per-query one, or a batch's remaining allowance).
    fn query_within(
        &self,
        q: &LatencyQuery,
        budget: Option<f64>,
    ) -> (Result<LatencyReply, ServiceError>, f64) {
        let Some(budget) = budget else {
            let r = self.inner.query(q);
            if r.is_ok() {
                self.state.served.fetch_add(1, Ordering::Relaxed);
            }
            return (r, 0.0);
        };
        if budget <= 0.0 {
            self.state.query_overruns.fetch_add(1, Ordering::Relaxed);
            return (
                Err(ServiceError::DeadlineExceeded {
                    source: self.inner.name(),
                    budget_seconds: budget,
                    elapsed_seconds: 0.0,
                }),
                0.0,
            );
        }
        let started = Instant::now();
        let r = self.inner.query(q);
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > budget {
            self.state.query_overruns.fetch_add(1, Ordering::Relaxed);
            return (
                Err(ServiceError::DeadlineExceeded {
                    source: self.inner.name(),
                    budget_seconds: budget,
                    elapsed_seconds: elapsed,
                }),
                elapsed,
            );
        }
        if r.is_ok() {
            self.state.served.fetch_add(1, Ordering::Relaxed);
        }
        (r, elapsed)
    }
}

impl<S: LatencyService> LatencyService for Deadline<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        self.query_within(q, self.policy.per_query_seconds).0
    }

    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        let Some(batch_budget) = self.policy.per_batch_seconds else {
            return qs.iter().map(|q| self.query(q)).collect();
        };
        let mut spent = 0.0f64;
        qs.iter()
            .map(|q| {
                let remaining = batch_budget - spent;
                if remaining <= 0.0 {
                    self.state.batch_overruns.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::DeadlineExceeded {
                        source: self.inner.name(),
                        budget_seconds: batch_budget,
                        elapsed_seconds: spent,
                    });
                }
                // the per-query budget still applies if tighter than the
                // batch's remaining allowance
                let budget = match self.policy.per_query_seconds {
                    Some(pq) => Some(pq.min(remaining)),
                    None => Some(remaining),
                };
                let (r, elapsed) = self.query_within(q, budget);
                spent += elapsed;
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::counting_service;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn queries(n: usize) -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = n.max(1);
        (0..n)
            .map(|i| {
                LatencyQuery::new(
                    StageSpec::new(m, i, i + 1),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                )
            })
            .collect()
    }

    /// A service that stalls for a fixed duration before answering.
    struct SlowService(f64);

    impl LatencyService for SlowService {
        fn name(&self) -> &'static str {
            "slow"
        }
        fn query(&self, _q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
            std::thread::sleep(std::time::Duration::from_secs_f64(self.0));
            Ok(LatencyReply {
                seconds: 1.0,
                source: "slow",
            })
        }
    }

    #[test]
    fn zero_budget_rejects_before_consulting_inner() {
        let (svc, calls) = counting_service();
        let layer = Deadline::new(svc, DeadlinePolicy::per_query(0.0));
        let err = layer.query(&queries(1)[0]).unwrap_err();
        assert!(matches!(err, ServiceError::DeadlineExceeded { .. }));
        assert!(!err.is_transient(), "a spent budget is permanent");
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(layer.stats().query_overruns, 1);
    }

    #[test]
    fn slow_queries_overrun_a_tight_budget() {
        let layer = Deadline::new(SlowService(0.01), DeadlinePolicy::per_query(0.001));
        let err = layer.query(&queries(1)[0]).unwrap_err();
        match err {
            ServiceError::DeadlineExceeded {
                budget_seconds,
                elapsed_seconds,
                ..
            } => {
                assert_eq!(budget_seconds, 0.001);
                assert!(elapsed_seconds > budget_seconds);
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
    }

    #[test]
    fn exhausted_batch_budget_fails_the_tail_fast() {
        let qs = queries(6);
        let (svc, calls) = counting_service();
        let layer = Deadline::new(svc, DeadlinePolicy::per_batch(0.0));
        let replies = layer.query_batch(&qs);
        assert!(replies.iter().all(|r| r.is_err()));
        assert_eq!(calls.load(Ordering::Relaxed), 0, "budget 0 consults nobody");
        assert_eq!(
            layer.stats().batch_overruns + layer.stats().query_overruns,
            6
        );
    }

    #[test]
    fn generous_batch_budget_serves_everything() {
        let qs = queries(6);
        let (svc, _) = counting_service();
        let layer = Deadline::new(svc, DeadlinePolicy::per_batch(3600.0));
        let replies = layer.query_batch(&qs);
        assert!(replies.iter().all(|r| r.is_ok()));
        assert_eq!(layer.stats().served, 6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Budget 0 always errors — for any query, on both paths.
            #[test]
            fn prop_zero_budget_always_errors(n in 1usize..6, batch in any::<bool>()) {
                let qs = queries(n);
                let (svc, _) = counting_service();
                let policy = if batch {
                    DeadlinePolicy::per_batch(0.0)
                } else {
                    DeadlinePolicy::per_query(0.0)
                };
                let layer = Deadline::new(svc, policy);
                if batch {
                    for r in layer.query_batch(&qs) {
                        prop_assert!(matches!(r, Err(ServiceError::DeadlineExceeded { .. })));
                    }
                } else {
                    for q in &qs {
                        prop_assert!(matches!(
                            layer.query(q),
                            Err(ServiceError::DeadlineExceeded { .. })
                        ));
                    }
                }
            }

            /// An unbounded budget never manufactures an error.
            #[test]
            fn prop_unbounded_budget_never_errors(n in 1usize..6) {
                let qs = queries(n);
                let (svc, _) = counting_service();
                let layer = Deadline::new(svc, DeadlinePolicy::default());
                for q in &qs {
                    prop_assert!(layer.query(q).is_ok());
                }
                for r in layer.query_batch(&qs) {
                    prop_assert!(r.is_ok());
                }
                prop_assert_eq!(layer.stats().query_overruns, 0);
                prop_assert_eq!(layer.stats().batch_overruns, 0);
            }

            /// An infinite budget behaves like an unbounded one.
            #[test]
            fn prop_infinite_budget_never_errors(n in 1usize..6) {
                let qs = queries(n);
                let (svc, _) = counting_service();
                let layer = Deadline::new(
                    svc,
                    DeadlinePolicy {
                        per_query_seconds: Some(f64::INFINITY),
                        per_batch_seconds: Some(f64::INFINITY),
                    },
                );
                for r in layer.query_batch(&qs) {
                    prop_assert!(r.is_ok());
                }
            }
        }
    }
}
