//! [`Persist`]: the disk tier of the memoization hierarchy.
//!
//! A [`crate::Memoize`] layer deduplicates queries *within* one run;
//! this layer extends the same idea *across* runs by backing the stack
//! with a content-addressed [`predtop_store::Store`]:
//!
//! * on a query, the layer first consults the store — a **disk hit**
//!   returns the persisted reply without touching the inner service, so
//!   the first run's simulator bill is never paid twice;
//! * on a disk miss, the inner service computes the reply and the layer
//!   **write-behinds** it (an atomic tempfile + rename `put`), warming
//!   the store for the next run;
//! * a damaged object (truncated file, flipped bit — any
//!   [`predtop_store::StoreError`] classified as corruption) or an
//!   undecodable payload is treated as a miss and *repaired in place*
//!   by the recompute-and-rewrite path, counted in
//!   [`PersistStats::corrupt_recovered`].
//!
//! **Keying.** Objects are addressed by the digest of a *namespace*
//! string plus the query's
//! [`StructuralDescriptor::canonical_bytes`] — not by
//! [`predtop_parallel::StructuralKey`] ids, which are dense
//! first-intern-order numbers and differ between runs. The namespace
//! must encode everything the latency value depends on *besides* the
//! descriptor — conventionally `"<source>:<platform>:<seed>"` — so a
//! store directory can be shared across platforms and chaos seeds
//! without cross-contamination.
//!
//! **Placement** (lints `P2106`/`P2107`/`P2203` in `predtop-analyze`):
//! directly **inside [`crate::Memoize`]** — memory absorbs in-run
//! repeats, disk absorbs across-run repeats, and only first-in-run
//! misses reach the inner source — and **inside [`crate::Batched`]** so
//! the fan-out still parallelizes disk misses.
//!
//! Determinism contract: a disk hit returns bit-identical `seconds` to
//! the run that wrote it (payloads are IEEE-754 bit patterns), so warm
//! and cold searches choose bit-identical plans. Only
//! [`LatencyReply::source`] attribution may differ: replies whose
//! recorded source is not a known static name come back as `"store"`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use predtop_parallel::StructuralDescriptor;
use predtop_store::{ByteReader, ByteWriter, ObjectKind, Store};

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Payload encoding version for latency objects.
const LATENCY_ENCODING_VERSION: u8 = 1;

/// Known reply sources, restored verbatim on decode; anything else
/// comes back attributed to `"store"`.
const KNOWN_SOURCES: [&str; 4] = ["simulator", "analytic", "predictor", "provider"];

/// Counters of one [`Persist`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Queries served from the store without consulting the inner
    /// service.
    pub disk_hits: usize,
    /// Queries that fell through to the inner service.
    pub disk_misses: usize,
    /// Replies written behind to the store.
    pub writes: usize,
    /// Write-behind attempts the store rejected (the reply was still
    /// served; the object is simply not persisted).
    pub write_errors: usize,
    /// Damaged or undecodable objects repaired by recompute-and-rewrite.
    pub corrupt_recovered: usize,
}

impl PersistStats {
    /// Store lookups observed (hits + misses).
    pub fn lookups(&self) -> usize {
        self.disk_hits + self.disk_misses
    }

    /// Fraction of lookups served from disk (0 when idle).
    pub fn disk_served_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.disk_hits as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug)]
pub(crate) struct PersistState {
    store: Arc<Store>,
    namespace: String,
    disk_hits: AtomicUsize,
    disk_misses: AtomicUsize,
    writes: AtomicUsize,
    write_errors: AtomicUsize,
    corrupt_recovered: AtomicUsize,
}

impl PersistState {
    fn snapshot(&self) -> PersistStats {
        PersistStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            corrupt_recovered: self.corrupt_recovered.load(Ordering::Relaxed),
        }
    }

    /// Store key for one query: length-prefixed namespace, then the
    /// descriptor's canonical bytes.
    fn key_for(&self, q: &LatencyQuery) -> Vec<u8> {
        let desc = StructuralDescriptor::of(&q.stage, q.mesh, q.config);
        let mut w = ByteWriter::new();
        w.str(&self.namespace);
        w.raw(&desc.canonical_bytes());
        w.into_bytes()
    }
}

/// Shared view of a [`Persist`] layer's counters, usable after the
/// layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct PersistHandle(pub(crate) Arc<PersistState>);

impl PersistHandle {
    /// Counters accumulated since the layer was built.
    pub fn stats(&self) -> PersistStats {
        self.0.snapshot()
    }

    /// The namespace this layer keys under.
    pub fn namespace(&self) -> &str {
        &self.0.namespace
    }
}

/// Middleware that backs the stack with a persistent object store —
/// see the module docs for keying, placement, and the determinism
/// contract.
pub struct Persist<S> {
    inner: S,
    state: Arc<PersistState>,
}

impl<S> Persist<S> {
    /// Wrap `inner`, keying objects under `namespace` in `store`.
    pub fn new(inner: S, store: Arc<Store>, namespace: impl Into<String>) -> Persist<S> {
        Persist {
            inner,
            state: Arc::new(PersistState {
                store,
                namespace: namespace.into(),
                disk_hits: AtomicUsize::new(0),
                disk_misses: AtomicUsize::new(0),
                writes: AtomicUsize::new(0),
                write_errors: AtomicUsize::new(0),
                corrupt_recovered: AtomicUsize::new(0),
            }),
        }
    }

    /// Shared handle to this layer's counters.
    pub fn handle(&self) -> PersistHandle {
        PersistHandle(self.state.clone())
    }
}

/// Canonical latency-object payload: version byte, the reply's exact
/// `f64` bit pattern, and its source attribution string.
fn encode_reply(reply: &LatencyReply) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(LATENCY_ENCODING_VERSION);
    w.f64_bits(reply.seconds);
    w.str(reply.source);
    w.into_bytes()
}

/// Decode a latency payload; `None` on any structural problem (the
/// caller treats it as corruption and rewrites).
fn decode_reply(payload: &[u8]) -> Option<LatencyReply> {
    let mut r = ByteReader::new(payload);
    if r.u8("latency version").ok()? != LATENCY_ENCODING_VERSION {
        return None;
    }
    let seconds = r.f64_bits("latency seconds").ok()?;
    let source = r.str("latency source").ok()?;
    r.finish().ok()?;
    let source = KNOWN_SOURCES
        .iter()
        .copied()
        .find(|k| *k == source)
        .unwrap_or("store");
    Some(LatencyReply { seconds, source })
}

impl<S: LatencyService> LatencyService for Persist<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let key = self.state.key_for(q);
        let mut damaged = false;
        match self.state.store.get(ObjectKind::Latency, &key) {
            Ok(Some(payload)) => match decode_reply(&payload) {
                Some(reply) => {
                    self.state.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(reply);
                }
                None => damaged = true,
            },
            Ok(None) => {}
            Err(e) if e.is_corruption() => damaged = true,
            // The store itself is unreachable (I/O): serve from the
            // inner source and try the write-behind anyway.
            Err(_) => {}
        }
        let reply = self.inner.query(q)?;
        self.state.disk_misses.fetch_add(1, Ordering::Relaxed);
        if damaged {
            self.state.corrupt_recovered.fetch_add(1, Ordering::Relaxed);
        }
        match self
            .state
            .store
            .put(ObjectKind::Latency, &key, &encode_reply(&reply))
        {
            Ok(_) => {
                self.state.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.state.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::counting_service;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};
    use std::sync::atomic::Ordering as AtomicOrdering;

    fn store_dir(name: &str) -> Arc<Store> {
        let dir = std::env::temp_dir().join(format!(
            "predtop-persist-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Store::open(dir).unwrap())
    }

    fn queries(n: usize) -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = n;
        (0..n)
            .map(|i| {
                LatencyQuery::new(
                    StageSpec::new(m, i, i + 1),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                )
            })
            .collect()
    }

    #[test]
    fn cold_run_writes_warm_run_serves_from_disk() {
        let store = store_dir("warm");
        let qs = queries(6);

        // Cold: every structural class misses disk and is written.
        let (svc, calls) = counting_service();
        let cold = Persist::new(svc, store.clone(), "test:sim:0");
        let cold_replies: Vec<_> = qs.iter().map(|q| cold.query(q).unwrap()).collect();
        let cold_stats = cold.handle().stats();
        // six 1-layer windows: embedding, 4 isomorphic interior, head —
        // interior windows share one structural key, so 3 distinct
        // objects absorb the other 3 queries as disk hits already.
        assert_eq!(cold_stats.disk_misses, 3);
        assert_eq!(cold_stats.disk_hits, 3);
        assert_eq!(cold_stats.writes, 3);
        assert_eq!(calls.load(AtomicOrdering::Relaxed), 3);

        // Warm: a fresh layer over the same store dir serves everything
        // from disk, bit-identically, without touching the inner source.
        let (svc2, calls2) = counting_service();
        let warm = Persist::new(svc2, store, "test:sim:0");
        let warm_replies: Vec<_> = qs.iter().map(|q| warm.query(q).unwrap()).collect();
        let warm_stats = warm.handle().stats();
        assert_eq!(warm_stats.disk_hits, 6);
        assert_eq!(warm_stats.disk_misses, 0);
        assert_eq!(calls2.load(AtomicOrdering::Relaxed), 0);
        assert!((warm_stats.disk_served_rate() - 1.0).abs() < f64::EPSILON);
        for (c, w) in cold_replies.iter().zip(&warm_replies) {
            assert_eq!(c.seconds.to_bits(), w.seconds.to_bits());
        }
    }

    #[test]
    fn namespaces_do_not_cross_contaminate() {
        let store = store_dir("ns");
        let qs = queries(2);
        let (svc, _) = counting_service();
        let a = Persist::new(svc, store.clone(), "platform-a");
        for q in &qs {
            a.query(q).unwrap();
        }
        // Same store, different namespace: everything misses.
        let (svc2, calls2) = counting_service();
        let b = Persist::new(svc2, store, "platform-b");
        for q in &qs {
            b.query(q).unwrap();
        }
        assert_eq!(b.handle().stats().disk_hits, 0);
        assert!(calls2.load(AtomicOrdering::Relaxed) > 0);
    }

    #[test]
    fn corrupt_object_recovers_by_recompute_and_rewrite() {
        let store = store_dir("corrupt");
        let qs = queries(1);
        let (svc, _) = counting_service();
        let layer = Persist::new(svc, store.clone(), "ns");
        let original = layer.query(&qs[0]).unwrap();

        // Truncate every loose object mid-file.
        let objects = store.root().join("objects");
        let mut mangled = 0;
        for fan in std::fs::read_dir(&objects).unwrap() {
            let fan = fan.unwrap().path();
            if !fan.is_dir() {
                continue;
            }
            for f in std::fs::read_dir(&fan).unwrap() {
                let p = f.unwrap().path();
                let bytes = std::fs::read(&p).unwrap();
                std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
                mangled += 1;
            }
        }
        assert!(mangled > 0);

        // A fresh layer re-queries: the damage is detected, the value
        // recomputed bit-identically, and the object rewritten.
        let (svc2, _) = counting_service();
        let repaired = Persist::new(svc2, store.clone(), "ns");
        let reply = repaired.query(&qs[0]).unwrap();
        assert_eq!(reply.seconds.to_bits(), original.seconds.to_bits());
        let stats = repaired.handle().stats();
        assert_eq!(stats.corrupt_recovered, 1);
        assert_eq!(stats.writes, 1);
        assert!(store.verify().unwrap().is_clean());

        // And the rewrite really stuck: next layer hits disk.
        let (svc3, calls3) = counting_service();
        let warm = Persist::new(svc3, store, "ns");
        warm.query(&qs[0]).unwrap();
        assert_eq!(warm.handle().stats().disk_hits, 1);
        assert_eq!(calls3.load(AtomicOrdering::Relaxed), 0);
    }

    #[test]
    fn unknown_sources_come_back_as_store() {
        let reply = LatencyReply {
            seconds: 1.25,
            source: "counting",
        };
        let decoded = decode_reply(&encode_reply(&reply)).unwrap();
        assert_eq!(decoded.seconds.to_bits(), reply.seconds.to_bits());
        assert_eq!(decoded.source, "store");
        let sim = LatencyReply {
            seconds: 0.5,
            source: "simulator",
        };
        assert_eq!(
            decode_reply(&encode_reply(&sim)).unwrap().source,
            "simulator"
        );
    }

    #[test]
    fn errors_are_not_persisted() {
        let store = store_dir("errors");
        let qs = queries(1);
        let failing = crate::bridge::tests::failing_service("predictor");
        let layer = Persist::new(failing, store, "ns");
        assert!(layer.query(&qs[0]).is_err());
        let stats = layer.handle().stats();
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.disk_misses, 0, "an error is not a served miss");
    }
}
