//! Per-layer accounting of one assembled stack, snapshotted from its
//! [`StackHandles`].
//!
//! [`ServiceReport`] used to live in `predtop-core` next to the search
//! engine, but every consumer of the stack wants the same snapshot —
//! the CLI summary, the search outcome, and the wire protocol's `Stats`
//! reply — so it now lives here, beside the handles it reads, and
//! exposes its installed layers uniformly through the [`Ledger`] trait
//! via [`ServiceReport::ledgers`].

use crate::batched::BatchStats;
use crate::breaker::BreakerStats;
use crate::builder::StackHandles;
use crate::deadline::DeadlineStats;
use crate::fallback::FallbackStats;
use crate::fault::FaultStats;
use crate::instrument::ServiceMetrics;
use crate::ledger::Ledger;
use crate::persist::PersistStats;
use crate::retry::RetryStats;
use predtop_parallel::{CacheStats, InternStats};

/// Accounting of what the service stack did during one search, built
/// from the stack's [`StackHandles`]. Every field mirrors one optional
/// middleware layer.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Hit/miss counters of the `Memoize` layer, if installed.
    pub cache: Option<CacheStats>,
    /// Lookup/distinct counters of the structural interner, when the
    /// `Memoize` layer keys on structural equivalence classes
    /// (`ServiceBuilder::memoize_structural`). `distinct` is the number
    /// of genuinely different sub-problems the search contained;
    /// `lookups − distinct` is the sharing a raw-keyed cache would miss.
    pub interner: Option<InternStats>,
    /// Chunked-dispatch counters of the `Batched` layer, if installed:
    /// how many batches fanned out vs. ran inline, and how coarse the
    /// worker chunks were.
    pub batch: Option<BatchStats>,
    /// Query/batch/error counters and deterministic latency accounting
    /// of the `Instrumented` layer, if installed.
    pub metrics: Option<ServiceMetrics>,
    /// Primary/secondary attribution of the `Fallback` layer, if
    /// installed.
    pub fallback: Option<FallbackStats>,
    /// Injection counters of the `FaultInject` layer, if installed.
    pub fault: Option<FaultStats>,
    /// Attempt accounting of the `Retry` layer, if installed.
    pub retry: Option<RetryStats>,
    /// Overrun counters of the `Deadline` layer, if installed.
    pub deadline: Option<DeadlineStats>,
    /// State-transition counters of the `CircuitBreaker` layer, if
    /// installed.
    pub breaker: Option<BreakerStats>,
    /// Disk hit/miss/write accounting of the `Persist` layer, if
    /// installed: how much of the memoize tier's miss traffic the
    /// on-disk store absorbed, and what was written behind for the next
    /// run.
    pub persist: Option<PersistStats>,
}

impl ServiceReport {
    /// Snapshot every installed layer's counters.
    pub fn from_handles(h: &StackHandles) -> ServiceReport {
        ServiceReport {
            cache: h.cache.as_ref().map(|c| c.stats()),
            interner: h.interner.as_ref().map(|i| i.stats()),
            batch: h.batch.as_ref().map(|b| b.stats()),
            metrics: h.metrics.as_ref().map(|m| m.metrics()),
            fallback: h.fallback.as_ref().map(|f| f.stats()),
            fault: h.fault.as_ref().map(|f| f.stats()),
            retry: h.retry.as_ref().map(|r| r.stats()),
            deadline: h.deadline.as_ref().map(|d| d.stats()),
            breaker: h.breaker.as_ref().map(|b| b.stats()),
            persist: h.persist.as_ref().map(|p| p.stats()),
        }
    }

    /// True when at least one observable layer was installed.
    pub fn any_installed(&self) -> bool {
        self.cache.is_some()
            || self.interner.is_some()
            || self.batch.is_some()
            || self.metrics.is_some()
            || self.fallback.is_some()
            || self.fault.is_some()
            || self.retry.is_some()
            || self.deadline.is_some()
            || self.breaker.is_some()
            || self.persist.is_some()
    }

    /// Every installed ledger as its shared render surface, in the
    /// report's canonical display order (cache, interner, persist,
    /// dispatch, service metrics, fallback, fault, retry, deadline,
    /// breaker). The CLI prints `summary()` of each; the wire `Stats`
    /// reply ships `fields()` of each.
    pub fn ledgers(&self) -> Vec<&dyn Ledger> {
        let mut out: Vec<&dyn Ledger> = Vec::new();
        if let Some(c) = &self.cache {
            out.push(c);
        }
        if let Some(i) = &self.interner {
            out.push(i);
        }
        if let Some(p) = &self.persist {
            out.push(p);
        }
        if let Some(b) = &self.batch {
            out.push(b);
        }
        if let Some(m) = &self.metrics {
            out.push(m);
        }
        if let Some(f) = &self.fallback {
            out.push(f);
        }
        if let Some(f) = &self.fault {
            out.push(f);
        }
        if let Some(r) = &self.retry {
            out.push(r);
        }
        if let Some(d) = &self.deadline {
            out.push(d);
        }
        if let Some(b) = &self.breaker {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_has_no_ledgers() {
        let r = ServiceReport::default();
        assert!(!r.any_installed());
        assert!(r.ledgers().is_empty());
    }

    #[test]
    fn installed_layers_surface_in_order() {
        let r = ServiceReport {
            cache: Some(CacheStats { hits: 1, misses: 2 }),
            persist: Some(PersistStats::default()),
            breaker: Some(BreakerStats::default()),
            ..ServiceReport::default()
        };
        assert!(r.any_installed());
        let names: Vec<&str> = r.ledgers().iter().map(|l| l.ledger_name()).collect();
        assert_eq!(names, vec!["memoize", "store", "breaker"]);
    }
}
