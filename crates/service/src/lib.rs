//! # predtop-service
//!
//! The composable latency-service layer: one [`LatencyService`] trait
//! that every latency source implements — the ground-truth simulator,
//! the analytic white-box model, the trained gray-box predictor — plus
//! tower-style middleware layers that any source can wear:
//!
//! * [`Memoize`] — sharded per-query memoization with hit/miss
//!   [`CacheStats`], generalizing the old `parallel::cache`
//!   `CachedProvider`;
//! * [`Persist`] — the disk tier under [`Memoize`]: replies are served
//!   from (and write-behind into) a content-addressed
//!   `predtop-store` directory, keyed by structural descriptor plus a
//!   namespace, so a second run starts warm;
//! * [`Batched`] — evaluates whole query batches in one deterministic
//!   `predtop-runtime` fan-out (`par_map_with`), so the plan-search
//!   engine's candidate table is bit-identical at any thread count;
//! * [`Instrumented`] — per-layer query/batch/error counters plus a
//!   deterministic accounting of the latency-seconds the stack served;
//! * [`Fallback`] — graceful degradation between sources (predictor →
//!   analytic → simulator), with the source that actually answered
//!   recorded on every [`LatencyReply`];
//! * [`FaultInject`] — deterministic hash-seeded chaos (injected
//!   transient errors and latency spikes) for resilience drills;
//! * [`Retry`] — bounded re-attempts of transient failures with
//!   deterministic accounted exponential backoff;
//! * [`Deadline`] — per-query and per-batch wall-clock budgets that
//!   convert overruns into structured [`ServiceError::DeadlineExceeded`];
//! * [`CircuitBreaker`] — a closed/open/half-open state machine over a
//!   sliding failure window that sheds load off a failing source.
//!
//! Failures speak one structured vocabulary: every [`ServiceError`]
//! variant carries the source it is attributed to and a fixed
//! [`Retryability`] classification that the fault-tolerance layers (and
//! the CLI) dispatch on.
//!
//! Stacks are assembled with [`ServiceBuilder`], which keeps shared
//! [`StackHandles`] to each layer's counters so outcomes (e.g.
//! `predtop-core`'s `SearchOutcome`) can surface cache and fallback
//! accounting without holding the stack itself.
//!
//! Determinism contract: no layer may change the *value* a query
//! resolves to — only how it is computed (cached, fanned out, counted,
//! or served by a stand-in source). The inter-stage DP therefore chooses
//! bit-identical plans through any stack built from these layers.
//!
//! Bridges to the pre-service world: [`ProviderService`] lifts any
//! `predtop_parallel::StageLatencyProvider` into a named service, and
//! [`AsProvider`] projects a service back down for APIs (like
//! `PipelinePlan::latency`) that still speak the provider trait.
//!
//! The serving surface sits on top: [`api`] is the versioned
//! request/response vocabulary every frontend (CLI, wire protocol,
//! tests) shares; [`wire`] frames it over TCP and Unix sockets for the
//! `predtop serve` daemon, with [`AdmissionControl`] exposing the
//! breaker's machine as a standalone gatekeeper; [`ServiceReport`]
//! snapshots a stack's installed layers, each rendered exactly once
//! through the shared [`Ledger`] trait for the CLI text summary, the
//! flat JSON object, and the wire `Stats` reply alike.

#![warn(missing_docs)]

pub mod api;
pub mod batched;
pub mod breaker;
pub mod bridge;
pub mod builder;
pub mod deadline;
pub mod fallback;
pub mod fault;
pub mod instrument;
pub mod ledger;
pub mod memoize;
pub mod persist;
pub mod query;
pub mod report;
pub mod retry;
pub mod wire;

pub use batched::{BatchHandle, BatchStats, Batched, DispatchPolicy};
pub use breaker::{
    AdmissionControl, BreakerConfig, BreakerHandle, BreakerStats, CircuitBreaker, CircuitState,
};
pub use bridge::{plan_latency, provider_stack, AsProvider, ProviderService, Unavailable};
pub use builder::{LayerTag, ServiceBuilder, ServiceStack, StackHandles, StackSpec};
pub use deadline::{Deadline, DeadlineHandle, DeadlinePolicy, DeadlineStats};
pub use fallback::{Fallback, FallbackHandle, FallbackStats};
pub use fault::{FaultConfig, FaultHandle, FaultInject, FaultStats};
pub use instrument::{Instrumented, MetricsHandle, ServiceMetrics};
pub use ledger::{flat_json_fields, Ledger, LedgerField, LedgerValue};
pub use memoize::{CacheHandle, Memoize};
pub use persist::{Persist, PersistHandle, PersistStats};
pub use predtop_parallel::CacheStats;
pub use query::{LatencyQuery, LatencyReply, Retryability, ServiceError};
pub use report::ServiceReport;
pub use retry::{Retry, RetryHandle, RetryPolicy, RetryStats};

/// A source of stage latencies, queryable one at a time or in batches.
///
/// This is the pluggable-backend seam of the whole system: the
/// inter-stage optimizer, the CLI, and the bench harness only ever talk
/// to *some* `LatencyService`, and middleware layers ([`Memoize`],
/// [`Batched`], [`Instrumented`], [`Fallback`]) are themselves services
/// wrapping an inner one.
///
/// Implementations must tolerate concurrent `query` calls (`Sync`
/// supertrait): the [`Batched`] layer fans one batch out across worker
/// threads.
pub trait LatencyService: Sync {
    /// Short static label of this source ("simulator", "analytic",
    /// "predictor", ...), used for per-query attribution in
    /// [`LatencyReply::source`] and in error messages.
    fn name(&self) -> &'static str;

    /// Resolve one query to a latency, or explain why this source
    /// cannot serve it (so a [`Fallback`] layer can try the next one).
    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError>;

    /// Resolve a whole batch, one reply per query at the query's index.
    ///
    /// The default is a serial in-order map; the [`Batched`] layer
    /// overrides it with a deterministic parallel fan-out. Overrides
    /// must preserve the index correspondence and per-query values.
    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        qs.iter().map(|q| self.query(q)).collect()
    }
}

impl<S: LatencyService + ?Sized> LatencyService for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        (**self).query(q)
    }
    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        (**self).query_batch(qs)
    }
}

impl<S: LatencyService + ?Sized> LatencyService for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        (**self).query(q)
    }
    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        (**self).query_batch(qs)
    }
}

impl<S: LatencyService + Send + ?Sized> LatencyService for std::sync::Arc<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        (**self).query(q)
    }
    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        (**self).query_batch(qs)
    }
}
