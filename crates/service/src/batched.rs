//! The batch-evaluation layer: fan a whole query batch out across the
//! deterministic worker pool, in coarse chunks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use predtop_runtime::{
    configured_threads, par_map_chunked, ChunkDispatch, DEFAULT_OVERSUBSCRIPTION,
    DEFAULT_SERIAL_THRESHOLD,
};

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// How a [`Batched`] layer carves a query batch into worker tasks.
///
/// The chunk size is `ceil(len / (threads × oversubscription))` — big
/// enough that per-task overhead (allocation, slot locking, cursor
/// contention) amortizes over many queries, small enough that the pool
/// stays load-balanced even when chunk costs are skewed. Batches of at
/// most `serial_threshold` queries skip thread dispatch entirely and
/// run inline on the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Chunks per worker thread. Higher values give smaller chunks
    /// (better balance, more overhead).
    pub oversubscription: usize,
    /// Batches no larger than this run inline on the calling thread.
    pub serial_threshold: usize,
}

impl Default for DispatchPolicy {
    fn default() -> DispatchPolicy {
        DispatchPolicy {
            oversubscription: DEFAULT_OVERSUBSCRIPTION,
            serial_threshold: DEFAULT_SERIAL_THRESHOLD,
        }
    }
}

impl DispatchPolicy {
    /// The historical fine-grained policy: one chunk per query, no
    /// inline short-circuit. Useful as a comparison baseline — results
    /// are bit-identical to the chunked default by construction.
    pub fn per_query() -> DispatchPolicy {
        DispatchPolicy {
            oversubscription: usize::MAX,
            serial_threshold: 0,
        }
    }
}

/// Dispatch counters of a [`Batched`] layer, snapshot at any point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Batches observed (`query_batch` calls).
    pub batches: usize,
    /// Batches fanned out across the worker pool.
    pub dispatched: usize,
    /// Batches run inline (single worker, or under the serial
    /// threshold).
    pub inline: usize,
    /// Worker chunks cut across all dispatched batches.
    pub chunks: usize,
    /// Chunk size of the most recent dispatched batch (0 before any).
    pub last_chunk_size: usize,
}

#[derive(Debug, Default)]
pub(crate) struct BatchState {
    batches: AtomicUsize,
    dispatched: AtomicUsize,
    inline: AtomicUsize,
    chunks: AtomicUsize,
    last_chunk_size: AtomicUsize,
}

impl BatchState {
    fn record(&self, d: ChunkDispatch) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if d.dispatched {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
            self.chunks.fetch_add(d.chunks, Ordering::Relaxed);
            self.last_chunk_size.store(d.chunk_size, Ordering::Relaxed);
        } else {
            self.inline.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> BatchStats {
        BatchStats {
            batches: self.batches.load(Ordering::Relaxed),
            dispatched: self.dispatched.load(Ordering::Relaxed),
            inline: self.inline.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            last_chunk_size: self.last_chunk_size.load(Ordering::Relaxed),
        }
    }
}

/// Shared view of a [`Batched`] layer's dispatch counters, usable after
/// the layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct BatchHandle(pub(crate) Arc<BatchState>);

impl BatchHandle {
    /// Dispatch counters accumulated since the layer was built.
    pub fn stats(&self) -> BatchStats {
        self.0.stats()
    }
}

/// Middleware that overrides [`LatencyService::query_batch`] with a
/// `predtop-runtime` chunked fan-out: the batch is cut into
/// [`DispatchPolicy`]-sized chunks, each chunk is resolved on one of
/// `threads` workers, and every reply lands at its query's index.
///
/// Because the pool preserves input order (results land at their input
/// positions regardless of which worker computed them, and chunk
/// boundaries never reorder within a chunk), a batch through this layer
/// is *bit-identical* to the serial default at any thread count, chunk
/// size, or serial threshold — this is the layer that gives the
/// plan-search engine its parallel candidate evaluation without giving
/// up determinism.
///
/// Single queries pass straight through.
pub struct Batched<S> {
    inner: S,
    threads: usize,
    policy: DispatchPolicy,
    state: Arc<BatchState>,
}

impl<S> Batched<S> {
    /// Fan batches out over exactly `threads` workers (floored at 1)
    /// with the default chunking policy.
    pub fn new(inner: S, threads: usize) -> Batched<S> {
        Batched::with_policy(inner, threads, DispatchPolicy::default())
    }

    /// Fan batches out over the `PREDTOP_THREADS`-configured pool size.
    pub fn auto(inner: S) -> Batched<S> {
        let threads = configured_threads();
        Batched::new(inner, threads)
    }

    /// Fan batches out over exactly `threads` workers with an explicit
    /// chunking policy.
    pub fn with_policy(inner: S, threads: usize, policy: DispatchPolicy) -> Batched<S> {
        Batched {
            inner,
            threads: threads.max(1),
            policy,
            state: Arc::new(BatchState::default()),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The worker-pool size batches fan out over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunking policy batches are carved with.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// A shareable handle onto this layer's dispatch counters.
    pub fn handle(&self) -> BatchHandle {
        BatchHandle(self.state.clone())
    }

    /// Dispatch counters accumulated since construction.
    pub fn stats(&self) -> BatchStats {
        self.state.stats()
    }
}

impl<S: LatencyService> LatencyService for Batched<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        self.inner.query(q)
    }

    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        let (out, dispatch) = par_map_chunked(
            qs.to_vec(),
            self.threads,
            self.policy.oversubscription,
            self.policy.serial_threshold,
            |q| self.inner.query(&q),
        );
        self.state.record(dispatch);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::counting_service;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn queries(layers: usize) -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = layers;
        let mut out = Vec::new();
        for start in 0..layers {
            for end in start + 1..=layers {
                out.push(LatencyQuery::new(
                    StageSpec::new(m, start, end),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                ));
            }
        }
        out
    }

    #[test]
    fn batch_matches_serial_at_any_thread_count_and_policy() {
        let qs = queries(8); // 36 queries: above the default threshold
        let (svc, _) = counting_service();
        let serial: Vec<f64> = qs.iter().map(|q| svc.query(q).unwrap().seconds).collect();
        for threads in [1, 2, 8] {
            for policy in [DispatchPolicy::default(), DispatchPolicy::per_query()] {
                let (svc, calls) = counting_service();
                let batched = Batched::with_policy(svc, threads, policy);
                let replies = batched.query_batch(&qs);
                assert_eq!(replies.len(), qs.len());
                for (i, r) in replies.iter().enumerate() {
                    assert_eq!(r.as_ref().unwrap().seconds.to_bits(), serial[i].to_bits());
                }
                assert_eq!(
                    calls.load(std::sync::atomic::Ordering::Relaxed),
                    qs.len(),
                    "every query reaches the inner service exactly once"
                );
            }
        }
    }

    #[test]
    fn dispatch_accounting_distinguishes_inline_from_fanout() {
        let qs = queries(8); // 36 queries
        let (svc, _) = counting_service();
        let batched = Batched::new(svc, 4);
        batched.query_batch(&qs);
        let s = batched.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.dispatched, 1);
        assert_eq!(s.inline, 0);
        // 36 queries over 4 threads × 4 oversubscription = 16 slots
        // -> chunk size 3, 12 chunks
        assert_eq!(s.last_chunk_size, 3);
        assert_eq!(s.chunks, 12);
        // a batch under the threshold runs inline
        batched.query_batch(&qs[..8]);
        let s = batched.stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.dispatched, 1);
        assert_eq!(s.inline, 1);
        // the handle observes the same counters after the layer moves
        let handle = batched.handle();
        assert_eq!(handle.stats(), s);
    }

    #[test]
    fn single_thread_runs_inline_even_above_threshold() {
        let qs = queries(8);
        let (svc, _) = counting_service();
        let batched = Batched::new(svc, 1);
        batched.query_batch(&qs);
        assert_eq!(batched.stats().dispatched, 0);
        assert_eq!(batched.stats().inline, 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let (svc, _) = counting_service();
        let batched = Batched::new(svc, 4);
        assert!(batched.query_batch(&[]).is_empty());
        assert_eq!(batched.stats().batches, 1);
        assert_eq!(batched.stats().inline, 1);
    }
}
