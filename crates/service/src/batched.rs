//! The batch-evaluation layer: fan a whole query batch out across the
//! deterministic worker pool.

use predtop_runtime::{configured_threads, par_map_with};

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Middleware that overrides [`LatencyService::query_batch`] with a
/// `predtop-runtime` `par_map_with` fan-out: each query is resolved on
/// one of `threads` workers and its reply lands at the query's index.
///
/// Because the pool preserves input order (results land at their input
/// positions regardless of which worker computed them), a batch through
/// this layer is *bit-identical* to the serial default at any thread
/// count — this is the layer that gives the plan-search engine its
/// parallel candidate evaluation without giving up determinism.
///
/// Single queries pass straight through.
pub struct Batched<S> {
    inner: S,
    threads: usize,
}

impl<S> Batched<S> {
    /// Fan batches out over exactly `threads` workers (floored at 1).
    pub fn new(inner: S, threads: usize) -> Batched<S> {
        Batched {
            inner,
            threads: threads.max(1),
        }
    }

    /// Fan batches out over the `PREDTOP_THREADS`-configured pool size.
    pub fn auto(inner: S) -> Batched<S> {
        let threads = configured_threads();
        Batched::new(inner, threads)
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The worker-pool size batches fan out over.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<S: LatencyService> LatencyService for Batched<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        self.inner.query(q)
    }

    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        par_map_with(qs.to_vec(), self.threads, |q| self.inner.query(&q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::counting_service;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn queries() -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 6;
        let mut out = Vec::new();
        for start in 0..6 {
            for end in start + 1..=6 {
                out.push(LatencyQuery::new(
                    StageSpec::new(m, start, end),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                ));
            }
        }
        out
    }

    #[test]
    fn batch_matches_serial_at_any_thread_count() {
        let qs = queries();
        let (svc, _) = counting_service();
        let serial: Vec<f64> = qs.iter().map(|q| svc.query(q).unwrap().seconds).collect();
        for threads in [1, 2, 8] {
            let (svc, calls) = counting_service();
            let batched = Batched::new(svc, threads);
            let replies = batched.query_batch(&qs);
            assert_eq!(replies.len(), qs.len());
            for (i, r) in replies.iter().enumerate() {
                assert_eq!(r.as_ref().unwrap().seconds.to_bits(), serial[i].to_bits());
            }
            assert_eq!(
                calls.load(std::sync::atomic::Ordering::Relaxed),
                qs.len(),
                "every query reaches the inner service exactly once"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (svc, _) = counting_service();
        assert!(Batched::new(svc, 4).query_batch(&[]).is_empty());
    }
}
