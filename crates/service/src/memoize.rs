//! The memoization layer: answer repeated queries from a sharded cache.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use predtop_parallel::{CacheStats, StructuralInterner, StructuralKey};

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Number of independent map shards. A power of two so shard selection
/// is a mask; 16 comfortably exceeds any realistic `PREDTOP_THREADS`.
const SHARDS: usize = 16;

/// What a [`Memoize`] layer's cache is keyed on.
///
/// `Raw` is the historical behaviour: every distinct
/// (stage, mesh, config) query is its own entry. `Structural` routes the
/// query through a [`StructuralInterner`] first, so isomorphic
/// sub-problems (e.g. interior layer windows of equal length in a dense
/// model) collapse onto one entry — a query the stack has never seen
/// verbatim can still *hit* if an isomorphic one was answered before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum MemoKey {
    /// Raw query identity.
    Raw(LatencyQuery),
    /// Structural equivalence class from the layer's interner.
    Structural(StructuralKey),
}

/// Shared cache state, owned jointly by the [`Memoize`] layer and any
/// [`CacheHandle`]s the builder handed out.
#[derive(Debug)]
pub(crate) struct MemoizeState {
    shards: Vec<Mutex<HashMap<MemoKey, LatencyReply>>>,
    /// Single-flight latches: one lock per in-progress key, so
    /// concurrent workers racing on the same brand-new key block behind
    /// the first instead of consulting the inner service redundantly.
    inflight: Mutex<HashMap<MemoKey, Arc<Mutex<()>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MemoizeState {
    fn new() -> MemoizeState {
        MemoizeState {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard_of(k: &MemoKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        k.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Shared view of a [`Memoize`] layer's counters, usable after the layer
/// has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct CacheHandle(pub(crate) Arc<MemoizeState>);

impl CacheHandle {
    /// Hit/miss counters accumulated since the layer was built.
    pub fn stats(&self) -> CacheStats {
        self.0.stats()
    }

    /// Number of distinct queries currently cached.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// Middleware that memoizes successful replies per [`LatencyQuery`] in a
/// sharded `parking_lot`-protected map — the service-stack
/// generalization of the old `parallel::cache::CachedProvider`.
///
/// Transparency contract: wrapping a service never changes the reply a
/// query resolves to (the cached [`LatencyReply`] carries its original
/// source attribution), only how often the inner service is consulted.
/// Errors are never cached — a failing source is re-asked, so a
/// [`crate::Fallback`] below keeps attributing per query.
///
/// Concurrency note: the inner service is consulted *outside* the shard
/// lock, behind a per-key single-flight latch — when several workers
/// race on the same brand-new key (which structural mode makes routine:
/// distinct raw queries in one batch can share a key), exactly one
/// consults the inner service and the rest block briefly and then hit.
/// So for successful queries the inner-consultation count — and with it
/// every hit/miss counter — is a pure function of the query multiset,
/// deterministic at any thread count. Errors release the latch without
/// caching, so each blocked waiter retries the inner service itself.
///
/// In *structural* mode ([`Memoize::structural`]) the cache keys on the
/// interned [`StructuralKey`] of each query instead of the query itself,
/// so isomorphic sub-problems share one entry. That is only sound when
/// the inner service is a pure function of the stage *structure* — true
/// of every in-tree provider (the simulator, the analytic model, and
/// graph-fed predictors all consume the built stage graph, which
/// isomorphic windows share bit-for-bit).
pub struct Memoize<S> {
    inner: S,
    state: Arc<MemoizeState>,
    interner: Option<Arc<StructuralInterner>>,
}

impl<S> Memoize<S> {
    /// Wrap `inner` with an empty cache keyed on raw query identity.
    pub fn new(inner: S) -> Memoize<S> {
        Memoize {
            inner,
            state: Arc::new(MemoizeState::new()),
            interner: None,
        }
    }

    /// Wrap `inner` with an empty cache keyed on structural equivalence
    /// classes from `interner` (see the type-level soundness note).
    pub fn structural(inner: S, interner: Arc<StructuralInterner>) -> Memoize<S> {
        Memoize {
            inner,
            state: Arc::new(MemoizeState::new()),
            interner: Some(interner),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The structural interner, when this layer keys structurally.
    pub fn interner(&self) -> Option<&Arc<StructuralInterner>> {
        self.interner.as_ref()
    }

    fn key_of(&self, q: &LatencyQuery) -> MemoKey {
        match &self.interner {
            Some(i) => MemoKey::Structural(i.intern(&q.stage, q.mesh, q.config)),
            None => MemoKey::Raw(*q),
        }
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> CacheHandle {
        CacheHandle(self.state.clone())
    }

    /// Hit/miss counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.state.stats()
    }
}

impl<S: LatencyService> LatencyService for Memoize<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let key = self.key_of(q);
        let shard = &self.state.shards[MemoizeState::shard_of(&key)];
        if let Some(&r) = shard.lock().get(&key) {
            self.state.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        // single-flight: one latch per key, so only one worker computes
        // a brand-new key while racers block behind it (and then hit on
        // the re-check) instead of duplicating inner work
        let latch = self
            .state
            .inflight
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone();
        let _guard = latch.lock();
        if let Some(&r) = shard.lock().get(&key) {
            self.state.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        // consult the inner service outside the shard lock: a slow inner
        // query (the simulator compiles the whole stage) must not stall
        // every other worker hashing into this shard
        let r = self.inner.query(q)?;
        self.state.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().insert(key, r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service};
    use crate::query::LatencyQuery;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn q(start: usize, end: usize) -> LatencyQuery {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 4;
        LatencyQuery::new(
            StageSpec::new(m, start, end),
            MeshShape::new(1, 1),
            ParallelConfig::SERIAL,
        )
    }

    #[test]
    fn second_query_hits_without_consulting_inner() {
        let (svc, calls) = counting_service();
        let memo = Memoize::new(svc);
        let a = memo.query(&q(0, 2)).unwrap();
        let b = memo.query(&q(0, 2)).unwrap();
        assert_eq!(a, b);
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(memo.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(memo.handle().len(), 1);
        // attribution survives the cache
        assert_eq!(b.source, "counting");
    }

    #[test]
    fn distinct_queries_each_miss_once() {
        let (svc, calls) = counting_service();
        let memo = Memoize::new(svc);
        for start in 0..4 {
            for end in start + 1..=4 {
                memo.query(&q(start, end)).unwrap();
            }
        }
        let distinct = 4 * 5 / 2;
        assert_eq!(
            memo.stats(),
            CacheStats {
                hits: 0,
                misses: distinct
            }
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), distinct);
        // replay: all hits
        for start in 0..4 {
            for end in start + 1..=4 {
                memo.query(&q(start, end)).unwrap();
            }
        }
        assert_eq!(
            memo.stats(),
            CacheStats {
                hits: distinct,
                misses: distinct
            }
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), distinct);
    }

    #[test]
    fn structural_mode_hits_on_isomorphic_queries() {
        let (svc, calls) = counting_service();
        let interner = Arc::new(StructuralInterner::new());
        let memo = Memoize::structural(svc, interner.clone());
        // two isomorphic interior 1-layer windows: second is a hit even
        // though the raw query was never seen before
        let a = memo.query(&q(1, 2)).unwrap();
        let b = memo.query(&q(2, 3)).unwrap();
        assert_eq!(a, b);
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(memo.stats(), CacheStats { hits: 1, misses: 1 });
        // boundary windows are distinct classes and miss
        memo.query(&q(0, 1)).unwrap();
        memo.query(&q(3, 4)).unwrap();
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
        assert_eq!(memo.stats(), CacheStats { hits: 1, misses: 3 });
        assert_eq!(memo.handle().len(), 3);
        assert_eq!(interner.stats().lookups, 4);
        assert_eq!(interner.len(), 3);
        assert!(memo.interner().is_some());
        assert!(Memoize::new(counting_service().0).interner().is_none());
    }

    #[test]
    fn errors_are_not_cached() {
        let memo = Memoize::new(failing_service("flaky"));
        assert!(memo.query(&q(0, 1)).is_err());
        assert!(memo.query(&q(0, 1)).is_err());
        assert_eq!(memo.stats(), CacheStats { hits: 0, misses: 0 });
        assert!(memo.handle().is_empty());
    }
}
