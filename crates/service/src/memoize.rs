//! The memoization layer: answer repeated queries from a sharded cache.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use predtop_parallel::CacheStats;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Number of independent map shards. A power of two so shard selection
/// is a mask; 16 comfortably exceeds any realistic `PREDTOP_THREADS`.
const SHARDS: usize = 16;

/// Shared cache state, owned jointly by the [`Memoize`] layer and any
/// [`CacheHandle`]s the builder handed out.
#[derive(Debug)]
pub(crate) struct MemoizeState {
    shards: Vec<Mutex<HashMap<LatencyQuery, LatencyReply>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl MemoizeState {
    fn new() -> MemoizeState {
        MemoizeState {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard_of(q: &LatencyQuery) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        q.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// Shared view of a [`Memoize`] layer's counters, usable after the layer
/// has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct CacheHandle(pub(crate) Arc<MemoizeState>);

impl CacheHandle {
    /// Hit/miss counters accumulated since the layer was built.
    pub fn stats(&self) -> CacheStats {
        self.0.stats()
    }

    /// Number of distinct queries currently cached.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.0.len() == 0
    }
}

/// Middleware that memoizes successful replies per [`LatencyQuery`] in a
/// sharded `parking_lot`-protected map — the service-stack
/// generalization of the old `parallel::cache::CachedProvider`.
///
/// Transparency contract: wrapping a service never changes the reply a
/// query resolves to (the cached [`LatencyReply`] carries its original
/// source attribution), only how often the inner service is consulted.
/// Errors are never cached — a failing source is re-asked, so a
/// [`crate::Fallback`] below keeps attributing per query.
///
/// Concurrency note: the inner service is consulted *outside* the shard
/// lock, so two threads racing on the same brand-new query may both
/// consult it. The search engine's work-list contains each query at most
/// once per search, so within one search this cannot happen; across
/// sequential searches the inner-query count equals the number of
/// distinct keys.
pub struct Memoize<S> {
    inner: S,
    state: Arc<MemoizeState>,
}

impl<S> Memoize<S> {
    /// Wrap `inner` with an empty cache.
    pub fn new(inner: S) -> Memoize<S> {
        Memoize {
            inner,
            state: Arc::new(MemoizeState::new()),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> CacheHandle {
        CacheHandle(self.state.clone())
    }

    /// Hit/miss counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.state.stats()
    }
}

impl<S: LatencyService> LatencyService for Memoize<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let shard = &self.state.shards[MemoizeState::shard_of(q)];
        if let Some(&r) = shard.lock().get(q) {
            self.state.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        // consult the inner service outside the lock: a slow inner query
        // (the simulator compiles the whole stage) must not stall every
        // other worker hashing into this shard
        let r = self.inner.query(q)?;
        self.state.misses.fetch_add(1, Ordering::Relaxed);
        shard.lock().insert(*q, r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service};
    use crate::query::LatencyQuery;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn q(start: usize, end: usize) -> LatencyQuery {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 4;
        LatencyQuery::new(
            StageSpec::new(m, start, end),
            MeshShape::new(1, 1),
            ParallelConfig::SERIAL,
        )
    }

    #[test]
    fn second_query_hits_without_consulting_inner() {
        let (svc, calls) = counting_service();
        let memo = Memoize::new(svc);
        let a = memo.query(&q(0, 2)).unwrap();
        let b = memo.query(&q(0, 2)).unwrap();
        assert_eq!(a, b);
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 1);
        assert_eq!(memo.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(memo.handle().len(), 1);
        // attribution survives the cache
        assert_eq!(b.source, "counting");
    }

    #[test]
    fn distinct_queries_each_miss_once() {
        let (svc, calls) = counting_service();
        let memo = Memoize::new(svc);
        for start in 0..4 {
            for end in start + 1..=4 {
                memo.query(&q(start, end)).unwrap();
            }
        }
        let distinct = 4 * 5 / 2;
        assert_eq!(
            memo.stats(),
            CacheStats {
                hits: 0,
                misses: distinct
            }
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), distinct);
        // replay: all hits
        for start in 0..4 {
            for end in start + 1..=4 {
                memo.query(&q(start, end)).unwrap();
            }
        }
        assert_eq!(
            memo.stats(),
            CacheStats {
                hits: distinct,
                misses: distinct
            }
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), distinct);
    }

    #[test]
    fn errors_are_not_cached() {
        let memo = Memoize::new(failing_service("flaky"));
        assert!(memo.query(&q(0, 1)).is_err());
        assert!(memo.query(&q(0, 1)).is_err());
        assert_eq!(memo.stats(), CacheStats { hits: 0, misses: 0 });
        assert!(memo.handle().is_empty());
    }
}
