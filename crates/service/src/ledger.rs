//! One shared render surface for every stack ledger.
//!
//! Before this module, the per-layer counter snapshots ([`CacheStats`],
//! [`crate::PersistStats`], breaker/retry stats, ...) were
//! rendered three separate times: hand-rolled `println!`s in the CLI
//! text summary, hand-rolled JSON fragments for `--format json`, and —
//! with the wire protocol — a third encoding for the `Stats` reply.
//! [`Ledger`] collapses those into one place: every snapshot type
//! exposes
//!
//! * a stable [`ledger_name`](Ledger::ledger_name) (the prefix of its
//!   text line and the name of its wire snapshot),
//! * its [`fields`](Ledger::fields) as typed key/value pairs (counts,
//!   seconds, short text), each flagged for whether it belongs in the
//!   CLI's *flat* JSON object, and
//! * its canonical one-line [`summary`](Ledger::summary) — the exact
//!   text the CLI has always printed, now produced here and nowhere
//!   else.
//!
//! The CLI prints `summary()` lines and splices
//! [`flat_json_fields`] into its JSON object; the wire protocol ships
//! `fields()` verbatim inside the `Stats` reply. All three views are
//! projections of the same data, so they can never drift apart again.

use crate::batched::BatchStats;
use crate::breaker::BreakerStats;
use crate::deadline::DeadlineStats;
use crate::fallback::FallbackStats;
use crate::fault::FaultStats;
use crate::instrument::ServiceMetrics;
use crate::persist::PersistStats;
use crate::retry::RetryStats;
use predtop_parallel::{CacheStats, InternStats};

/// One typed ledger value.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerValue {
    /// An event count (hits, misses, retries, ...).
    Count(u64),
    /// An accumulated duration in seconds (exact bits matter: the wire
    /// codec ships the IEEE-754 pattern).
    Seconds(f64),
    /// A short state label (e.g. a breaker's `"closed"`).
    Text(String),
}

/// One named field of a ledger snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerField {
    /// Stable machine-readable key (`"cache_hits"`, `"retries"`, ...).
    pub key: &'static str,
    /// The value at snapshot time.
    pub value: LedgerValue,
    /// Whether this field belongs in the CLI's flat `--format json`
    /// object. The flat schema predates this trait and is pinned by the
    /// CLI tests, so it stays a curated subset; the wire `Stats` reply
    /// ships every field regardless.
    pub in_flat_json: bool,
}

impl LedgerField {
    fn count(key: &'static str, v: usize, in_flat_json: bool) -> LedgerField {
        LedgerField {
            key,
            value: LedgerValue::Count(v as u64),
            in_flat_json,
        }
    }

    fn seconds(key: &'static str, v: f64) -> LedgerField {
        LedgerField {
            key,
            value: LedgerValue::Seconds(v),
            in_flat_json: false,
        }
    }

    fn text(key: &'static str, v: String) -> LedgerField {
        LedgerField {
            key,
            value: LedgerValue::Text(v),
            in_flat_json: false,
        }
    }
}

/// The shared render surface of one stack ledger — see the module docs.
pub trait Ledger {
    /// Stable short name of this ledger (`"memoize"`, `"store"`, ...).
    fn ledger_name(&self) -> &'static str;

    /// Every field of the snapshot, in canonical order.
    fn fields(&self) -> Vec<LedgerField>;

    /// The canonical one-line text rendering — exactly what the CLI
    /// prints for this ledger.
    fn summary(&self) -> String;
}

/// The flat-JSON fragment of one ledger: every field flagged
/// `in_flat_json`, rendered as `,"key":value` pairs (leading commas
/// included) ready to splice into the CLI's single-object output.
pub fn flat_json_fields(ledger: &dyn Ledger) -> String {
    let mut out = String::new();
    for f in ledger.fields() {
        if !f.in_flat_json {
            continue;
        }
        match &f.value {
            LedgerValue::Count(n) => out.push_str(&format!(",\"{}\":{}", f.key, n)),
            LedgerValue::Seconds(x) => out.push_str(&format!(",\"{}\":{}", f.key, x)),
            LedgerValue::Text(s) => out.push_str(&format!(",\"{}\":\"{}\"", f.key, s)),
        }
    }
    out
}

impl Ledger for CacheStats {
    fn ledger_name(&self) -> &'static str {
        "memoize"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("cache_hits", self.hits, true),
            LedgerField::count("cache_misses", self.misses, true),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "memoize: {} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

impl Ledger for InternStats {
    fn ledger_name(&self) -> &'static str {
        "structural"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("distinct_structures", self.distinct, true),
            LedgerField::count("structural_lookups", self.lookups, false),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "structural keys: {} distinct structures over {} lookups ({:.1}% reuse)",
            self.distinct,
            self.lookups,
            self.reuse_rate() * 100.0
        )
    }
}

impl Ledger for PersistStats {
    fn ledger_name(&self) -> &'static str {
        "store"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("store_disk_hits", self.disk_hits, true),
            LedgerField::count("store_disk_misses", self.disk_misses, true),
            LedgerField::count("store_writes", self.writes, true),
            LedgerField::count("store_write_errors", self.write_errors, false),
            LedgerField::count("store_corrupt_recovered", self.corrupt_recovered, false),
        ]
    }

    fn summary(&self) -> String {
        let mut line = format!(
            "store: {} disk hits / {} disk misses ({:.1}% served from disk), {} written",
            self.disk_hits,
            self.disk_misses,
            self.disk_served_rate() * 100.0,
            self.writes
        );
        if self.corrupt_recovered > 0 {
            line.push_str(&format!(", {} corrupt recovered", self.corrupt_recovered));
        }
        if self.write_errors > 0 {
            line.push_str(&format!(", {} write errors", self.write_errors));
        }
        line
    }
}

impl Ledger for BatchStats {
    fn ledger_name(&self) -> &'static str {
        "dispatch"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("batches", self.batches, false),
            LedgerField::count("dispatched", self.dispatched, false),
            LedgerField::count("inline", self.inline, false),
            LedgerField::count("chunks", self.chunks, false),
            LedgerField::count("last_chunk_size", self.last_chunk_size, false),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "dispatch: {} batches ({} fanned out, {} inline), \
             {} chunks, last chunk size {}",
            self.batches, self.dispatched, self.inline, self.chunks, self.last_chunk_size
        )
    }
}

impl Ledger for ServiceMetrics {
    fn ledger_name(&self) -> &'static str {
        "service"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("queries", self.queries, false),
            LedgerField::count("batches", self.batches, false),
            LedgerField::count("errors", self.errors, false),
            LedgerField::seconds("served_seconds", self.served_seconds),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "service: {} queries in {} batches ({} errors), {:.3} served seconds",
            self.queries, self.batches, self.errors, self.served_seconds
        )
    }
}

impl Ledger for FallbackStats {
    fn ledger_name(&self) -> &'static str {
        "fallback"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("primary_served", self.primary_served, false),
            LedgerField::count("fallback_served", self.fallback_served, false),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "fallback: {} primary / {} fallback served",
            self.primary_served, self.fallback_served
        )
    }
}

impl Ledger for FaultStats {
    fn ledger_name(&self) -> &'static str {
        "faults"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("injected_faults", self.injected_errors, true),
            LedgerField::count("injected_spikes", self.injected_spikes, false),
            LedgerField::count("fault_passed", self.passed, false),
            LedgerField::seconds("spike_seconds", self.spike_seconds),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "faults: {} injected, {} passed",
            self.injected_errors, self.passed
        )
    }
}

impl Ledger for RetryStats {
    fn ledger_name(&self) -> &'static str {
        "retry"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count("retries", self.retries, true),
            LedgerField::count("recovered", self.recovered, true),
            LedgerField::count("retry_exhausted", self.exhausted, false),
            LedgerField::count("retry_permanent_failures", self.permanent_failures, false),
            LedgerField::seconds("backoff_seconds", self.backoff_seconds),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "retry: {} re-attempts, {} recovered, {} exhausted, \
             {:.3} s backoff (accounted)",
            self.retries, self.recovered, self.exhausted, self.backoff_seconds
        )
    }
}

impl Ledger for DeadlineStats {
    fn ledger_name(&self) -> &'static str {
        "deadline"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::count(
                "deadline_overruns",
                self.query_overruns + self.batch_overruns,
                true,
            ),
            LedgerField::count("deadline_served", self.served, false),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "deadline: {} overruns / {} served",
            self.query_overruns + self.batch_overruns,
            self.served
        )
    }
}

impl Ledger for BreakerStats {
    fn ledger_name(&self) -> &'static str {
        "breaker"
    }

    fn fields(&self) -> Vec<LedgerField> {
        vec![
            LedgerField::text("breaker_state", self.state.to_string()),
            LedgerField::count("breaker_opened", self.opened, false),
            LedgerField::count("breaker_half_opened", self.half_opened, false),
            LedgerField::count("breaker_closed", self.closed, false),
            LedgerField::count("breaker_rejected", self.rejected, false),
        ]
    }

    fn summary(&self) -> String {
        format!(
            "breaker: {}, {} opened, {} rejected",
            self.state, self.opened, self.rejected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_render_the_pinned_cli_lines() {
        let cache = CacheStats { hits: 6, misses: 6 };
        assert_eq!(
            cache.summary(),
            "memoize: 6 hits / 6 misses (50.0% hit rate)"
        );

        let persist = PersistStats {
            disk_hits: 3,
            disk_misses: 1,
            writes: 1,
            write_errors: 0,
            corrupt_recovered: 0,
        };
        assert_eq!(
            persist.summary(),
            "store: 3 disk hits / 1 disk misses (75.0% served from disk), 1 written"
        );
        let damaged = PersistStats {
            corrupt_recovered: 2,
            write_errors: 1,
            ..persist
        };
        assert!(damaged
            .summary()
            .ends_with(", 2 corrupt recovered, 1 write errors"));

        let deadline = DeadlineStats {
            query_overruns: 1,
            batch_overruns: 2,
            served: 9,
        };
        assert_eq!(deadline.summary(), "deadline: 3 overruns / 9 served");
    }

    #[test]
    fn flat_json_is_the_curated_subset() {
        let cache = CacheStats { hits: 2, misses: 3 };
        assert_eq!(
            flat_json_fields(&cache),
            ",\"cache_hits\":2,\"cache_misses\":3"
        );

        let interner = InternStats {
            lookups: 10,
            distinct: 4,
        };
        // lookups is wire-only; the flat object has always carried the
        // distinct count alone
        assert_eq!(flat_json_fields(&interner), ",\"distinct_structures\":4");

        let persist = PersistStats {
            disk_hits: 1,
            disk_misses: 2,
            writes: 2,
            write_errors: 5,
            corrupt_recovered: 5,
        };
        assert_eq!(
            flat_json_fields(&persist),
            ",\"store_disk_hits\":1,\"store_disk_misses\":2,\"store_writes\":2"
        );

        let retry = RetryStats {
            retries: 7,
            recovered: 6,
            exhausted: 1,
            permanent_failures: 0,
            backoff_seconds: 1.25,
        };
        assert_eq!(flat_json_fields(&retry), ",\"retries\":7,\"recovered\":6");

        // breaker fields are wire/text-only
        let breaker = BreakerStats::default();
        assert_eq!(flat_json_fields(&breaker), "");
    }

    #[test]
    fn every_ledger_names_itself_and_reports_fields() {
        let ledgers: Vec<Box<dyn Ledger>> = vec![
            Box::new(CacheStats::default()),
            Box::new(InternStats {
                lookups: 0,
                distinct: 0,
            }),
            Box::new(PersistStats::default()),
            Box::new(BatchStats::default()),
            Box::new(ServiceMetrics::default()),
            Box::new(FallbackStats::default()),
            Box::new(FaultStats::default()),
            Box::new(RetryStats::default()),
            Box::new(DeadlineStats::default()),
            Box::new(BreakerStats::default()),
        ];
        let mut names = Vec::new();
        for l in &ledgers {
            assert!(!l.fields().is_empty(), "{} has no fields", l.ledger_name());
            assert!(
                l.summary().starts_with(l.ledger_name())
                    || l.ledger_name() == "memoize"
                    || l.ledger_name() == "structural",
                "{} summary does not lead with its name: {}",
                l.ledger_name(),
                l.summary()
            );
            names.push(l.ledger_name());
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "ledger names must be unique");
    }
}
