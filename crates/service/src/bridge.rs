//! Bridges between the service stack and the pre-service
//! [`StageLatencyProvider`] world — the *only* place the two traits are
//! converted.
//!
//! [`ProviderService`] lifts any provider *into* the stack;
//! [`AsProvider`] projects a stack back *down* to a provider for APIs
//! (like `PipelinePlan::latency`) that still speak the older trait; and
//! [`provider_stack`] assembles the canonical batched stack the
//! provider-typed search entry points run through. Callers must not
//! hand-roll their own lift code: one conversion point keeps the
//! attribution labels and error mapping consistent across the
//! workspace.

use predtop_models::StageSpec;
use predtop_parallel::{MeshShape, ParallelConfig, PipelinePlan, StageLatencyProvider};

use crate::batched::Batched;
use crate::builder::{ServiceBuilder, ServiceStack};
use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Adapter lifting a [`StageLatencyProvider`] into a named
/// [`LatencyService`].
///
/// Providers are infallible by contract (they always return *some*
/// `f64`), so every query succeeds and is attributed to `name`.
pub struct ProviderService<P> {
    provider: P,
    name: &'static str,
}

impl<P> ProviderService<P> {
    /// Lift `provider` under the attribution label `name`.
    pub fn new(provider: P, name: &'static str) -> ProviderService<P> {
        ProviderService { provider, name }
    }

    /// The wrapped provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }
}

impl<P: StageLatencyProvider> LatencyService for ProviderService<P> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        Ok(LatencyReply {
            seconds: self.provider.stage_latency(&q.stage, q.mesh, q.config),
            source: self.name,
        })
    }
}

/// Adapter projecting a [`LatencyService`] back down to a
/// [`StageLatencyProvider`], for pre-service APIs that still take the
/// provider trait.
///
/// The provider signature has no error channel, so a service error maps
/// to `f64::INFINITY` — the optimizer and Eqn. 4 both treat an infinite
/// stage as "never pick this", which is the correct degradation.
pub struct AsProvider<S>(pub S);

impl<S: LatencyService> StageLatencyProvider for AsProvider<S> {
    fn stage_latency(&self, stage: &StageSpec, mesh: MeshShape, config: ParallelConfig) -> f64 {
        match self.0.query(&LatencyQuery::new(*stage, mesh, config)) {
            Ok(r) => r.seconds,
            Err(_) => f64::INFINITY,
        }
    }
}

/// A service that can never answer — the degenerate base of a
/// [`crate::Fallback`] chain, used e.g. when the CLI is asked for a
/// trained predictor but the model file failed to load.
pub struct Unavailable {
    name: &'static str,
    reason: String,
}

impl Unavailable {
    /// A source called `name` that refuses every query with `reason`.
    pub fn new(name: &'static str, reason: impl Into<String>) -> Unavailable {
        Unavailable {
            name,
            reason: reason.into(),
        }
    }
}

impl LatencyService for Unavailable {
    fn name(&self) -> &'static str {
        self.name
    }

    fn query(&self, _q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        Err(ServiceError::Unavailable {
            source: self.name,
            reason: self.reason.clone(),
        })
    }
}

/// The canonical stack for running a [`StageLatencyProvider`] through
/// service-typed entry points: the provider lifted into a service
/// attributed to `name`, fanned out over `threads` deterministic
/// workers.
///
/// This is the single sanctioned provider→service lift for callers that
/// just want "my provider, as a stack" (`predtop-core`'s provider-typed
/// searches, bench bins). Anything fancier — memoization, fault
/// injection, fallback chains — starts from
/// [`ServiceBuilder::from_provider`] instead.
pub fn provider_stack<P: StageLatencyProvider>(
    provider: P,
    name: &'static str,
    threads: usize,
) -> ServiceStack<Batched<ProviderService<P>>> {
    ServiceBuilder::from_provider(provider, name)
        .batched(threads)
        .finish()
}

/// Eqn. 4 pipeline latency of `plan`, with every stage latency resolved
/// through `svc` as one batch (so a [`crate::Batched`] layer fans the
/// stages out and a [`crate::Memoize`] layer is populated/consulted).
///
/// Returns the first error if any stage cannot be served.
pub fn plan_latency<S: LatencyService>(plan: &PipelinePlan, svc: &S) -> Result<f64, ServiceError> {
    let queries: Vec<LatencyQuery> = plan
        .stages
        .iter()
        .map(|s| LatencyQuery::new(s.stage, s.mesh, s.config))
        .collect();
    let mut seconds = Vec::with_capacity(queries.len());
    for reply in svc.query_batch(&queries) {
        seconds.push(reply?.seconds);
    }
    Ok(predtop_parallel::pipeline_latency(
        &seconds,
        plan.microbatches,
    ))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A deterministic pure test provider: latency derived from the
    /// query triple alone.
    pub(crate) struct SyntheticProvider;

    impl StageLatencyProvider for SyntheticProvider {
        fn stage_latency(&self, stage: &StageSpec, mesh: MeshShape, config: ParallelConfig) -> f64 {
            let layers = (stage.end - stage.start) as f64;
            let devices = mesh.num_devices() as f64;
            let ways = config.num_devices() as f64;
            layers * 0.01 / devices + 0.001 * ways
        }
    }

    struct CountingService(Arc<AtomicUsize>);

    impl LatencyService for CountingService {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
            self.0.fetch_add(1, Ordering::Relaxed);
            Ok(LatencyReply {
                seconds: SyntheticProvider.stage_latency(&q.stage, q.mesh, q.config),
                source: "counting",
            })
        }
    }

    /// A service named "counting" whose replies are a pure function of
    /// the query, plus the shared call counter.
    pub(crate) fn counting_service() -> (impl LatencyService, Arc<AtomicUsize>) {
        let calls = Arc::new(AtomicUsize::new(0));
        (CountingService(calls.clone()), calls)
    }

    /// A service that refuses every query.
    pub(crate) fn failing_service(name: &'static str) -> Unavailable {
        Unavailable::new(name, "synthetic test failure")
    }

    use predtop_models::ModelSpec;
    use predtop_parallel::PlannedStage;

    fn sample_query() -> LatencyQuery {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 4;
        LatencyQuery::new(
            StageSpec::new(m, 0, 2),
            MeshShape::new(1, 2),
            ParallelConfig::SERIAL,
        )
    }

    #[test]
    fn provider_service_round_trips_through_as_provider() {
        let q = sample_query();
        let svc = ProviderService::new(SyntheticProvider, "synthetic");
        let direct = SyntheticProvider.stage_latency(&q.stage, q.mesh, q.config);
        let reply = svc.query(&q).unwrap();
        assert_eq!(reply.seconds.to_bits(), direct.to_bits());
        assert_eq!(reply.source, "synthetic");
        let back = AsProvider(svc);
        assert_eq!(
            back.stage_latency(&q.stage, q.mesh, q.config).to_bits(),
            direct.to_bits()
        );
    }

    #[test]
    fn provider_stack_serves_the_provider_values_under_its_label() {
        let q = sample_query();
        let direct = SyntheticProvider.stage_latency(&q.stage, q.mesh, q.config);
        let stack = provider_stack(SyntheticProvider, "synthetic", 2);
        let r = stack.query(&q).unwrap();
        assert_eq!(r.seconds.to_bits(), direct.to_bits());
        assert_eq!(r.source, "synthetic");
    }

    #[test]
    fn as_provider_maps_errors_to_infinity() {
        let q = sample_query();
        let p = AsProvider(failing_service("down"));
        assert!(p.stage_latency(&q.stage, q.mesh, q.config).is_infinite());
    }

    #[test]
    fn plan_latency_matches_provider_path() {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = 4;
        let plan = PipelinePlan {
            stages: vec![
                PlannedStage {
                    stage: StageSpec::new(m, 0, 2),
                    mesh: MeshShape::new(1, 1),
                    config: ParallelConfig::SERIAL,
                },
                PlannedStage {
                    stage: StageSpec::new(m, 2, 4),
                    mesh: MeshShape::new(1, 1),
                    config: ParallelConfig::SERIAL,
                },
            ],
            microbatches: 4,
        };
        let via_provider = plan.latency(&SyntheticProvider);
        let via_service =
            plan_latency(&plan, &ProviderService::new(SyntheticProvider, "synthetic")).unwrap();
        assert_eq!(via_provider.to_bits(), via_service.to_bits());
    }
}
