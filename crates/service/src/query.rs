//! The request/response vocabulary every [`crate::LatencyService`]
//! speaks.

use predtop_models::StageSpec;
use predtop_parallel::{MeshShape, ParallelConfig};

/// One stage-latency question: how long does `stage` take on a
/// `mesh`-shaped sub-mesh under `config`?
///
/// This is exactly the (stage, sub-mesh, configuration) candidate key
/// the inter-stage DP enumerates, promoted to a first-class value so
/// middleware layers can hash, batch, and attribute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyQuery {
    /// Layer range being asked about.
    pub stage: StageSpec,
    /// Sub-mesh shape the stage would run on.
    pub mesh: MeshShape,
    /// Intra-stage parallelism configuration.
    pub config: ParallelConfig,
}

impl LatencyQuery {
    /// Build a query from the candidate triple.
    pub fn new(stage: StageSpec, mesh: MeshShape, config: ParallelConfig) -> LatencyQuery {
        LatencyQuery {
            stage,
            mesh,
            config,
        }
    }
}

/// A resolved latency, tagged with the source that actually produced it.
///
/// The tag is what makes [`crate::Fallback`] auditable: whichever base
/// service answered stamps its [`crate::LatencyService::name`] here, and
/// the tag survives memoization and batching unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReply {
    /// Predicted/measured latency in seconds (forward+backward of one
    /// micro-batch, matching `StageLatencyProvider::stage_latency`).
    pub seconds: f64,
    /// Name of the base service that served this query.
    pub source: &'static str,
}

/// Why a service could not answer a query. A [`crate::Fallback`] layer
/// treats any error as "try the next source".
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The source as a whole is unusable (e.g. a saved model file that
    /// failed to load).
    Unavailable {
        /// Name of the failed source.
        source: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The source exists but was never fitted for this (sub-mesh,
    /// configuration) scenario.
    ScenarioUnsupported {
        /// Name of the source.
        source: &'static str,
        /// The unsupported sub-mesh.
        mesh: MeshShape,
        /// The unsupported configuration.
        config: ParallelConfig,
    },
}

impl ServiceError {
    /// Name of the source that raised the error.
    pub fn source(&self) -> &'static str {
        match self {
            ServiceError::Unavailable { source, .. } => source,
            ServiceError::ScenarioUnsupported { source, .. } => source,
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Unavailable { source, reason } => {
                write!(f, "latency source `{source}` unavailable: {reason}")
            }
            ServiceError::ScenarioUnsupported {
                source,
                mesh,
                config,
            } => write!(
                f,
                "latency source `{source}` has no predictor for scenario ({mesh:?}, {config:?})"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}
