//! The request/response vocabulary every [`crate::LatencyService`]
//! speaks, including the structured error model the fault-tolerance
//! layers dispatch on.

use predtop_models::StageSpec;
use predtop_parallel::{MeshShape, ParallelConfig};

/// One stage-latency question: how long does `stage` take on a
/// `mesh`-shaped sub-mesh under `config`?
///
/// This is exactly the (stage, sub-mesh, configuration) candidate key
/// the inter-stage DP enumerates, promoted to a first-class value so
/// middleware layers can hash, batch, and attribute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyQuery {
    /// Layer range being asked about.
    pub stage: StageSpec,
    /// Sub-mesh shape the stage would run on.
    pub mesh: MeshShape,
    /// Intra-stage parallelism configuration.
    pub config: ParallelConfig,
}

impl LatencyQuery {
    /// Build a query from the candidate triple.
    pub fn new(stage: StageSpec, mesh: MeshShape, config: ParallelConfig) -> LatencyQuery {
        LatencyQuery {
            stage,
            mesh,
            config,
        }
    }
}

/// A resolved latency, tagged with the source that actually produced it.
///
/// The tag is what makes [`crate::Fallback`] auditable: whichever base
/// service answered stamps its [`crate::LatencyService::name`] here, and
/// the tag survives memoization and batching unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReply {
    /// Predicted/measured latency in seconds (forward+backward of one
    /// micro-batch, matching `StageLatencyProvider::stage_latency`).
    pub seconds: f64,
    /// Name of the base service that served this query.
    pub source: &'static str,
}

/// Whether retrying the *same* query against the *same* service can
/// possibly change the answer.
///
/// Every [`ServiceError`] variant has a fixed classification (see
/// [`ServiceError::retryability`]); the [`crate::Retry`] layer retries
/// only `Transient` errors, and a [`crate::CircuitBreaker`] counts both
/// kinds toward its failure window (a failure is a failure, however it
/// classifies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Retryability {
    /// The failure is momentary — an injected fault, a tripped breaker
    /// mid-cooldown. The same query may succeed on the next attempt.
    Transient,
    /// The failure is structural — a missing model file, an unfitted
    /// scenario, an exhausted deadline budget. Retrying the same query
    /// re-fails deterministically; the only escapes are a
    /// [`crate::Fallback`] chain or a different query.
    Permanent,
}

/// Why a service could not answer a query.
///
/// This is the structured error vocabulary every fault-tolerance layer
/// dispatches on: [`crate::Retry`] consults
/// [`retryability`](ServiceError::retryability), [`crate::Fallback`]
/// treats any variant as "try the next source", and the CLI renders each
/// variant distinctly. The variants are ordered roughly from "the source
/// is broken" to "a layer manufactured this failure".
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The source as a whole is unusable (e.g. a saved model file that
    /// failed to load). Permanent.
    Unavailable {
        /// Name of the failed source.
        source: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The source exists but was never fitted for this (sub-mesh,
    /// configuration) scenario. Permanent.
    ScenarioUnsupported {
        /// Name of the source.
        source: &'static str,
        /// The unsupported sub-mesh.
        mesh: MeshShape,
        /// The unsupported configuration.
        config: ParallelConfig,
    },
    /// A [`crate::FaultInject`] layer manufactured this failure (chaos
    /// testing / resilience drills). Transient by construction: the
    /// injection decision is a hash of (seed, query, attempt), so the
    /// next attempt rolls a fresh outcome.
    InjectedFault {
        /// Name of the source the fault was injected in front of.
        source: &'static str,
        /// Zero-based attempt number the injection hash saw.
        attempt: u64,
    },
    /// A [`crate::Deadline`] layer observed the query (or its enclosing
    /// batch) overrunning its budget. Permanent: the budget is spent, so
    /// an immediate retry of the same query would be born over-budget.
    DeadlineExceeded {
        /// Name of the source that was being consulted.
        source: &'static str,
        /// The configured budget, in seconds.
        budget_seconds: f64,
        /// Time actually consumed when the overrun was detected.
        elapsed_seconds: f64,
    },
    /// A [`crate::CircuitBreaker`] layer is open and rejected the query
    /// without consulting the inner service. Transient: the breaker
    /// half-opens after its cooldown, so a later attempt passes through.
    CircuitOpen {
        /// Name of the source the breaker protects.
        source: &'static str,
        /// Consecutive rejections left before the breaker half-opens.
        cooldown_remaining: u64,
    },
}

impl ServiceError {
    /// Name of the source that raised (or was shielded by) the error.
    pub fn source(&self) -> &'static str {
        match self {
            ServiceError::Unavailable { source, .. } => source,
            ServiceError::ScenarioUnsupported { source, .. } => source,
            ServiceError::InjectedFault { source, .. } => source,
            ServiceError::DeadlineExceeded { source, .. } => source,
            ServiceError::CircuitOpen { source, .. } => source,
        }
    }

    /// The error's fixed retry classification — the contract the
    /// [`crate::Retry`] layer enforces.
    pub fn retryability(&self) -> Retryability {
        match self {
            ServiceError::Unavailable { .. } => Retryability::Permanent,
            ServiceError::ScenarioUnsupported { .. } => Retryability::Permanent,
            ServiceError::InjectedFault { .. } => Retryability::Transient,
            ServiceError::DeadlineExceeded { .. } => Retryability::Permanent,
            ServiceError::CircuitOpen { .. } => Retryability::Transient,
        }
    }

    /// True when a retry of the same query may succeed.
    pub fn is_transient(&self) -> bool {
        self.retryability() == Retryability::Transient
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Unavailable { source, reason } => {
                write!(f, "latency source `{source}` unavailable: {reason}")
            }
            ServiceError::ScenarioUnsupported {
                source,
                mesh,
                config,
            } => write!(
                f,
                "latency source `{source}` has no predictor for scenario ({mesh:?}, {config:?})"
            ),
            ServiceError::InjectedFault { source, attempt } => write!(
                f,
                "injected fault in front of `{source}` (attempt {attempt})"
            ),
            ServiceError::DeadlineExceeded {
                source,
                budget_seconds,
                elapsed_seconds,
            } => write!(
                f,
                "deadline exceeded querying `{source}`: {elapsed_seconds:.6}s elapsed \
                 against a {budget_seconds:.6}s budget"
            ),
            ServiceError::CircuitOpen {
                source,
                cooldown_remaining,
            } => write!(
                f,
                "circuit breaker open for `{source}` ({cooldown_remaining} rejections \
                 until half-open probe)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_classifies_and_attributes() {
        let mesh = MeshShape::new(1, 1);
        let config = ParallelConfig::SERIAL;
        let cases: Vec<(ServiceError, Retryability)> = vec![
            (
                ServiceError::Unavailable {
                    source: "predictor",
                    reason: "gone".into(),
                },
                Retryability::Permanent,
            ),
            (
                ServiceError::ScenarioUnsupported {
                    source: "predictor",
                    mesh,
                    config,
                },
                Retryability::Permanent,
            ),
            (
                ServiceError::InjectedFault {
                    source: "simulator",
                    attempt: 2,
                },
                Retryability::Transient,
            ),
            (
                ServiceError::DeadlineExceeded {
                    source: "simulator",
                    budget_seconds: 0.0,
                    elapsed_seconds: 0.1,
                },
                Retryability::Permanent,
            ),
            (
                ServiceError::CircuitOpen {
                    source: "simulator",
                    cooldown_remaining: 3,
                },
                Retryability::Transient,
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.retryability(), want, "{err}");
            assert_eq!(err.is_transient(), want == Retryability::Transient);
            assert!(!err.source().is_empty());
            assert!(!err.to_string().is_empty());
        }
    }
}
