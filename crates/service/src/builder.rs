//! [`ServiceBuilder`]: assemble a middleware stack layer by layer while
//! keeping shared handles to each layer's counters.

use std::sync::Arc;

use crate::batched::{BatchHandle, Batched, DispatchPolicy};
use crate::breaker::{BreakerConfig, BreakerHandle, CircuitBreaker};
use crate::bridge::ProviderService;
use crate::deadline::{Deadline, DeadlineHandle, DeadlinePolicy};
use crate::fallback::Fallback;
use crate::fault::{FaultConfig, FaultHandle, FaultInject};
use crate::instrument::Instrumented;
use crate::memoize::{CacheHandle, Memoize};
use crate::persist::{Persist, PersistHandle};
use crate::retry::{Retry, RetryHandle, RetryPolicy};
use crate::{
    FallbackHandle, LatencyQuery, LatencyReply, LatencyService, MetricsHandle, ServiceError,
};
use predtop_parallel::{StageLatencyProvider, StructuralInterner};

/// The kind of one middleware layer, as recorded by [`StackSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerTag {
    /// [`Fallback`] — degrade to a secondary service on error.
    Fallback,
    /// [`Memoize`] in per-query mode.
    Memoize,
    /// [`Memoize`] in structural-equivalence mode.
    MemoizeStructural,
    /// [`crate::Persist`] — disk-backed reply store under the memoize
    /// tier.
    Persist,
    /// [`Batched`] — fan batches across the worker pool.
    Batched,
    /// [`FaultInject`] — deterministic chaos injection.
    FaultInject,
    /// [`Deadline`] — wall-clock budgets.
    Deadline,
    /// [`CircuitBreaker`] — load shedding on persistent failure.
    CircuitBreaker,
    /// [`Retry`] — transient-failure re-attempts.
    Retry,
    /// [`Instrumented`] — query/batch/error counters.
    Instrumented,
}

impl LayerTag {
    /// The layer's display name (matches the wrapping combinator).
    pub fn label(self) -> &'static str {
        match self {
            LayerTag::Fallback => "Fallback",
            LayerTag::Memoize => "Memoize",
            LayerTag::MemoizeStructural => "MemoizeStructural",
            LayerTag::Persist => "Persist",
            LayerTag::Batched => "Batched",
            LayerTag::FaultInject => "FaultInject",
            LayerTag::Deadline => "Deadline",
            LayerTag::CircuitBreaker => "CircuitBreaker",
            LayerTag::Retry => "Retry",
            LayerTag::Instrumented => "Instrumented",
        }
    }

    /// Do two tags denote the same layer family? The two memoize modes
    /// are one family — installing both is double caching.
    pub fn same_family(self, other: LayerTag) -> bool {
        let fam = |t| match t {
            LayerTag::MemoizeStructural => LayerTag::Memoize,
            t => t,
        };
        fam(self) == fam(other)
    }
}

/// An introspection record of a built middleware stack: the installed
/// layer tags in wrap order, **innermost first** (index 0 sits directly
/// over the base source). [`ServiceBuilder`] pushes one tag per
/// combinator call, so the spec is exactly the stack that was actually
/// composed — this is what `predtop-analyze`'s stack-ordering lints
/// (`P2xxx`, DESIGN.md §10) check, statically for configs and live for
/// the stack the CLI search builds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackSpec {
    layers: Vec<LayerTag>,
}

impl StackSpec {
    /// An empty spec (a bare base service).
    pub fn new() -> StackSpec {
        StackSpec::default()
    }

    /// A spec from explicit tags, innermost first — for linting a stack
    /// *description* without building the stack.
    pub fn from_layers(layers: impl IntoIterator<Item = LayerTag>) -> StackSpec {
        StackSpec {
            layers: layers.into_iter().collect(),
        }
    }

    /// Record one more (outer) layer.
    pub fn push(&mut self, tag: LayerTag) {
        self.layers.push(tag);
    }

    /// Installed layers, innermost first.
    pub fn layers(&self) -> &[LayerTag] {
        &self.layers
    }

    /// Human-readable wrap order, innermost first:
    /// `FaultInject → Retry → Batched`.
    pub fn label(&self) -> String {
        self.layers
            .iter()
            .map(|t| t.label())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

/// Shared handles onto the counters of the layers a [`ServiceBuilder`]
/// installed. Cloneable and independent of the stack's lifetime, so an
/// outcome struct can carry them out of the search that built the stack.
#[derive(Debug, Clone, Default)]
pub struct StackHandles {
    /// Hit/miss counters of the [`Memoize`] layer, if one was installed.
    pub cache: Option<CacheHandle>,
    /// The structural interner behind the [`Memoize`] layer, if the
    /// layer was installed in structural mode
    /// ([`ServiceBuilder::memoize_structural`]). The search engine warms
    /// it serially over the canonical work-list so key numbering is
    /// thread-count independent.
    pub interner: Option<Arc<StructuralInterner>>,
    /// Dispatch counters of the [`Batched`] layer, if one was installed.
    pub batch: Option<BatchHandle>,
    /// Counters of the [`Instrumented`] layer, if one was installed.
    pub metrics: Option<MetricsHandle>,
    /// Primary/secondary accounting of the [`Fallback`] layer, if one
    /// was installed.
    pub fallback: Option<FallbackHandle>,
    /// Injection counters of the [`FaultInject`] layer, if one was
    /// installed.
    pub fault: Option<FaultHandle>,
    /// Attempt accounting of the [`Retry`] layer, if one was installed.
    pub retry: Option<RetryHandle>,
    /// Overrun counters of the [`Deadline`] layer, if one was installed.
    pub deadline: Option<DeadlineHandle>,
    /// State-transition counters of the [`CircuitBreaker`] layer, if one
    /// was installed.
    pub breaker: Option<BreakerHandle>,
    /// Disk hit/miss/write accounting of the [`crate::Persist`] layer,
    /// if one was installed.
    pub persist: Option<PersistHandle>,
}

/// Type-state builder for a latency-service middleware stack.
///
/// Layers wrap outward: each call wraps the current service in one more
/// layer, so the *first* layer added sits closest to the base source and
/// the *last* sits outermost. The canonical search stack is
///
/// ```text
/// ServiceBuilder::from_provider(profiler, "simulator")
///     .memoize()        // innermost wrap: dedupe repeat queries
///     .batched(threads) // fan batches across the worker pool
///     .instrumented()   // outermost: count what the caller sees
///     .finish()
/// ```
///
/// i.e. `Instrumented(Batched(Memoize(ProviderService(profiler))))`.
/// Keeping [`Instrumented`] outside [`Batched`] is what makes its
/// latency accounting deterministic — it sums the already-ordered batch
/// replies instead of racing per-query.
pub struct ServiceBuilder<S> {
    svc: S,
    handles: StackHandles,
    spec: StackSpec,
}

impl<P: StageLatencyProvider> ServiceBuilder<ProviderService<P>> {
    /// Start a stack from a pre-service [`StageLatencyProvider`],
    /// attributed to `name`.
    pub fn from_provider(provider: P, name: &'static str) -> ServiceBuilder<ProviderService<P>> {
        ServiceBuilder::new(ProviderService::new(provider, name))
    }
}

impl<S: LatencyService> ServiceBuilder<S> {
    /// Start a stack from a base service.
    pub fn new(svc: S) -> ServiceBuilder<S> {
        ServiceBuilder {
            svc,
            handles: StackHandles::default(),
            spec: StackSpec::new(),
        }
    }

    /// Degrade to `secondary` on any error from the current stack.
    pub fn or_fallback_to<T: LatencyService>(self, secondary: T) -> ServiceBuilder<Fallback<S, T>> {
        let svc = Fallback::new(self.svc, secondary);
        let mut handles = self.handles;
        handles.fallback = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Fallback);
        ServiceBuilder { svc, handles, spec }
    }

    /// Memoize successful replies per query (sharded, with
    /// [`predtop_parallel::CacheStats`] accounting).
    pub fn memoize(self) -> ServiceBuilder<Memoize<S>> {
        let svc = Memoize::new(self.svc);
        let mut handles = self.handles;
        handles.cache = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Memoize);
        ServiceBuilder { svc, handles, spec }
    }

    /// Memoize successful replies per *structural equivalence class*: a
    /// fresh [`StructuralInterner`] hash-conses each query's
    /// (stage, sub-mesh, configuration) structure, so isomorphic
    /// sub-problems — e.g. interior layer windows of equal length —
    /// share one cache entry and all but the first *hit*. Only sound
    /// over structure-pure sources (every in-tree provider; see
    /// [`Memoize`]). The interner rides along in
    /// [`StackHandles::interner`].
    pub fn memoize_structural(self) -> ServiceBuilder<Memoize<S>> {
        let interner = Arc::new(StructuralInterner::new());
        let svc = Memoize::structural(self.svc, interner.clone());
        let mut handles = self.handles;
        handles.cache = Some(svc.handle());
        handles.interner = Some(interner);
        let mut spec = self.spec;
        spec.push(LayerTag::MemoizeStructural);
        ServiceBuilder { svc, handles, spec }
    }

    /// Back the current stack with a persistent object store: replies
    /// are served from `store` when present (keyed by structural
    /// descriptor under `namespace`) and write-behind into it when not.
    /// Goes directly inside [`memoize`](Self::memoize) /
    /// [`memoize_structural`](Self::memoize_structural) — memory
    /// absorbs in-run repeats, disk absorbs across-run repeats — and
    /// inside [`batched`](Self::batched) so disk misses still fan out
    /// (lints `P2106`/`P2107`/`P2203`).
    pub fn persist(
        self,
        store: Arc<predtop_store::Store>,
        namespace: impl Into<String>,
    ) -> ServiceBuilder<Persist<S>> {
        let svc = Persist::new(self.svc, store, namespace);
        let mut handles = self.handles;
        handles.persist = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Persist);
        ServiceBuilder { svc, handles, spec }
    }

    /// Fan query batches across `threads` deterministic workers with
    /// the default chunking policy.
    pub fn batched(self, threads: usize) -> ServiceBuilder<Batched<S>> {
        self.batched_with_policy(threads, DispatchPolicy::default())
    }

    /// Fan query batches across the `PREDTOP_THREADS`-configured pool.
    pub fn batched_auto(self) -> ServiceBuilder<Batched<S>> {
        self.batched(predtop_runtime::configured_threads())
    }

    /// Fan query batches across `threads` deterministic workers with an
    /// explicit [`DispatchPolicy`].
    pub fn batched_with_policy(
        self,
        threads: usize,
        policy: DispatchPolicy,
    ) -> ServiceBuilder<Batched<S>> {
        let svc = Batched::with_policy(self.svc, threads, policy);
        let mut handles = self.handles;
        handles.batch = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Batched);
        ServiceBuilder { svc, handles, spec }
    }

    /// Inject deterministic hash-seeded faults (errors and latency
    /// spikes) in front of the current stack. Goes innermost in a chaos
    /// stack, directly over the base source, so every resilience layer
    /// above gets exercised.
    pub fn inject_faults(self, config: FaultConfig) -> ServiceBuilder<FaultInject<S>> {
        let svc = FaultInject::new(self.svc, config);
        let mut handles = self.handles;
        handles.fault = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::FaultInject);
        ServiceBuilder { svc, handles, spec }
    }

    /// Enforce wall-clock budgets on the current stack, converting
    /// overruns into [`ServiceError::DeadlineExceeded`]. Goes inside
    /// [`Batched`](Self::batched) for the per-batch budget to fire (see
    /// DESIGN.md §10).
    pub fn deadline(self, policy: DeadlinePolicy) -> ServiceBuilder<Deadline<S>> {
        let svc = Deadline::new(self.svc, policy);
        let mut handles = self.handles;
        handles.deadline = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Deadline);
        ServiceBuilder { svc, handles, spec }
    }

    /// Shed load off the current stack when it keeps failing, via a
    /// closed/open/half-open breaker over a sliding outcome window.
    pub fn circuit_breaker(self, config: BreakerConfig) -> ServiceBuilder<CircuitBreaker<S>> {
        let svc = CircuitBreaker::new(self.svc, config);
        let mut handles = self.handles;
        handles.breaker = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::CircuitBreaker);
        ServiceBuilder { svc, handles, spec }
    }

    /// Re-attempt transient failures of the current stack, with
    /// deterministic accounted exponential backoff. Goes outside
    /// [`inject_faults`](Self::inject_faults) and
    /// [`circuit_breaker`](Self::circuit_breaker), inside
    /// [`memoize`](Self::memoize).
    pub fn retry(self, policy: RetryPolicy) -> ServiceBuilder<Retry<S>> {
        let svc = Retry::new(self.svc, policy);
        let mut handles = self.handles;
        handles.retry = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Retry);
        ServiceBuilder { svc, handles, spec }
    }

    /// Count queries, batches, errors, and served seconds at this point
    /// in the stack.
    pub fn instrumented(self) -> ServiceBuilder<Instrumented<S>> {
        let svc = Instrumented::new(self.svc);
        let mut handles = self.handles;
        handles.metrics = Some(svc.handle());
        let mut spec = self.spec;
        spec.push(LayerTag::Instrumented);
        ServiceBuilder { svc, handles, spec }
    }

    /// Erase the stack's concrete layer composition behind a trait
    /// object, so stacks whose shapes diverge at runtime (with vs.
    /// without a persist tier, say) share one type. Installs no layer:
    /// handles and spec carry through unchanged, and boxing a service
    /// is behaviorally invisible.
    pub fn boxed(self) -> ServiceBuilder<Box<dyn LatencyService + Send + Sync>>
    where
        S: Send + Sync + 'static,
    {
        ServiceBuilder {
            svc: Box::new(self.svc),
            handles: self.handles,
            spec: self.spec,
        }
    }

    /// Seal the stack.
    pub fn finish(self) -> ServiceStack<S> {
        ServiceStack {
            svc: self.svc,
            handles: self.handles,
            spec: self.spec,
        }
    }
}

/// A sealed middleware stack: the composed service plus
/// [`StackHandles`] to every installed layer's counters.
pub struct ServiceStack<S> {
    svc: S,
    handles: StackHandles,
    spec: StackSpec,
}

impl<S> ServiceStack<S> {
    /// Handles to the installed layers' counters.
    pub fn handles(&self) -> &StackHandles {
        &self.handles
    }

    /// The layer composition this stack was built with, innermost
    /// first — feed to `predtop_analyze`'s stack-ordering lints.
    pub fn spec(&self) -> &StackSpec {
        &self.spec
    }

    /// The composed service.
    pub fn service(&self) -> &S {
        &self.svc
    }
}

impl<S: LatencyService> LatencyService for ServiceStack<S> {
    fn name(&self) -> &'static str {
        self.svc.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        self.svc.query(q)
    }

    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        self.svc.query_batch(qs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service, SyntheticProvider};
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{CacheStats, MeshShape, ParallelConfig};

    fn queries(n: usize) -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = n;
        (0..n)
            .map(|i| {
                LatencyQuery::new(
                    StageSpec::new(m, i, i + 1),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                )
            })
            .collect()
    }

    #[test]
    fn full_stack_is_transparent_and_all_handles_report() {
        let qs = queries(6);
        // ground truth straight from the provider
        let base = ServiceBuilder::from_provider(SyntheticProvider, "simulator").finish();
        let expected: Vec<f64> = qs.iter().map(|q| base.query(q).unwrap().seconds).collect();

        let stack = ServiceBuilder::new(failing_service("predictor"))
            .or_fallback_to(ProviderService::new(SyntheticProvider, "simulator"))
            .memoize()
            .batched(4)
            .instrumented()
            .finish();

        // two identical batches: second is all cache hits
        for _ in 0..2 {
            let replies = stack.query_batch(&qs);
            for (i, r) in replies.iter().enumerate() {
                let r = r.as_ref().unwrap();
                assert_eq!(r.seconds.to_bits(), expected[i].to_bits());
                assert_eq!(r.source, "simulator", "fallback attribution survives");
            }
        }

        let h = stack.handles();
        assert_eq!(
            h.cache.as_ref().unwrap().stats(),
            CacheStats { hits: 6, misses: 6 }
        );
        // the fallback only saw the six misses
        let fb = h.fallback.as_ref().unwrap().stats();
        assert_eq!(fb.primary_served, 0);
        assert_eq!(fb.fallback_served, 6);
        // the instrument layer saw all twelve
        let m = h.metrics.as_ref().unwrap().metrics();
        assert_eq!(m.queries, 12);
        assert_eq!(m.batches, 2);
        assert_eq!(m.errors, 0);
        let expected_sum: f64 = expected.iter().sum::<f64>() * 2.0;
        assert!((m.served_seconds - expected_sum).abs() < 1e-12);
    }

    #[test]
    fn handles_default_to_none_when_layers_absent() {
        let (svc, _) = counting_service();
        let stack = ServiceBuilder::new(svc).batched(2).finish();
        assert!(stack.handles().cache.is_none());
        assert!(stack.handles().interner.is_none());
        assert!(stack.handles().metrics.is_none());
        assert!(stack.handles().fallback.is_none());
        assert!(stack.handles().fault.is_none());
        assert!(stack.handles().retry.is_none());
        assert!(stack.handles().deadline.is_none());
        assert!(stack.handles().breaker.is_none());
        assert!(stack.handles().persist.is_none());
        // batched itself was installed, so its handle is present
        assert!(stack.handles().batch.is_some());
    }

    #[test]
    fn structural_memoize_stack_hits_across_isomorphic_queries() {
        // six 1-layer stages: the four interior ones are isomorphic
        let qs = queries(6);
        let (svc, calls) = counting_service();
        let stack = ServiceBuilder::new(svc)
            .memoize_structural()
            .batched(2)
            .finish();
        let replies = stack.query_batch(&qs);
        assert!(replies.iter().all(|r| r.is_ok()));
        // classes: embedding-window, interior-window, head-window
        let h = stack.handles();
        let interner = h.interner.as_ref().unwrap();
        assert_eq!(interner.len(), 3);
        assert_eq!(
            h.cache.as_ref().unwrap().stats(),
            CacheStats { hits: 3, misses: 3 }
        );
        assert_eq!(calls.load(std::sync::atomic::Ordering::Relaxed), 3);
        assert!(h.batch.is_some());
    }

    #[test]
    fn spec_records_layers_in_wrap_order() {
        let (svc, _) = counting_service();
        let stack = ServiceBuilder::new(svc)
            .memoize_structural()
            .batched(2)
            .instrumented()
            .finish();
        assert_eq!(
            stack.spec().layers(),
            &[
                LayerTag::MemoizeStructural,
                LayerTag::Batched,
                LayerTag::Instrumented
            ]
        );
        assert_eq!(
            stack.spec().label(),
            "MemoizeStructural → Batched → Instrumented"
        );
        assert!(LayerTag::Memoize.same_family(LayerTag::MemoizeStructural));
        assert!(!LayerTag::Memoize.same_family(LayerTag::Batched));
    }

    #[test]
    fn persisted_stack_spec_and_combined_hit_accounting() {
        let dir = std::env::temp_dir().join(format!(
            "predtop-builder-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(predtop_store::Store::open(&dir).unwrap());
        let qs = queries(6);

        let build = |store: Arc<predtop_store::Store>| {
            let (svc, calls) = counting_service();
            (
                ServiceBuilder::new(svc)
                    .persist(store, "test:ns")
                    .memoize_structural()
                    .batched(2)
                    .instrumented()
                    .finish(),
                calls,
            )
        };

        let (cold, cold_calls) = build(store.clone());
        assert_eq!(
            cold.spec().layers(),
            &[
                LayerTag::Persist,
                LayerTag::MemoizeStructural,
                LayerTag::Batched,
                LayerTag::Instrumented
            ]
        );
        let cold_replies = cold.query_batch(&qs);
        assert!(cold_replies.iter().all(|r| r.is_ok()));
        // 3 structural classes: memoize absorbs repeats in-run, persist
        // sees only the 3 first-in-run misses and writes them.
        let p = cold.handles().persist.as_ref().unwrap().stats();
        assert_eq!(p.disk_misses, 3);
        assert_eq!(p.writes, 3);
        assert_eq!(cold_calls.load(std::sync::atomic::Ordering::Relaxed), 3);

        // Warm stack over the same dir: the inner source is never
        // consulted and the replies are bit-identical.
        let (warm, warm_calls) = build(store);
        let warm_replies = warm.query_batch(&qs);
        for (c, w) in cold_replies.iter().zip(&warm_replies) {
            assert_eq!(
                c.as_ref().unwrap().seconds.to_bits(),
                w.as_ref().unwrap().seconds.to_bits()
            );
        }
        let p = warm.handles().persist.as_ref().unwrap().stats();
        assert_eq!(p.disk_hits, 3);
        assert_eq!(p.disk_misses, 0);
        assert_eq!(warm_calls.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert!(p.disk_served_rate() > 0.99);
    }

    #[test]
    fn chaos_stack_serves_clean_values_and_every_handle_reports() {
        let qs = queries(8);
        let base = ServiceBuilder::from_provider(SyntheticProvider, "simulator").finish();
        let expected: Vec<f64> = qs.iter().map(|q| base.query(q).unwrap().seconds).collect();

        let stack = ServiceBuilder::from_provider(SyntheticProvider, "simulator")
            .inject_faults(FaultConfig::errors(11, 0.3))
            .deadline(DeadlinePolicy::default())
            .retry(RetryPolicy::retries(16))
            .memoize()
            .batched(4)
            .instrumented()
            .finish();

        let replies = stack.query_batch(&qs);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().seconds.to_bits(), expected[i].to_bits());
        }

        let h = stack.handles();
        let fault = h.fault.as_ref().unwrap().stats();
        assert!(fault.injected_errors > 0, "a 30% rate injects something");
        let retry = h.retry.as_ref().unwrap().stats();
        assert_eq!(retry.retries, fault.injected_errors);
        assert_eq!(retry.exhausted, 0);
        assert!(retry.backoff_seconds > 0.0);
        assert_eq!(h.deadline.as_ref().unwrap().stats().query_overruns, 0);
        assert_eq!(h.metrics.as_ref().unwrap().metrics().errors, 0);
    }
}
