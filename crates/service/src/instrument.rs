//! The instrumentation layer: per-stack traffic counters and
//! deterministic latency accounting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// A snapshot of an [`Instrumented`] layer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceMetrics {
    /// Total queries that passed through the layer (batched ones
    /// included).
    pub queries: usize,
    /// Number of `query_batch` calls.
    pub batches: usize,
    /// Queries that resolved to an error.
    pub errors: usize,
    /// Sum of all successfully served latency seconds. For batches this
    /// is accumulated *after* the inner batch returns, in query-index
    /// order, so the total is deterministic whenever the replies are.
    pub served_seconds: f64,
}

/// Shared state behind an [`Instrumented`] layer and its
/// [`MetricsHandle`]s.
#[derive(Debug, Default)]
pub(crate) struct MetricsState {
    queries: AtomicUsize,
    batches: AtomicUsize,
    errors: AtomicUsize,
    served_seconds: Mutex<f64>,
}

impl MetricsState {
    fn snapshot(&self) -> ServiceMetrics {
        ServiceMetrics {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            served_seconds: *self.served_seconds.lock(),
        }
    }

    fn record(&self, replies: &[Result<LatencyReply, ServiceError>]) {
        self.queries.fetch_add(replies.len(), Ordering::Relaxed);
        let mut sum = 0.0;
        let mut errors = 0;
        for r in replies {
            match r {
                Ok(reply) => sum += reply.seconds,
                Err(_) => errors += 1,
            }
        }
        if errors > 0 {
            self.errors.fetch_add(errors, Ordering::Relaxed);
        }
        *self.served_seconds.lock() += sum;
    }
}

/// Shared view of an [`Instrumented`] layer's counters, usable after the
/// layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct MetricsHandle(pub(crate) Arc<MetricsState>);

impl MetricsHandle {
    /// Counters accumulated since the layer was built.
    pub fn metrics(&self) -> ServiceMetrics {
        self.0.snapshot()
    }
}

/// Middleware that counts traffic without changing it.
///
/// Place it *outside* a [`crate::Batched`] layer: its `query_batch`
/// accounts the replies sequentially in index order after the inner
/// batch returns, so `served_seconds` stays deterministic even though
/// the batch itself was computed across threads. (Individual `query`
/// calls issued concurrently accumulate in arrival order; the search
/// path only uses batches.)
pub struct Instrumented<S> {
    inner: S,
    state: Arc<MetricsState>,
}

impl<S> Instrumented<S> {
    /// Wrap `inner` with zeroed counters.
    pub fn new(inner: S) -> Instrumented<S> {
        Instrumented {
            inner,
            state: Arc::new(MetricsState::default()),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> MetricsHandle {
        MetricsHandle(self.state.clone())
    }

    /// Counters accumulated since construction.
    pub fn metrics(&self) -> ServiceMetrics {
        self.state.snapshot()
    }
}

impl<S: LatencyService> LatencyService for Instrumented<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let r = self.inner.query(q);
        self.state.record(std::slice::from_ref(&r));
        r
    }

    fn query_batch(&self, qs: &[LatencyQuery]) -> Vec<Result<LatencyReply, ServiceError>> {
        let replies = self.inner.query_batch(qs);
        self.state.batches.fetch_add(1, Ordering::Relaxed);
        self.state.record(&replies);
        replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::{counting_service, failing_service};
    use crate::Batched;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn queries(n: usize) -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = n;
        (0..n)
            .map(|i| {
                LatencyQuery::new(
                    StageSpec::new(m, i, i + 1),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                )
            })
            .collect()
    }

    #[test]
    fn counts_queries_batches_and_seconds_deterministically() {
        let qs = queries(8);
        let expected: f64 = {
            let (svc, _) = counting_service();
            qs.iter().map(|q| svc.query(q).unwrap().seconds).sum()
        };
        for threads in [1, 4] {
            let (svc, _) = counting_service();
            let stack = Instrumented::new(Batched::new(svc, threads));
            let handle = stack.handle();
            let _ = stack.query_batch(&qs);
            let m = handle.metrics();
            assert_eq!(m.queries, 8);
            assert_eq!(m.batches, 1);
            assert_eq!(m.errors, 0);
            assert_eq!(
                m.served_seconds.to_bits(),
                expected.to_bits(),
                "accounting must be bit-deterministic at {threads} threads"
            );
        }
    }

    #[test]
    fn counts_errors() {
        let stack = Instrumented::new(failing_service("down"));
        let qs = queries(3);
        let replies = stack.query_batch(&qs);
        assert!(replies.iter().all(|r| r.is_err()));
        let m = stack.metrics();
        assert_eq!(m.errors, 3);
        assert_eq!(m.queries, 3);
        assert_eq!(m.served_seconds, 0.0);
    }
}
