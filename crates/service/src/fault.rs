//! The failure-injection layer: deterministic, hash-seeded chaos.
//!
//! [`FaultInject`] sits in front of a healthy service and makes it
//! unreliable on purpose — the precondition for testing every other
//! fault-tolerance layer. Two failure modes are injected:
//!
//! * **transient errors** ([`ServiceError::InjectedFault`]), which a
//!   [`crate::Retry`] layer above can absorb, and
//! * **latency spikes** (a real stall of the serving thread), which a
//!   [`crate::Deadline`] layer above can convert into structured
//!   overruns.
//!
//! Determinism: the injection decision for a query is a SplitMix64-style
//! hash of `(seed, query, attempt)` — the same style as `predtop-sim`'s
//! per-operator cost perturbation — where `attempt` is a per-query
//! counter this layer maintains. Same seed, same query, same attempt
//! number ⇒ same outcome, on any thread, in any batch order. Because a
//! successful reply passes through *unchanged*, a search that survives
//! injected faults (every query eventually served) chooses a plan
//! bit-identical to the fault-free run.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{LatencyQuery, LatencyReply, LatencyService, ServiceError};

/// Number of attempt-counter shards (power of two, mask-selected).
const SHARDS: usize = 16;

/// Injection rates and determinism seed for a [`FaultInject`] layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the injection hash. Two layers with the same seed inject
    /// identically; changing the seed re-rolls every decision.
    pub seed: u64,
    /// Probability in `[0, 1]` that an attempt fails with
    /// [`ServiceError::InjectedFault`].
    pub error_rate: f64,
    /// Probability in `[0, 1]` that an attempt that was not failed is
    /// served with an injected latency spike (a real stall).
    pub spike_rate: f64,
    /// Duration of one injected spike, in seconds of real wall time.
    pub spike_seconds: f64,
}

impl FaultConfig {
    /// Error-only injection: fail `error_rate` of attempts under `seed`,
    /// never spike.
    pub fn errors(seed: u64, error_rate: f64) -> FaultConfig {
        FaultConfig {
            seed,
            error_rate,
            spike_rate: 0.0,
            spike_seconds: 0.0,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            error_rate: 0.0,
            spike_rate: 0.0,
            spike_seconds: 0.0,
        }
    }
}

/// A snapshot of a [`FaultInject`] layer's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Attempts that were failed with an injected error.
    pub injected_errors: usize,
    /// Attempts that were served through an injected latency spike.
    pub injected_spikes: usize,
    /// Attempts that passed through untouched.
    pub passed: usize,
    /// Total real seconds of injected stall time.
    pub spike_seconds: f64,
}

#[derive(Debug)]
pub(crate) struct FaultState {
    config: FaultConfig,
    attempts: Vec<Mutex<HashMap<LatencyQuery, u64>>>,
    injected_errors: AtomicUsize,
    injected_spikes: AtomicUsize,
    passed: AtomicUsize,
    spike_seconds: Mutex<f64>,
}

impl FaultState {
    fn new(config: FaultConfig) -> FaultState {
        assert!(
            (0.0..=1.0).contains(&config.error_rate) && (0.0..=1.0).contains(&config.spike_rate),
            "fault rates must be probabilities"
        );
        FaultState {
            config,
            attempts: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            injected_errors: AtomicUsize::new(0),
            injected_spikes: AtomicUsize::new(0),
            passed: AtomicUsize::new(0),
            spike_seconds: Mutex::new(0.0),
        }
    }

    fn snapshot(&self) -> FaultStats {
        FaultStats {
            injected_errors: self.injected_errors.load(Ordering::Relaxed),
            injected_spikes: self.injected_spikes.load(Ordering::Relaxed),
            passed: self.passed.load(Ordering::Relaxed),
            spike_seconds: *self.spike_seconds.lock(),
        }
    }

    /// Fetch-and-increment the per-query attempt counter. Retries of one
    /// query are sequential (the [`crate::Retry`] loop runs on one
    /// thread), so the sequence 0, 1, 2, … a query observes is
    /// deterministic regardless of what other queries do concurrently.
    fn next_attempt(&self, q: &LatencyQuery) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        q.hash(&mut h);
        let shard = (h.finish() as usize) & (SHARDS - 1);
        let mut map = self.attempts[shard].lock();
        let n = map.entry(*q).or_insert(0);
        let attempt = *n;
        *n += 1;
        attempt
    }

    /// SplitMix64-style hash of (seed, query, attempt, stream) to a unit
    /// float in `[0, 1)` — `stream` separates the error roll from the
    /// spike roll so the two rates are independent.
    fn roll(&self, q: &LatencyQuery, attempt: u64, stream: u64) -> f64 {
        let mut qh = std::collections::hash_map::DefaultHasher::new();
        q.hash(&mut qh);
        // The mixer lives in predtop-store's shared hash module (its
        // constants are pinned there); fault schedules for a given
        // (seed, query, attempt, stream) are bit-stable across releases.
        let mut h = predtop_store::hash::SplitMix64::new(self.config.seed);
        h.mix(qh.finish());
        h.mix(attempt);
        h.mix(stream);
        h.unit_f64()
    }
}

/// Shared view of a [`FaultInject`] layer's counters, usable after the
/// layer has been consumed by outer layers of the stack.
#[derive(Debug, Clone)]
pub struct FaultHandle(pub(crate) Arc<FaultState>);

impl FaultHandle {
    /// Counters accumulated since the layer was built.
    pub fn stats(&self) -> FaultStats {
        self.0.snapshot()
    }
}

/// Middleware that injects deterministic failures in front of a healthy
/// service — see the module docs for the fault model.
///
/// Value-determinism contract: an attempt either fails with
/// [`ServiceError::InjectedFault`] or returns the inner service's reply
/// *unchanged* (a spike stalls the serving thread but never perturbs the
/// value). Whatever succeeds is therefore bit-identical to the
/// fault-free service.
pub struct FaultInject<S> {
    inner: S,
    state: Arc<FaultState>,
}

impl<S> FaultInject<S> {
    /// Wrap `inner` with the given injection config and zeroed counters.
    pub fn new(inner: S, config: FaultConfig) -> FaultInject<S> {
        FaultInject {
            inner,
            state: Arc::new(FaultState::new(config)),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// A shareable handle onto this layer's counters.
    pub fn handle(&self) -> FaultHandle {
        FaultHandle(self.state.clone())
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> FaultStats {
        self.state.snapshot()
    }
}

impl<S: LatencyService> LatencyService for FaultInject<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn query(&self, q: &LatencyQuery) -> Result<LatencyReply, ServiceError> {
        let cfg = &self.state.config;
        let attempt = self.state.next_attempt(q);
        if cfg.error_rate > 0.0 && self.state.roll(q, attempt, 0) < cfg.error_rate {
            self.state.injected_errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::InjectedFault {
                source: self.inner.name(),
                attempt,
            });
        }
        if cfg.spike_rate > 0.0 && self.state.roll(q, attempt, 1) < cfg.spike_rate {
            self.state.injected_spikes.fetch_add(1, Ordering::Relaxed);
            *self.state.spike_seconds.lock() += cfg.spike_seconds;
            if cfg.spike_seconds > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(cfg.spike_seconds));
            }
        } else {
            self.state.passed.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.query(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bridge::tests::counting_service;
    use predtop_models::{ModelSpec, StageSpec};
    use predtop_parallel::{MeshShape, ParallelConfig};

    fn queries(n: usize) -> Vec<LatencyQuery> {
        let mut m = ModelSpec::gpt3_1p3b(2);
        m.num_layers = n;
        (0..n)
            .map(|i| {
                LatencyQuery::new(
                    StageSpec::new(m, i, i + 1),
                    MeshShape::new(1, 1),
                    ParallelConfig::SERIAL,
                )
            })
            .collect()
    }

    #[test]
    fn zero_rates_are_a_pass_through() {
        let (svc, calls) = counting_service();
        let layer = FaultInject::new(svc, FaultConfig::default());
        for q in queries(8) {
            assert!(layer.query(&q).is_ok());
        }
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        let s = layer.stats();
        assert_eq!(s.injected_errors, 0);
        assert_eq!(s.injected_spikes, 0);
        assert_eq!(s.passed, 8);
    }

    #[test]
    fn rate_one_fails_every_attempt_and_never_consults_inner() {
        let (svc, calls) = counting_service();
        let layer = FaultInject::new(svc, FaultConfig::errors(7, 1.0));
        for q in queries(4) {
            let err = layer.query(&q).unwrap_err();
            assert!(matches!(err, ServiceError::InjectedFault { .. }));
            assert!(err.is_transient());
        }
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(layer.stats().injected_errors, 4);
    }

    #[test]
    fn injection_is_deterministic_per_seed_query_and_attempt() {
        let run = |seed: u64| -> Vec<bool> {
            let (svc, _) = counting_service();
            let layer = FaultInject::new(svc, FaultConfig::errors(seed, 0.5));
            // three attempts per query, exactly as a retry loop issues
            queries(6)
                .iter()
                .flat_map(|q| (0..3).map(|_| layer.query(q).is_err()).collect::<Vec<_>>())
                .collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must inject identically");
        assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e));
        let c = run(43);
        assert_ne!(a, c, "a different seed re-rolls the outcomes");
    }

    #[test]
    fn successful_attempts_pass_replies_through_unchanged() {
        let qs = queries(6);
        let (clean, _) = counting_service();
        let expected: Vec<f64> = qs.iter().map(|q| clean.query(q).unwrap().seconds).collect();
        let (svc, _) = counting_service();
        let layer = FaultInject::new(svc, FaultConfig::errors(3, 0.4));
        for (q, want) in qs.iter().zip(&expected) {
            // retry until the injection hash lets the query through
            let got = (0..64)
                .find_map(|_| layer.query(q).ok())
                .expect("some attempt passes");
            assert_eq!(got.seconds.to_bits(), want.to_bits());
            assert_eq!(got.source, "counting");
        }
    }

    #[test]
    fn spikes_stall_but_do_not_perturb() {
        let qs = queries(3);
        let (clean, _) = counting_service();
        let expected: Vec<f64> = qs.iter().map(|q| clean.query(q).unwrap().seconds).collect();
        let (svc, _) = counting_service();
        let layer = FaultInject::new(
            svc,
            FaultConfig {
                seed: 1,
                error_rate: 0.0,
                spike_rate: 1.0,
                spike_seconds: 0.001,
            },
        );
        for (q, want) in qs.iter().zip(&expected) {
            assert_eq!(layer.query(q).unwrap().seconds.to_bits(), want.to_bits());
        }
        let s = layer.stats();
        assert_eq!(s.injected_spikes, 3);
        assert!((s.spike_seconds - 0.003).abs() < 1e-12);
    }
}
