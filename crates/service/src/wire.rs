//! The framed wire protocol behind `predtop serve`.
//!
//! Frames are a 4-byte little-endian length prefix followed by exactly
//! that many payload bytes; payloads are the canonical
//! [`api`](crate::api) request/response encodings. One frame carries
//! one request or one response, so the stream never needs resync and a
//! short read is always detectable.
//!
//! The [`Server`] listens on TCP and/or a Unix socket, sizes its
//! connection concurrency from `predtop-runtime`'s
//! [`configured_threads`] resolution (each request then fans out across
//! the same runtime pool through the stack's `Batched` layer), and
//! drains gracefully: a `Shutdown` frame — or SIGTERM/SIGINT via
//! [`signal::install_drain_signals`] — flips one shared drain flag,
//! after which the accept loop closes its listeners (new connections
//! are refused at the OS level), every live connection finishes its
//! in-flight request and is answered, and each connection is closed
//! after at most one post-drain response. The server returns once the
//! last connection ends.
//!
//! The server is transport and policy: *what* a request does — and the
//! admission-control decision to shed it — lives in the engine behind
//! the `handler` closure.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::api::{decode_request, encode_response, ErrorBody, ErrorKind, Request, Response};
use predtop_runtime::configured_threads;

/// Hard ceiling on one frame's payload size (16 MiB). A peer
/// announcing a larger frame is malformed (or hostile) and its
/// connection is dropped before any allocation of that size.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// How long one blocked read waits before the connection loop rechecks
/// the drain flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Write one frame: 4-byte little-endian length prefix, then the
/// payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame from a blocking stream. Returns `Ok(None)` on a
/// clean end-of-stream (EOF before the first prefix byte); EOF anywhere
/// inside a frame is an [`io::ErrorKind::UnexpectedEof`] error.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len}-byte frame (max {MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame payload",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// A blocking request/response client over any framed byte stream
/// (a `TcpStream`, a `UnixStream`, or an in-memory pipe in tests).
#[derive(Debug)]
pub struct Client<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    /// Wrap an already-connected stream.
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &crate::api::encode_request(req))?;
        self.stream.flush()?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })?;
        crate::api::decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Give back the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }
}

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection ceiling; further connections wait in the
    /// OS accept backlog until a slot frees (and are refused once drain
    /// closes the listeners).
    pub max_connections: usize,
    /// How many 50 ms read-poll intervals an *idle* connection survives
    /// after drain begins before it is closed. A connection that is
    /// mid-frame or mid-request is never cut — the grace clock only
    /// ticks while nothing is buffered.
    pub drain_grace_polls: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: configured_threads().max(4),
            drain_grace_polls: 40,
        }
    }
}

/// What one [`Server::run`] did, returned after the drain completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn prepare(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_POLL))?;
                s.set_nodelay(true)
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(READ_POLL))
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] owns the calling
/// thread until drain completes.
pub struct Server {
    tcp: Option<TcpListener>,
    #[cfg(unix)]
    unix: Option<(UnixListener, PathBuf)>,
    drain: Arc<AtomicBool>,
    config: ServerConfig,
}

impl Server {
    /// Bind the requested listeners. At least one of `tcp` (a
    /// `host:port` address) and `unix_path` must be given. A
    /// pre-existing file at `unix_path` is removed first — stale socket
    /// files from a killed daemon would otherwise wedge every restart.
    /// On non-Unix platforms a `unix_path` is an error.
    pub fn bind(
        tcp: Option<&str>,
        unix_path: Option<&Path>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        if tcp.is_none() && unix_path.is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "serve needs at least one listener (TCP address or Unix socket path)",
            ));
        }
        let tcp = match tcp {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        #[cfg(unix)]
        let unix = match unix_path {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Some((l, path.to_path_buf()))
            }
            None => None,
        };
        #[cfg(not(unix))]
        if unix_path.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "Unix sockets are not available on this platform",
            ));
        }
        Ok(Server {
            tcp,
            #[cfg(unix)]
            unix,
            drain: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The TCP listener's bound address (useful after binding port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// A shared flag that begins graceful drain when set. The server
    /// also drains on a `Shutdown` frame or an installed signal.
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.drain)
    }

    fn try_accept(&self) -> Option<Stream> {
        if let Some(l) = &self.tcp {
            match l.accept() {
                Ok((s, _)) => return Some(Stream::Tcp(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        #[cfg(unix)]
        if let Some((l, _)) = &self.unix {
            match l.accept() {
                Ok((s, _)) => return Some(Stream::Unix(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                Err(_) => {}
            }
        }
        None
    }

    /// Accept and serve connections until drain completes, answering
    /// every decoded request with `handler(&request)`. `handler` runs
    /// concurrently from the per-connection threads, one in-flight
    /// request per connection.
    pub fn run<H>(mut self, handler: H) -> io::Result<ServerStats>
    where
        H: Fn(&Request) -> Response + Sync,
    {
        let drain = Arc::clone(&self.drain);
        let active = AtomicUsize::new(0);
        let connections = AtomicU64::new(0);
        let grace = self.config.drain_grace_polls;
        let max_connections = self.config.max_connections;
        #[cfg(unix)]
        let unix_path: Option<PathBuf> = self.unix.as_ref().map(|(_, p)| p.clone());

        std::thread::scope(|scope| {
            loop {
                if signal::drain_requested() {
                    drain.store(true, Ordering::SeqCst);
                }
                if drain.load(Ordering::SeqCst) {
                    break;
                }
                if active.load(Ordering::SeqCst) >= max_connections {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                match self.try_accept() {
                    Some(stream) => {
                        if stream.prepare().is_err() {
                            continue;
                        }
                        connections.fetch_add(1, Ordering::SeqCst);
                        active.fetch_add(1, Ordering::SeqCst);
                        let drain = &drain;
                        let active = &active;
                        let handler = &handler;
                        scope.spawn(move || {
                            serve_connection(stream, handler, drain, grace);
                            active.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    None => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // refuse new connections for the rest of the drain: the
            // in-flight connection threads keep running to completion,
            // but the listening sockets close right now
            self.tcp = None;
            #[cfg(unix)]
            {
                self.unix = None;
            }
        });

        #[cfg(unix)]
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServerStats {
            connections: connections.load(Ordering::SeqCst),
        })
    }
}

/// One connection's serve loop. Reads accumulate in a local buffer so a
/// poll timeout never loses partial frame bytes; complete frames are
/// decoded, handled, and answered in arrival order. After drain begins
/// the connection is closed after at most one further response (or
/// after `grace` idle polls if the peer sends nothing).
fn serve_connection<S, H>(mut stream: S, handler: &H, drain: &AtomicBool, grace: u32)
where
    S: Read + Write,
    H: Fn(&Request) -> Response + ?Sized,
{
    let mut acc: Vec<u8> = Vec::new();
    let mut idle_polls = 0u32;
    let mut scratch = [0u8; 4096];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => return,
            Ok(n) => {
                acc.extend_from_slice(&scratch[..n]);
                idle_polls = 0;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if drain.load(Ordering::SeqCst) && acc.is_empty() {
                    idle_polls += 1;
                    if idle_polls >= grace {
                        return;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }

        while acc.len() >= 4 {
            let len = u32::from_le_bytes([acc[0], acc[1], acc[2], acc[3]]) as usize;
            if len > MAX_FRAME_LEN {
                return;
            }
            if acc.len() < 4 + len {
                break;
            }
            let payload: Vec<u8> = acc[4..4 + len].to_vec();
            acc.drain(..4 + len);

            let resp = match decode_request(&payload) {
                Ok(req) => handler(&req),
                Err(e) => {
                    let resp = Response::Error(ErrorBody {
                        kind: ErrorKind::BadRequest,
                        transient: false,
                        message: format!("undecodable request frame: {e}"),
                    });
                    let _ = write_frame(&mut stream, &encode_response(&resp));
                    let _ = stream.flush();
                    return;
                }
            };
            let bye = matches!(resp, Response::Bye);
            if write_frame(&mut stream, &encode_response(&resp)).is_err() {
                return;
            }
            if stream.flush().is_err() {
                return;
            }
            if bye {
                // the handler acknowledged Shutdown: begin server-wide
                // drain and close this connection
                drain.store(true, Ordering::SeqCst);
                return;
            }
            if drain.load(Ordering::SeqCst) {
                // one post-drain response, then a deterministic close
                return;
            }
        }
    }
}

/// Raw SIGTERM/SIGINT → drain-flag binding, with no libc crate: the
/// daemon links the two symbols the C runtime already exports.
pub mod signal {
    #[cfg(unix)]
    use std::sync::atomic::{AtomicBool, Ordering};

    #[cfg(unix)]
    static SIGNAL_DRAIN: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    type SigHandler = extern "C" fn(i32);

    #[cfg(unix)]
    extern "C" {
        // returns the previous handler as an address; declaring it as a
        // function pointer would be UB when the previous disposition is
        // SIG_DFL (the null pointer)
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    #[cfg(unix)]
    extern "C" fn on_drain_signal(_signum: i32) {
        SIGNAL_DRAIN.store(true, Ordering::SeqCst);
    }

    /// Route SIGINT and SIGTERM to the drain flag the server polls.
    /// Call once before [`Server::run`](super::Server::run); a handled
    /// signal then begins graceful drain instead of killing the
    /// process. No-op on non-Unix platforms.
    pub fn install_drain_signals() {
        #[cfg(unix)]
        unsafe {
            signal(2, on_drain_signal); // SIGINT
            signal(15, on_drain_signal); // SIGTERM
        }
    }

    /// True once an installed drain signal has fired.
    pub fn drain_requested() -> bool {
        #[cfg(unix)]
        {
            SIGNAL_DRAIN.load(Ordering::SeqCst)
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::encode_request;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversize_announcement_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut r = io::Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// An in-memory duplex stream for driving `serve_connection`
    /// without sockets.
    struct Script {
        input: io::Cursor<Vec<u8>>,
        output: Vec<u8>,
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Script {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn connection_loop_answers_every_frame_and_drains_on_bye() {
        let mut input = Vec::new();
        write_frame(&mut input, &encode_request(&Request::Stats)).unwrap();
        write_frame(&mut input, &encode_request(&Request::Shutdown)).unwrap();
        // a frame after Shutdown must never be answered
        write_frame(&mut input, &encode_request(&Request::Stats)).unwrap();
        let mut stream = Script {
            input: io::Cursor::new(input),
            output: Vec::new(),
        };
        let drain = AtomicBool::new(false);
        serve_connection(
            &mut stream,
            &|req: &Request| match req {
                Request::Shutdown => Response::Bye,
                _ => Response::Stats(Default::default()),
            },
            &drain,
            4,
        );
        assert!(drain.load(Ordering::SeqCst), "Bye must begin drain");
        let mut out = io::Cursor::new(stream.output);
        let first = read_frame(&mut out).unwrap().unwrap();
        assert!(matches!(
            crate::api::decode_response(&first).unwrap(),
            Response::Stats(_)
        ));
        let second = read_frame(&mut out).unwrap().unwrap();
        assert!(matches!(
            crate::api::decode_response(&second).unwrap(),
            Response::Bye
        ));
        assert_eq!(read_frame(&mut out).unwrap(), None, "no reply after Bye");
    }

    #[test]
    fn garbage_frame_gets_a_bad_request_and_a_close() {
        let mut input = Vec::new();
        write_frame(&mut input, &[0xFF, 0xFE, 0xFD]).unwrap();
        write_frame(&mut input, &encode_request(&Request::Stats)).unwrap();
        let mut stream = Script {
            input: io::Cursor::new(input),
            output: Vec::new(),
        };
        let drain = AtomicBool::new(false);
        serve_connection(
            &mut stream,
            &|_req: &Request| Response::Stats(Default::default()),
            &drain,
            4,
        );
        let mut out = io::Cursor::new(stream.output);
        let first = read_frame(&mut out).unwrap().unwrap();
        match crate::api::decode_response(&first).unwrap() {
            Response::Error(body) => {
                assert_eq!(body.kind, ErrorKind::BadRequest);
                assert!(!body.transient);
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        // the connection closed before the well-formed follow-up frame
        assert_eq!(read_frame(&mut out).unwrap(), None);
    }
}
