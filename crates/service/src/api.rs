//! The versioned request/response API every frontend speaks.
//!
//! This module is the single API surface shared by the CLI commands,
//! the `predtop serve` wire protocol, and the tests: a CLI invocation
//! parses its flags into the **same** [`Request`] value the server
//! decodes off a socket, and both hand it to the same engine. The
//! per-command ad-hoc argument plumbing that used to live in `main.rs`
//! is gone — there is exactly one way to ask for a profile, a search,
//! a prediction, or a stats snapshot.
//!
//! Encodings follow the canonical little-endian style of
//! `predtop-core::artifacts` (which now delegates its model/plan
//! layouts to this module so store payloads and wire frames can never
//! disagree): a leading version byte, one-byte enum tags, fixed-width
//! integers, IEEE-754 bit patterns for floats, and length-prefixed
//! strings. Decoding never panics: malformed bytes surface as
//! [`DecodeError`], and both decoders reject trailing bytes, unknown
//! tags, and versions they do not understand — the version byte is the
//! schema-evolution hinge (a future v2 decoder can accept v1 frames;
//! a v1 decoder refuses v2 loudly instead of misreading it).

use crate::ledger::{Ledger, LedgerValue};
use predtop_models::{ModelKind, ModelSpec, MoeSpec, StageSpec};
use predtop_parallel::{MeshShape, ParallelConfig, PipelinePlan, PlannedStage};
use predtop_store::{ByteReader, ByteWriter, DecodeError};

/// Version byte heading every encoded [`Request`].
pub const REQUEST_ENCODING_VERSION: u8 = 1;
/// Version byte heading every encoded [`Response`].
pub const RESPONSE_ENCODING_VERSION: u8 = 1;

/// Append `m`'s canonical encoding to `w`. Stable across runs: a pure
/// function of the spec's fields. This is the one model layout in the
/// workspace — store artifacts and wire frames both use it.
pub fn encode_model(w: &mut ByteWriter, m: &ModelSpec) {
    w.u8(match m.kind {
        ModelKind::Gpt3 => 1,
        ModelKind::Moe => 2,
    });
    w.usize(m.batch);
    w.usize(m.seq_len);
    w.usize(m.hidden);
    w.usize(m.num_layers);
    w.usize(m.num_heads);
    w.usize(m.vocab);
    w.usize(m.ffn_mult);
    match &m.moe {
        None => w.u8(0),
        Some(moe) => {
            w.u8(1);
            w.usize(moe.num_experts);
            w.usize(moe.expert_hidden);
            w.usize(moe.every);
        }
    }
}

/// Decode a model spec written by [`encode_model`].
pub fn decode_model(r: &mut ByteReader<'_>) -> Result<ModelSpec, DecodeError> {
    let kind = match r.u8("model kind")? {
        1 => ModelKind::Gpt3,
        2 => ModelKind::Moe,
        tag => {
            return Err(DecodeError::BadTag {
                what: "model kind",
                tag: tag as u64,
            })
        }
    };
    let batch = r.usize("model batch")?;
    let seq_len = r.usize("model seq_len")?;
    let hidden = r.usize("model hidden")?;
    let num_layers = r.usize("model num_layers")?;
    let num_heads = r.usize("model num_heads")?;
    let vocab = r.usize("model vocab")?;
    let ffn_mult = r.usize("model ffn_mult")?;
    let moe = match r.u8("moe tag")? {
        0 => None,
        1 => Some(MoeSpec {
            num_experts: r.usize("moe num_experts")?,
            expert_hidden: r.usize("moe expert_hidden")?,
            every: r.usize("moe every")?,
        }),
        tag => {
            return Err(DecodeError::BadTag {
                what: "moe tag",
                tag: tag as u64,
            })
        }
    };
    Ok(ModelSpec {
        kind,
        batch,
        seq_len,
        hidden,
        num_layers,
        num_heads,
        vocab,
        ffn_mult,
        moe,
    })
}

/// Append `plan`'s canonical (unversioned) body to `w` — the shared
/// layout behind both the store's plan artifact and the wire's search
/// reply.
pub fn encode_plan_body(w: &mut ByteWriter, plan: &PipelinePlan) {
    w.usize(plan.microbatches);
    w.usize(plan.stages.len());
    for ps in &plan.stages {
        encode_model(w, &ps.stage.model);
        w.usize(ps.stage.start);
        w.usize(ps.stage.end);
        w.usize(ps.mesh.nodes);
        w.usize(ps.mesh.gpus_per_node);
        w.usize(ps.config.dp);
        w.usize(ps.config.mp);
    }
}

/// Decode a plan body written by [`encode_plan_body`].
pub fn decode_plan_body(r: &mut ByteReader<'_>) -> Result<PipelinePlan, DecodeError> {
    let microbatches = r.usize("plan microbatches")?;
    let num_stages = r.usize("plan stage count")?;
    let mut stages = Vec::new();
    for _ in 0..num_stages {
        let model = decode_model(r)?;
        let start = r.usize("stage start")?;
        let end = r.usize("stage end")?;
        let mesh = MeshShape::new(r.usize("stage mesh nodes")?, r.usize("stage mesh gpus")?);
        let config = ParallelConfig::new(r.usize("stage dp")?, r.usize("stage mp")?);
        stages.push(PlannedStage {
            stage: StageSpec { model, start, end },
            mesh,
            config,
        });
    }
    Ok(PipelinePlan {
        stages,
        microbatches,
    })
}

/// One stage-latency question: a layer window of a model on a mesh
/// under a parallel config. Used verbatim by `Profile` (ask the
/// simulator-backed stack) and `Predict` (ask the predictor-backed
/// stack).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// The full model the stage window is cut from.
    pub model: ModelSpec,
    /// First layer of the window (inclusive).
    pub start: usize,
    /// One past the last layer of the window.
    pub end: usize,
    /// Device mesh the stage runs on.
    pub mesh: MeshShape,
    /// Intra-stage parallelism degrees.
    pub config: ParallelConfig,
}

impl ProfileSpec {
    /// The stage window as a [`StageSpec`].
    pub fn stage(&self) -> StageSpec {
        StageSpec {
            model: self.model,
            start: self.start,
            end: self.end,
        }
    }
}

/// One plan-search problem: the model, how to slice its batch, and
/// whether static legality checking prunes the candidate set. The
/// cluster mesh, seed, and stack shape are properties of the *engine*,
/// not the request — every client of one server searches the same
/// platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpec {
    /// The model to place.
    pub model: ModelSpec,
    /// Pipeline micro-batches (must be ≥ 1 and divide `model.batch`
    /// when `checked`).
    pub microbatches: usize,
    /// Optional stage-imbalance tolerance for partial profiling.
    pub imbalance_tolerance: Option<f64>,
    /// Run the static-legality filter in front of the latency source.
    pub checked: bool,
}

/// Every question a frontend can ask, CLI and wire alike.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Simulate one stage window's training-iteration latency.
    Profile(ProfileSpec),
    /// Run the inter-stage plan search.
    Search(SearchSpec),
    /// Predict one stage window's latency with the fitted model
    /// (falling back to the analytic baseline).
    Predict(ProfileSpec),
    /// Snapshot the server's live ledgers. Admission-exempt: stats must
    /// stay observable while the breaker sheds work.
    Stats,
    /// Begin graceful drain: in-flight work completes, new connections
    /// are refused, the server exits.
    Shutdown,
}

/// The deterministic result of one plan search — the wire twin of the
/// store's outcome snapshot (wall-clock seconds and per-run ledgers are
/// deliberately absent so replies are bit-stable across runs).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The chosen plan.
    pub plan: PipelinePlan,
    /// Eqn. 4 latency as estimated during the search (exact bits).
    pub estimated_latency: f64,
    /// Ground-truth latency of the chosen plan (exact bits).
    pub true_latency: f64,
    /// Stage-latency queries the search issued.
    pub num_queries: usize,
    /// Candidates the static-legality filter rejected up front.
    pub num_rejected: usize,
    /// Rejections attributable to the memory-capacity rule.
    pub num_rejected_memory: usize,
}

/// Coarse classification of a failed request, for clients that branch
/// on failure mode without parsing message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request itself is malformed (bad stage window, mesh/config
    /// mismatch, zero micro-batches, undecodable frame).
    BadRequest,
    /// The latency source is unavailable.
    Unavailable,
    /// No predictor covers the requested scenario.
    Unsupported,
    /// An injected fault outlived the retry budget.
    Fault,
    /// The per-query deadline was exceeded.
    Deadline,
    /// Admission control shed the request (breaker open).
    Shed,
}

/// A failed request: kind, retryability, and the service error's
/// rendered message.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorBody {
    /// Coarse failure class.
    pub kind: ErrorKind,
    /// True when retrying the identical request may succeed.
    pub transient: bool,
    /// Human-readable detail (the `ServiceError` display string).
    pub message: String,
}

/// One ledger's snapshot inside a [`StatsReport`]: its name plus every
/// field, as produced by the shared [`Ledger`] trait.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerSnapshot {
    /// The ledger's stable name (`"memoize"`, `"store"`, ...).
    pub name: String,
    /// Every field of the snapshot, in canonical order.
    pub fields: Vec<(String, LedgerValue)>,
}

impl LedgerSnapshot {
    /// Snapshot `ledger` through its shared render surface.
    pub fn of(ledger: &dyn Ledger) -> LedgerSnapshot {
        LedgerSnapshot {
            name: ledger.ledger_name().to_string(),
            fields: ledger
                .fields()
                .into_iter()
                .map(|f| (f.key.to_string(), f.value))
                .collect(),
        }
    }
}

/// The server's live accounting, answering a [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReport {
    /// Requests served successfully since startup.
    pub served: u64,
    /// Requests shed by admission control since startup.
    pub shed: u64,
    /// True once graceful drain has begun.
    pub draining: bool,
    /// Every installed ledger of the serving stack, plus the admission
    /// breaker.
    pub ledgers: Vec<LedgerSnapshot>,
}

/// Every answer a frontend can receive.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A stage latency, from `Profile` or `Predict`.
    Latency {
        /// The latency in seconds (exact bits — bit-identical to the
        /// same query against an in-process stack).
        seconds: f64,
        /// Which layer of the stack served it (`"simulator"`,
        /// `"predictor"`, `"analytic"`, ...).
        source: String,
    },
    /// A finished plan search.
    Search(SearchResult),
    /// The live stats snapshot.
    Stats(StatsReport),
    /// The request failed.
    Error(ErrorBody),
    /// Acknowledges `Shutdown`; the connection closes after this frame.
    Bye,
}

fn encode_profile_spec(w: &mut ByteWriter, p: &ProfileSpec) {
    encode_model(w, &p.model);
    w.usize(p.start);
    w.usize(p.end);
    w.usize(p.mesh.nodes);
    w.usize(p.mesh.gpus_per_node);
    w.usize(p.config.dp);
    w.usize(p.config.mp);
}

fn decode_profile_spec(r: &mut ByteReader<'_>) -> Result<ProfileSpec, DecodeError> {
    let model = decode_model(r)?;
    let start = r.usize("profile start")?;
    let end = r.usize("profile end")?;
    let mesh = MeshShape::new(
        r.usize("profile mesh nodes")?,
        r.usize("profile mesh gpus")?,
    );
    let config = ParallelConfig::new(r.usize("profile dp")?, r.usize("profile mp")?);
    Ok(ProfileSpec {
        model,
        start,
        end,
        mesh,
        config,
    })
}

/// Encode a request as a self-contained frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(REQUEST_ENCODING_VERSION);
    match req {
        Request::Profile(p) => {
            w.u8(1);
            encode_profile_spec(&mut w, p);
        }
        Request::Search(s) => {
            w.u8(2);
            encode_model(&mut w, &s.model);
            w.usize(s.microbatches);
            w.opt_f64_bits(s.imbalance_tolerance);
            w.bool(s.checked);
        }
        Request::Predict(p) => {
            w.u8(3);
            encode_profile_spec(&mut w, p);
        }
        Request::Stats => w.u8(4),
        Request::Shutdown => w.u8(5),
    }
    w.into_bytes()
}

/// Decode a payload written by [`encode_request`]. Rejects trailing
/// bytes, unknown tags, and foreign versions.
pub fn decode_request(bytes: &[u8]) -> Result<Request, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8("request version")?;
    if version != REQUEST_ENCODING_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            what: "request",
            version: version as u64,
        });
    }
    let req = match r.u8("request tag")? {
        1 => Request::Profile(decode_profile_spec(&mut r)?),
        2 => Request::Search(SearchSpec {
            model: decode_model(&mut r)?,
            microbatches: r.usize("search microbatches")?,
            imbalance_tolerance: r.opt_f64_bits("search imbalance")?,
            checked: r.bool("search checked")?,
        }),
        3 => Request::Predict(decode_profile_spec(&mut r)?),
        4 => Request::Stats,
        5 => Request::Shutdown,
        tag => {
            return Err(DecodeError::BadTag {
                what: "request tag",
                tag: tag as u64,
            })
        }
    };
    r.finish()?;
    Ok(req)
}

fn encode_ledger_value(w: &mut ByteWriter, v: &LedgerValue) {
    match v {
        LedgerValue::Count(n) => {
            w.u8(1);
            w.u64(*n);
        }
        LedgerValue::Seconds(x) => {
            w.u8(2);
            w.f64_bits(*x);
        }
        LedgerValue::Text(s) => {
            w.u8(3);
            w.str(s);
        }
    }
}

fn decode_ledger_value(r: &mut ByteReader<'_>) -> Result<LedgerValue, DecodeError> {
    match r.u8("ledger value tag")? {
        1 => Ok(LedgerValue::Count(r.u64("ledger count")?)),
        2 => Ok(LedgerValue::Seconds(r.f64_bits("ledger seconds")?)),
        3 => Ok(LedgerValue::Text(r.str("ledger text")?.to_string())),
        tag => Err(DecodeError::BadTag {
            what: "ledger value tag",
            tag: tag as u64,
        }),
    }
}

/// Encode a response as a self-contained frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.u8(RESPONSE_ENCODING_VERSION);
    match resp {
        Response::Latency { seconds, source } => {
            w.u8(1);
            w.f64_bits(*seconds);
            w.str(source);
        }
        Response::Search(s) => {
            w.u8(2);
            encode_plan_body(&mut w, &s.plan);
            w.f64_bits(s.estimated_latency);
            w.f64_bits(s.true_latency);
            w.usize(s.num_queries);
            w.usize(s.num_rejected);
            w.usize(s.num_rejected_memory);
        }
        Response::Stats(s) => {
            w.u8(3);
            w.u64(s.served);
            w.u64(s.shed);
            w.bool(s.draining);
            w.usize(s.ledgers.len());
            for l in &s.ledgers {
                w.str(&l.name);
                w.usize(l.fields.len());
                for (key, value) in &l.fields {
                    w.str(key);
                    encode_ledger_value(&mut w, value);
                }
            }
        }
        Response::Error(e) => {
            w.u8(4);
            w.u8(match e.kind {
                ErrorKind::BadRequest => 1,
                ErrorKind::Unavailable => 2,
                ErrorKind::Unsupported => 3,
                ErrorKind::Fault => 4,
                ErrorKind::Deadline => 5,
                ErrorKind::Shed => 6,
            });
            w.bool(e.transient);
            w.str(&e.message);
        }
        Response::Bye => w.u8(5),
    }
    w.into_bytes()
}

/// Decode a payload written by [`encode_response`]. Rejects trailing
/// bytes, unknown tags, and foreign versions.
pub fn decode_response(bytes: &[u8]) -> Result<Response, DecodeError> {
    let mut r = ByteReader::new(bytes);
    let version = r.u8("response version")?;
    if version != RESPONSE_ENCODING_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            what: "response",
            version: version as u64,
        });
    }
    let resp = match r.u8("response tag")? {
        1 => Response::Latency {
            seconds: r.f64_bits("latency seconds")?,
            source: r.str("latency source")?.to_string(),
        },
        2 => Response::Search(SearchResult {
            plan: decode_plan_body(&mut r)?,
            estimated_latency: r.f64_bits("search estimated latency")?,
            true_latency: r.f64_bits("search true latency")?,
            num_queries: r.usize("search num_queries")?,
            num_rejected: r.usize("search num_rejected")?,
            num_rejected_memory: r.usize("search num_rejected_memory")?,
        }),
        3 => {
            let served = r.u64("stats served")?;
            let shed = r.u64("stats shed")?;
            let draining = r.bool("stats draining")?;
            let num_ledgers = r.usize("stats ledger count")?;
            let mut ledgers = Vec::new();
            for _ in 0..num_ledgers {
                let name = r.str("ledger name")?.to_string();
                let num_fields = r.usize("ledger field count")?;
                let mut fields = Vec::new();
                for _ in 0..num_fields {
                    let key = r.str("ledger field key")?.to_string();
                    fields.push((key, decode_ledger_value(&mut r)?));
                }
                ledgers.push(LedgerSnapshot { name, fields });
            }
            Response::Stats(StatsReport {
                served,
                shed,
                draining,
                ledgers,
            })
        }
        4 => {
            let kind = match r.u8("error kind")? {
                1 => ErrorKind::BadRequest,
                2 => ErrorKind::Unavailable,
                3 => ErrorKind::Unsupported,
                4 => ErrorKind::Fault,
                5 => ErrorKind::Deadline,
                6 => ErrorKind::Shed,
                tag => {
                    return Err(DecodeError::BadTag {
                        what: "error kind",
                        tag: tag as u64,
                    })
                }
            };
            Response::Error(ErrorBody {
                kind,
                transient: r.bool("error transient")?,
                message: r.str("error message")?.to_string(),
            })
        }
        5 => Response::Bye,
        tag => {
            return Err(DecodeError::BadTag {
                what: "response tag",
                tag: tag as u64,
            })
        }
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelSpec {
        let mut s = ModelSpec::gpt3_1p3b(2);
        s.seq_len = 32;
        s.hidden = 32;
        s.num_heads = 4;
        s.vocab = 64;
        s.num_layers = 6;
        s
    }

    fn sample_plan() -> PipelinePlan {
        let m = tiny_model();
        PipelinePlan {
            stages: vec![
                PlannedStage {
                    stage: StageSpec::new(m, 0, 3),
                    mesh: MeshShape::new(1, 1),
                    config: ParallelConfig::SERIAL,
                },
                PlannedStage {
                    stage: StageSpec::new(m, 3, 6),
                    mesh: MeshShape::new(1, 2),
                    config: ParallelConfig::new(2, 1),
                },
            ],
            microbatches: 4,
        }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Profile(ProfileSpec {
                model: tiny_model(),
                start: 0,
                end: 3,
                mesh: MeshShape::new(1, 2),
                config: ParallelConfig::new(2, 1),
            }),
            Request::Search(SearchSpec {
                model: ModelSpec::moe_2p6b(4),
                microbatches: 8,
                imbalance_tolerance: Some(0.25),
                checked: true,
            }),
            Request::Predict(ProfileSpec {
                model: tiny_model(),
                start: 2,
                end: 6,
                mesh: MeshShape::new(1, 1),
                config: ParallelConfig::SERIAL,
            }),
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Latency {
                seconds: 0.1 + 0.2,
                source: "simulator".to_string(),
            },
            Response::Search(SearchResult {
                plan: sample_plan(),
                estimated_latency: f64::from_bits(0x3FB9_9999_9999_999A),
                true_latency: -0.0,
                num_queries: 42,
                num_rejected: 7,
                num_rejected_memory: 3,
            }),
            Response::Stats(StatsReport {
                served: 10,
                shed: 2,
                draining: true,
                ledgers: vec![LedgerSnapshot {
                    name: "memoize".to_string(),
                    fields: vec![
                        ("cache_hits".to_string(), LedgerValue::Count(6)),
                        ("seconds".to_string(), LedgerValue::Seconds(1.5)),
                        ("state".to_string(), LedgerValue::Text("closed".to_string())),
                    ],
                }],
            }),
            Response::Error(ErrorBody {
                kind: ErrorKind::Shed,
                transient: true,
                message: "circuit breaker open for `simulator`".to_string(),
            }),
            Response::Bye,
        ]
    }

    #[test]
    fn every_request_round_trips_exactly() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
            // re-encode of the decoded value is byte-identical
            assert_eq!(encode_request(&decode_request(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn every_response_round_trips_exactly() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
            assert_eq!(encode_response(&decode_response(&bytes).unwrap()), bytes);
        }
    }

    #[test]
    fn latency_bits_survive_the_wire() {
        let resp = Response::Latency {
            seconds: f64::from_bits(0x7FF0_0000_0000_0001), // a signaling NaN
            source: "simulator".to_string(),
        };
        match decode_response(&encode_response(&resp)).unwrap() {
            Response::Latency { seconds, .. } => {
                assert_eq!(seconds.to_bits(), 0x7FF0_0000_0000_0001)
            }
            other => panic!("expected latency, got {other:?}"),
        }
    }

    #[test]
    fn truncation_never_panics_and_always_errors() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                assert!(decode_request(&bytes[..cut]).is_err(), "request cut {cut}");
            }
        }
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                assert!(
                    decode_response(&bytes[..cut]).is_err(),
                    "response cut {cut}"
                );
            }
        }
    }

    #[test]
    fn foreign_versions_and_tags_are_rejected() {
        let mut bytes = encode_request(&Request::Stats);
        bytes[0] = 9;
        assert!(matches!(
            decode_request(&bytes),
            Err(DecodeError::UnsupportedVersion {
                what: "request",
                version: 9
            })
        ));
        let mut bad_tag = encode_request(&Request::Stats);
        bad_tag[1] = 99;
        assert!(matches!(
            decode_request(&bad_tag),
            Err(DecodeError::BadTag {
                what: "request tag",
                tag: 99
            })
        ));
        let mut resp = encode_response(&Response::Bye);
        resp[0] = 2;
        assert!(matches!(
            decode_response(&resp),
            Err(DecodeError::UnsupportedVersion {
                what: "response",
                version: 2
            })
        ));

        let mut trailing = encode_request(&Request::Shutdown);
        trailing.push(0);
        assert!(matches!(
            decode_request(&trailing),
            Err(DecodeError::TrailingBytes(1))
        ));
    }
}
