//! # predtop-models
//!
//! From-scratch IR builders for the paper's two benchmarks (Table IV):
//!
//! * **GPT-3 1.3B** — 24 decoder layers, hidden 2048, 32 heads, sequence
//!   1024, vocabulary 51,200;
//! * **GShard MoE 2.6B** — 32 layers (every second one a 16-expert MoE
//!   FFN with expert capacity 2048 MLP width), hidden 768, 16 heads,
//!   sequence 1024, vocabulary 32,000.
//!
//! A *stage* is a contiguous layer range sliced out of a model, with the
//! embedding attached to the first slice and the LM head to the last —
//! exactly the stage candidates Alpa's inter-operator pass enumerates.
//! [`stage::enumerate_stages`] lists every candidate and
//! [`stage::sample_stages`] draws the randomly-sized training subset of
//! §IV-B1.
//!
//! Graphs are emitted at the tensor-operator level (the jaxpr view): a
//! GPT layer decomposes into ~55 primitive ops (layer-norm chains, fused
//! QKV matmul, masked softmax, dropout RNG, residuals), an MoE layer adds
//! the gating/top-2/dispatch/combine routing primitives on top. This is
//! what makes the graphs "very large ... and infeasible to process with
//! simple GNNs" at full-model scale, the motivation for DAG Transformers.

#![warn(missing_docs)]

pub mod layers;
pub mod spec;
pub mod stage;

pub use spec::{ModelKind, ModelSpec, MoeSpec};
pub use stage::{enumerate_stages, sample_stages, StageSpec};
