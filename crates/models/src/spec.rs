//! Benchmark model specifications (Table IV).

use serde::{Deserialize, Serialize};

/// Which benchmark a spec instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// GPT-3-style dense decoder stack.
    Gpt3,
    /// GShard-style mixture-of-experts stack.
    Moe,
}

impl ModelKind {
    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gpt3 => "GPT-3",
            ModelKind::Moe => "MoE",
        }
    }
}

/// MoE-specific hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MoeSpec {
    /// Number of experts (Table IV: 16).
    pub num_experts: usize,
    /// Hidden width of each expert FFN (Table IV "expert hidden": 2048).
    pub expert_hidden: usize,
    /// An MoE FFN replaces the dense FFN every `every` layers (GShard
    /// interleaves: every second layer).
    pub every: usize,
}

/// Hyper-parameters of one benchmark model (Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Benchmark identity.
    pub kind: ModelKind,
    /// Micro-batch size fed to one pipeline stage.
    pub batch: usize,
    /// Sequence length (Table IV: 1024 for both).
    pub seq_len: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// FFN expansion factor for dense layers (4× hidden, GPT standard).
    pub ffn_mult: usize,
    /// Present only for MoE models.
    pub moe: Option<MoeSpec>,
}

impl ModelSpec {
    /// The GPT-3 1.3B benchmark of Table IV: sequence 1024, hidden 2048,
    /// 24 layers, 32 heads, vocabulary 51,200.
    pub fn gpt3_1p3b(batch: usize) -> ModelSpec {
        ModelSpec {
            kind: ModelKind::Gpt3,
            batch,
            seq_len: 1024,
            hidden: 2048,
            num_layers: 24,
            num_heads: 32,
            vocab: 51_200,
            ffn_mult: 4,
            moe: None,
        }
    }

    /// The GShard MoE 2.6B benchmark of Table IV: sequence 1024, hidden
    /// 768, 32 layers, 16 heads, vocabulary 32,000, 16 experts with
    /// expert hidden width 2048.
    pub fn moe_2p6b(batch: usize) -> ModelSpec {
        ModelSpec {
            kind: ModelKind::Moe,
            batch,
            seq_len: 1024,
            hidden: 768,
            num_layers: 32,
            num_heads: 16,
            vocab: 32_000,
            ffn_mult: 4,
            moe: Some(MoeSpec {
                num_experts: 16,
                expert_hidden: 2048,
                every: 2,
            }),
        }
    }

    /// Head dimension (`hidden / num_heads`).
    #[inline]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.num_heads
    }

    /// Number of tokens in one micro-batch.
    #[inline]
    pub fn tokens(&self) -> usize {
        self.batch * self.seq_len
    }

    /// Is layer `i` (0-based) an MoE layer?
    pub fn is_moe_layer(&self, i: usize) -> bool {
        match self.moe {
            // GShard convention: odd layers carry the expert FFN.
            Some(m) => (i + 1).is_multiple_of(m.every),
            None => false,
        }
    }

    /// Approximate parameter count, used to check the Table IV "number of
    /// parameters" row and to weight stage-size heuristics.
    pub fn approx_params(&self) -> u64 {
        let h = self.hidden as u64;
        let mut total = (self.vocab as u64) * h; // embedding (tied head)
        total += (self.seq_len as u64) * h; // positional embedding
        for i in 0..self.num_layers {
            // attention: QKV + output projection (+biases, negligible)
            total += 4 * h * h;
            if self.is_moe_layer(i) {
                let m = self.moe.unwrap();
                total += (m.num_experts as u64) * 2 * h * (m.expert_hidden as u64);
                total += h * (m.num_experts as u64); // gate
            } else {
                total += 2 * h * (self.ffn_mult as u64) * h;
            }
            total += 4 * h; // layer-norm scale/bias x2
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_matches_table4() {
        let m = ModelSpec::gpt3_1p3b(8);
        assert_eq!(m.seq_len, 1024);
        assert_eq!(m.hidden, 2048);
        assert_eq!(m.num_layers, 24);
        assert_eq!(m.num_heads, 32);
        assert_eq!(m.vocab, 51_200);
        assert_eq!(m.head_dim(), 64);
        // Table IV says 1.3B parameters; the standard GPT formula should
        // land within 15% of that.
        let p = m.approx_params() as f64;
        assert!((p - 1.3e9).abs() / 1.3e9 < 0.15, "params = {p:.3e}");
    }

    #[test]
    fn moe_matches_table4() {
        let m = ModelSpec::moe_2p6b(8);
        assert_eq!(m.hidden, 768);
        assert_eq!(m.num_layers, 32);
        assert_eq!(m.num_heads, 16);
        assert_eq!(m.vocab, 32_000);
        let moe = m.moe.unwrap();
        assert_eq!(moe.num_experts, 16);
        assert_eq!(moe.expert_hidden, 2048);
        // Table IV reports 2.6B; with the listed widths and the standard
        // GShard every-other-layer convention the raw weight count is
        // ~1.0B (the published figure presumably counts a different
        // expert placement). We pin our own formula as a regression test
        // and require it to be near the 1B mark.
        let p = m.approx_params() as f64;
        assert!(p > 0.8e9 && p < 1.4e9, "params = {p:.3e}");
    }

    #[test]
    fn moe_layers_interleave() {
        let m = ModelSpec::moe_2p6b(8);
        let moe_layers: Vec<usize> = (0..m.num_layers).filter(|&i| m.is_moe_layer(i)).collect();
        assert_eq!(moe_layers.len(), 16);
        assert!(moe_layers.iter().all(|l| l % 2 == 1));
        let g = ModelSpec::gpt3_1p3b(8);
        assert!((0..g.num_layers).all(|i| !g.is_moe_layer(i)));
    }

    #[test]
    fn token_count() {
        assert_eq!(ModelSpec::gpt3_1p3b(4).tokens(), 4096);
    }
}
